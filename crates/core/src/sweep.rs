//! The parallel batched sweep engine.
//!
//! The paper's evaluation (Figs. 5–9) is a grid of (application ×
//! policy × tolerated slowdown × seed) experiments. [`SweepGrid`] describes
//! such a grid declaratively, [`SweepGrid::expand`] turns it into
//! independent [`SweepJob`]s in a fixed *grid order*, and [`run_sweep`]
//! executes them on a work-stealing pool, merging results back into grid
//! order regardless of how the scheduler interleaved them.
//!
//! ## Determinism contract
//!
//! The output of a sweep is a pure function of the grid: every job's RNG
//! streams derive from its grid coordinates (its `seed` dimension value,
//! split per socket inside the simulator), never from scheduling, thread
//! identity or wall-clock time; rows are emitted in expansion order
//! (application-major, then policy, slowdown, seed). `run_sweep` with
//! `jobs = N` therefore serializes byte-identically to `jobs = 1` — the
//! property the serial-equivalence suite pins down.
//!
//! ## Grid files
//!
//! Grids are written in a small TOML subset (flat `key = value` pairs,
//! single-line arrays, `#` comments) parsed by [`parse_grid`] — see the
//! README's "Running paper-scale sweeps" section for an example.

use crate::runner::{run_once, ControllerKind, Engine, ExperimentSpec};
use dufp_msr::FaultPlan;
use dufp_sim::SimConfig;
use dufp_types::{Error, Ratio, Result, Watts};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::Mutex;

/// Declarative description of a sweep: the cross product of every
/// dimension, expanded in field order (apps outermost, seeds innermost).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepGrid {
    /// Applications: modeled names (`CG`) or workload-spec paths (`x.json`).
    pub apps: Vec<String>,
    /// Policies: `default`, `duf`, `dufp`, `dufpf`, `dnpc` or `cap:<W>`.
    pub policies: Vec<String>,
    /// Tolerated slowdowns in percent, applied to every slowdown-driven
    /// policy (ignored by `default` and `cap:<W>`).
    pub slowdowns_pct: Vec<f64>,
    /// Seeds; each seeds one run's RNG streams. Keeping the same seed
    /// across policies gives the paper's paired-comparison protocol.
    pub seeds: Vec<u64>,
    /// Sockets simulated per job.
    pub sockets: u16,
    /// Monitoring-interval override in milliseconds (`None` = 200 ms).
    pub interval_ms: Option<u64>,
    /// Optional fault plan (inline DSL) armed in every job.
    pub fault_plan: Option<String>,
    /// Optional machine description: a path to a `SimConfig` JSON file
    /// (`dufp machine-template` emits one). `None` = the paper's YETI node.
    pub machine: Option<String>,
    /// Stepping engine for every job: the fast path (default) or the
    /// per-tick oracle. Either way the rows are byte-identical — `tick`
    /// exists for differential runs and benchmarking the speedup.
    #[serde(default)]
    pub engine: Engine,
}

impl SweepGrid {
    /// The paper-scale evaluation grid: the four dynamic policies at five
    /// tolerated slowdowns, eight seeds each, on CG (the application that
    /// exercises every controller branch), one socket per job.
    pub fn paper() -> Self {
        SweepGrid {
            apps: vec!["CG".into()],
            policies: vec!["duf".into(), "dufp".into(), "dufpf".into(), "dnpc".into()],
            slowdowns_pct: vec![0.0, 5.0, 10.0, 15.0, 20.0],
            seeds: (1..=8).collect(),
            sockets: 1,
            interval_ms: None,
            fault_plan: None,
            machine: None,
            engine: Engine::default(),
        }
    }

    /// Rejects empty dimensions, out-of-range slowdowns, unknown policies
    /// and unparsable fault plans with a typed error naming the field.
    pub fn validate(&self) -> Result<()> {
        if self.apps.is_empty() {
            return Err(Error::invalid("apps", "at least one application"));
        }
        if self.policies.is_empty() {
            return Err(Error::invalid("policies", "at least one policy"));
        }
        if self.slowdowns_pct.is_empty() {
            return Err(Error::invalid("slowdowns_pct", "at least one slowdown"));
        }
        if self.seeds.is_empty() {
            return Err(Error::invalid("seeds", "at least one seed"));
        }
        if self.sockets == 0 {
            return Err(Error::invalid("sockets", "need at least one socket"));
        }
        for s in &self.slowdowns_pct {
            if !s.is_finite() || !(0.0..100.0).contains(s) {
                return Err(Error::invalid(
                    "slowdowns_pct",
                    format!("{s} outside [0, 100)"),
                ));
            }
        }
        for p in &self.policies {
            policy_kind(p, 0.0)?;
        }
        if let Some(plan) = &self.fault_plan {
            FaultPlan::parse(plan).map_err(|e| Error::invalid("fault_plan", e.to_string()))?;
        }
        Ok(())
    }

    /// Number of jobs the grid expands to.
    pub fn len(&self) -> usize {
        self.apps.len() * self.policies.len() * self.slowdowns_pct.len() * self.seeds.len()
    }

    /// Whether the grid expands to no jobs at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into jobs in grid order: application-major, then
    /// policy, slowdown, seed. Job indices are their output positions.
    pub fn expand(&self) -> Result<Vec<SweepJob>> {
        self.validate()?;
        let base_sim = match &self.machine {
            None => SimConfig::yeti(0),
            Some(path) => {
                let text = std::fs::read_to_string(path).map_err(Error::Io)?;
                serde_json::from_str(&text)
                    .map_err(|e| Error::invalid("machine", format!("{path}: {e}")))?
            }
        };
        let fault_plan = match &self.fault_plan {
            Some(plan) => Some(
                FaultPlan::parse(plan).map_err(|e| Error::invalid("fault_plan", e.to_string()))?,
            ),
            None => None,
        };
        let mut sim = base_sim;
        sim.arch.sockets = self.sockets;
        sim.validate()?;

        let mut jobs = Vec::with_capacity(self.len());
        for app in &self.apps {
            for policy in &self.policies {
                for &slowdown_pct in &self.slowdowns_pct {
                    for &seed in &self.seeds {
                        let controller = policy_kind(policy, slowdown_pct)?;
                        jobs.push(SweepJob {
                            index: jobs.len(),
                            app: app.clone(),
                            policy: policy.clone(),
                            slowdown_pct,
                            seed,
                            spec: ExperimentSpec {
                                sim: sim.clone(),
                                app: app.clone(),
                                controller,
                                trace: None,
                                interval_ms: self.interval_ms,
                                telemetry: false,
                                fault_plan: fault_plan.clone(),
                                engine: self.engine,
                            },
                        });
                    }
                }
            }
        }
        Ok(jobs)
    }
}

/// Maps a policy name (CLI syntax) plus the grid's slowdown to a
/// [`ControllerKind`].
fn policy_kind(policy: &str, slowdown_pct: f64) -> Result<ControllerKind> {
    let slowdown = Ratio::from_percent(slowdown_pct);
    match policy {
        "default" => Ok(ControllerKind::Default),
        "duf" => Ok(ControllerKind::Duf { slowdown }),
        "dufp" => Ok(ControllerKind::Dufp { slowdown }),
        "dufpf" | "dufp-f" => Ok(ControllerKind::DufpF { slowdown }),
        "dnpc" => Ok(ControllerKind::Dnpc { slowdown }),
        other => match other.strip_prefix("cap:") {
            Some(w) => {
                let watts: f64 = w
                    .parse()
                    .map_err(|_| Error::invalid("policies", format!("bad cap value {w}")))?;
                if !(1.0..=1000.0).contains(&watts) {
                    return Err(Error::invalid(
                        "policies",
                        format!("cap {watts} W outside a sane range"),
                    ));
                }
                Ok(ControllerKind::StaticCap { cap: Watts(watts) })
            }
            None => Err(Error::invalid(
                "policies",
                format!("unknown policy {other} (default|duf|dufp|dufpf|dnpc|cap:<W>)"),
            )),
        },
    }
}

/// One expanded grid point: the coordinates plus the ready-to-run spec.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Output position (grid order).
    pub index: usize,
    /// Application dimension value.
    pub app: String,
    /// Policy dimension value (CLI syntax).
    pub policy: String,
    /// Slowdown dimension value, percent.
    pub slowdown_pct: f64,
    /// Seed dimension value; the job's RNG streams derive from it alone.
    pub seed: u64,
    /// The fully-specified experiment.
    pub spec: ExperimentSpec,
}

/// One result row: the job's grid coordinates plus its measurements.
/// Serialized as one JSON line; a sweep's JSONL output is these rows in
/// grid order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// Output position (grid order).
    pub index: usize,
    /// Application.
    pub app: String,
    /// Policy (CLI syntax, e.g. `dufp`).
    pub policy: String,
    /// Controller label as in the paper's legends, e.g. `DUFP@10%`.
    pub label: String,
    /// Tolerated slowdown, percent.
    pub slowdown_pct: f64,
    /// Seed.
    pub seed: u64,
    /// Execution time, seconds.
    pub exec_time_s: f64,
    /// Node-average package power, watts.
    pub avg_pkg_power_w: f64,
    /// Node-average DRAM power, watts.
    pub avg_dram_power_w: f64,
    /// Package energy, joules.
    pub pkg_energy_j: f64,
    /// DRAM energy, joules.
    pub dram_energy_j: f64,
}

/// Everything a finished sweep reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepOutput {
    /// Result rows in grid order.
    pub rows: Vec<SweepRow>,
    /// Worker count the pool was built with.
    pub workers_requested: usize,
    /// Distinct OS threads that actually executed jobs.
    pub workers_observed: usize,
    /// Wall-clock time of the parallel section, seconds.
    pub elapsed_s: f64,
}

impl SweepOutput {
    /// Jobs completed per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.rows.len() as f64 / self.elapsed_s
        } else {
            0.0
        }
    }
}

/// Runs every job of `grid` on a pool of `jobs` workers and returns the
/// rows in grid order. `jobs = 1` is the serial reference; any `jobs`
/// produces byte-identical [`write_jsonl`] output (see the module-level
/// determinism contract).
pub fn run_sweep(grid: &SweepGrid, jobs: usize) -> Result<SweepOutput> {
    if jobs == 0 {
        return Err(Error::invalid("jobs", "need at least one worker"));
    }
    let expanded = grid.expand()?;
    let total = expanded.len();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(jobs)
        .build()
        .map_err(|e| Error::Precondition(format!("thread pool: {e}")))?;
    let observed: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
    let started = std::time::Instant::now();
    let rows: Vec<SweepRow> = pool.install(|| {
        expanded
            .into_par_iter()
            .map(|job| {
                observed
                    .lock()
                    .expect("thread-id set poisoned")
                    .insert(std::thread::current().id());
                let r = run_once(&job.spec, job.seed)?;
                Ok(SweepRow {
                    index: job.index,
                    app: job.app,
                    label: job.spec.controller.label(),
                    policy: job.policy,
                    slowdown_pct: job.slowdown_pct,
                    seed: job.seed,
                    exec_time_s: r.exec_time.value(),
                    avg_pkg_power_w: r.avg_pkg_power.value(),
                    avg_dram_power_w: r.avg_dram_power.value(),
                    pkg_energy_j: r.pkg_energy.value(),
                    dram_energy_j: r.dram_energy.value(),
                })
            })
            .collect::<Result<Vec<_>>>()
    })?;
    let elapsed_s = started.elapsed().as_secs_f64();
    // The merge-order guard: whatever the scheduling, output is grid order.
    for (i, row) in rows.iter().enumerate() {
        if row.index != i {
            return Err(Error::Precondition(format!(
                "sweep merge broke grid order: row {i} carries index {}",
                row.index
            )));
        }
    }
    debug_assert_eq!(rows.len(), total);
    let workers_observed = observed.lock().expect("thread-id set poisoned").len();
    Ok(SweepOutput {
        rows,
        workers_requested: jobs,
        workers_observed,
        elapsed_s,
    })
}

/// Writes `rows` as JSON Lines. This is the byte-stable serialization the
/// serial-equivalence contract is stated over.
pub fn write_jsonl<W: std::io::Write>(w: &mut W, rows: &[SweepRow]) -> Result<()> {
    // One reusable line buffer for the whole sweep instead of a String
    // allocation per row.
    let mut line = String::new();
    for row in rows {
        line.clear();
        line.push_str(
            &serde_json::to_string(row)
                .map_err(|e| Error::Precondition(format!("serialize row: {e}")))?,
        );
        line.push('\n');
        w.write_all(line.as_bytes()).map_err(Error::Io)?;
    }
    Ok(())
}

/// [`write_jsonl`] into a fresh byte buffer.
pub fn to_jsonl_bytes(rows: &[SweepRow]) -> Result<Vec<u8>> {
    let mut buf = Vec::new();
    write_jsonl(&mut buf, rows)?;
    Ok(buf)
}

/// Parses a grid file written in the supported TOML subset: flat
/// `key = value` lines, single-line arrays, strings in double quotes,
/// `#` comments. Unknown keys and malformed lines are rejected with the
/// line number.
pub fn parse_grid(text: &str) -> Result<SweepGrid> {
    let mut grid = SweepGrid {
        apps: Vec::new(),
        policies: Vec::new(),
        slowdowns_pct: Vec::new(),
        seeds: Vec::new(),
        sockets: 1,
        interval_ms: None,
        fault_plan: None,
        machine: None,
        engine: Engine::default(),
    };
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let err = |detail: String| Error::invalid("grid", format!("line {}: {detail}", lineno + 1));
        if line.starts_with('[') {
            return Err(err("tables are not supported; use flat key = value".into()));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err("expected key = value".into()))?;
        let key = key.trim();
        let value = value.trim();
        match key {
            "apps" => grid.apps = parse_string_array(value).map_err(&err)?,
            "policies" => grid.policies = parse_string_array(value).map_err(&err)?,
            "slowdowns_pct" => grid.slowdowns_pct = parse_number_array(value).map_err(&err)?,
            "seeds" => {
                grid.seeds = parse_number_array(value)
                    .map_err(&err)?
                    .into_iter()
                    .map(|n| {
                        if n.fract() == 0.0 && (0.0..=u64::MAX as f64).contains(&n) {
                            Ok(n as u64)
                        } else {
                            Err(err(format!("seed {n} is not a non-negative integer")))
                        }
                    })
                    .collect::<Result<Vec<_>>>()?;
            }
            "sockets" => {
                grid.sockets = value
                    .parse()
                    .map_err(|_| err(format!("bad socket count {value}")))?;
            }
            "interval_ms" => {
                grid.interval_ms = Some(
                    value
                        .parse()
                        .map_err(|_| err(format!("bad interval {value}")))?,
                );
            }
            "fault_plan" => grid.fault_plan = Some(parse_string(value).map_err(&err)?),
            "machine" => grid.machine = Some(parse_string(value).map_err(&err)?),
            "engine" => {
                grid.engine = Engine::parse(&parse_string(value).map_err(&err)?)
                    .map_err(|e| err(e.to_string()))?;
            }
            other => return Err(err(format!("unknown key `{other}`"))),
        }
    }
    grid.validate()?;
    Ok(grid)
}

/// Cuts `line` at the first `#` that is not inside a double-quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// `"value"` → `value`.
fn parse_string(v: &str) -> std::result::Result<String, String> {
    let inner = v
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected a double-quoted string, got {v}"))?;
    if inner.contains('"') {
        return Err(format!("embedded quotes are not supported: {v}"));
    }
    Ok(inner.to_string())
}

/// `[ "a", "b" ]` → the elements.
fn parse_string_array(v: &str) -> std::result::Result<Vec<String>, String> {
    array_elements(v)?.iter().map(|e| parse_string(e)).collect()
}

/// `[ 0, 5.0, 10 ]` → the numbers.
fn parse_number_array(v: &str) -> std::result::Result<Vec<f64>, String> {
    array_elements(v)?
        .iter()
        .map(|e| e.parse::<f64>().map_err(|_| format!("bad number {e}")))
        .collect()
}

/// Splits `[ a, b, c ]` into trimmed element strings. Elements cannot
/// contain commas (strings here are names and plans, not prose).
fn array_elements(v: &str) -> std::result::Result<Vec<String>, String> {
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected a [ ... ] array, got {v}"))?;
    let trimmed = inner.trim();
    if trimmed.is_empty() {
        return Ok(Vec::new());
    }
    Ok(trimmed.split(',').map(|e| e.trim().to_string()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> SweepGrid {
        SweepGrid {
            apps: vec!["EP".into()],
            policies: vec!["dufp".into(), "duf".into()],
            slowdowns_pct: vec![10.0],
            seeds: vec![1, 2],
            sockets: 1,
            interval_ms: None,
            fault_plan: None,
            machine: None,
            engine: Engine::default(),
        }
    }

    #[test]
    fn expansion_is_grid_ordered_and_complete() {
        let jobs = tiny_grid().expand().unwrap();
        assert_eq!(jobs.len(), 4);
        let coords: Vec<(String, u64)> = jobs.iter().map(|j| (j.policy.clone(), j.seed)).collect();
        assert_eq!(
            coords,
            vec![
                ("dufp".into(), 1),
                ("dufp".into(), 2),
                ("duf".into(), 1),
                ("duf".into(), 2)
            ]
        );
        assert!(jobs.iter().enumerate().all(|(i, j)| j.index == i));
    }

    #[test]
    fn paper_grid_has_the_acceptance_shape() {
        let g = SweepGrid::paper();
        assert_eq!(g.policies.len(), 4);
        assert_eq!(g.slowdowns_pct.len(), 5);
        assert_eq!(g.seeds.len(), 8);
        assert_eq!(g.len(), 160);
        g.validate().unwrap();
    }

    #[test]
    fn bad_grids_are_rejected_with_the_offending_field() {
        let check = |mutate: &dyn Fn(&mut SweepGrid), field: &str| {
            let mut g = tiny_grid();
            mutate(&mut g);
            let err = g.validate().unwrap_err().to_string();
            assert!(err.contains(field), "expected {field} in: {err}");
        };
        check(&|g| g.apps.clear(), "apps");
        check(&|g| g.policies.clear(), "policies");
        check(&|g| g.policies = vec!["magic".into()], "policies");
        check(&|g| g.slowdowns_pct = vec![150.0], "slowdowns_pct");
        check(&|g| g.seeds.clear(), "seeds");
        check(&|g| g.sockets = 0, "sockets");
        check(&|g| g.fault_plan = Some("seed=nope".into()), "fault_plan");
    }

    #[test]
    fn policy_kind_matches_cli_names() {
        assert_eq!(
            policy_kind("dufp", 10.0).unwrap(),
            ControllerKind::Dufp {
                slowdown: Ratio::from_percent(10.0)
            }
        );
        assert_eq!(
            policy_kind("default", 5.0).unwrap(),
            ControllerKind::Default
        );
        assert_eq!(
            policy_kind("cap:100", 0.0).unwrap(),
            ControllerKind::StaticCap { cap: Watts(100.0) }
        );
        assert!(policy_kind("cap:0", 0.0).is_err());
        assert!(policy_kind("magic", 0.0).is_err());
    }

    #[test]
    fn toml_subset_round_trips_a_full_grid() {
        let g = parse_grid(
            r#"
            # paper-style grid
            apps = ["CG", "EP"]   # two applications
            policies = ["duf", "dufp", "cap:100"]
            slowdowns_pct = [0, 5.0, 10]
            seeds = [1, 2, 3]
            sockets = 2
            interval_ms = 200
            fault_plan = "seed=7;write,p=0.001"
            "#,
        )
        .unwrap();
        assert_eq!(g.apps, vec!["CG", "EP"]);
        assert_eq!(g.policies.len(), 3);
        assert_eq!(g.slowdowns_pct, vec![0.0, 5.0, 10.0]);
        assert_eq!(g.seeds, vec![1, 2, 3]);
        assert_eq!(g.sockets, 2);
        assert_eq!(g.interval_ms, Some(200));
        assert_eq!(g.fault_plan.as_deref(), Some("seed=7;write,p=0.001"));
        assert_eq!(g.len(), 54);
    }

    #[test]
    fn toml_subset_rejects_malformed_input_with_line_numbers() {
        for (text, want) in [
            ("apps = [\"CG\"]\nnot a line", "line 2"),
            ("frobnicate = 3", "unknown key"),
            ("[grid]\napps = [\"CG\"]", "tables are not supported"),
            ("apps = \"CG\"", "array"),
            ("seeds = [1.5]", "integer"),
            ("apps = [CG]", "double-quoted"),
            ("sockets = many", "socket count"),
        ] {
            let err = parse_grid(text).unwrap_err().to_string();
            assert!(err.contains(want), "{text:?} → {err}");
        }
    }

    #[test]
    fn comments_are_stripped_outside_strings_only() {
        let g = parse_grid(
            "apps = [\"EP\"]\npolicies = [\"dufp\"]\nslowdowns_pct = [5]\nseeds = [1]\nfault_plan = \"seed=1;write,p=0.5\" # a plan\n",
        )
        .unwrap();
        assert_eq!(g.fault_plan.as_deref(), Some("seed=1;write,p=0.5"));
    }

    #[test]
    fn sweep_runs_and_merges_in_grid_order() {
        let out = run_sweep(&tiny_grid(), 2).unwrap();
        assert_eq!(out.rows.len(), 4);
        assert!(out.rows.iter().enumerate().all(|(i, r)| r.index == i));
        assert_eq!(out.workers_requested, 2);
        assert!(out.rows.iter().all(|r| r.exec_time_s > 0.0));
        assert!(out.rows.iter().all(|r| r.avg_pkg_power_w > 0.0));
        assert_eq!(out.rows[0].label, "DUFP@10%");
    }

    #[test]
    fn zero_workers_rejected() {
        assert!(run_sweep(&tiny_grid(), 0).is_err());
    }

    #[test]
    fn unknown_app_fails_the_whole_sweep_cleanly() {
        let mut g = tiny_grid();
        g.apps = vec!["NOT_AN_APP".into()];
        assert!(run_sweep(&g, 2).is_err());
    }

    #[test]
    fn jobs_spread_across_observed_worker_threads() {
        // The engine-level version of the shim's thread-id-set test: with
        // --jobs 2 the pool must actually run jobs on >= 2 OS threads,
        // even on a single-core host. Each EP job runs long enough
        // (hundreds of ms in debug) that the second worker always claims
        // at least one of the 4 jobs.
        let out = run_sweep(&tiny_grid(), 2).unwrap();
        assert!(
            out.workers_observed >= 2,
            "jobs ran on {} thread(s), want >= 2",
            out.workers_observed
        );
    }

    #[test]
    fn jsonl_bytes_are_identical_for_serial_and_parallel_runs() {
        let g = tiny_grid();
        let serial = to_jsonl_bytes(&run_sweep(&g, 1).unwrap().rows).unwrap();
        let parallel = to_jsonl_bytes(&run_sweep(&g, 4).unwrap().rows).unwrap();
        assert!(!serial.is_empty());
        assert_eq!(serial, parallel);
    }
}
