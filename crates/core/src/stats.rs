//! Result statistics, matching the paper's protocol (§V): 10 runs per
//! experiment, drop the lowest and highest, average the remaining 8, and
//! report min/max error bars.

use serde::{Deserialize, Serialize};

/// Trimmed summary of repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Mean of the values that survive trimming.
    pub mean: f64,
    /// Smallest observed value (error-bar low).
    pub min: f64,
    /// Largest observed value (error-bar high).
    pub max: f64,
    /// Number of values the mean was computed over.
    pub n: usize,
}

impl Summary {
    /// Peak-to-peak spread relative to the mean — the paper reports < 2 %
    /// for most configurations.
    pub fn relative_spread(&self) -> f64 {
        if self.mean != 0.0 {
            (self.max - self.min) / self.mean
        } else {
            0.0
        }
    }
}

/// Trims the lowest and highest value (when three or more samples exist)
/// and averages the rest.
pub fn trimmed(values: &[f64]) -> Summary {
    assert!(!values.is_empty(), "no measurements");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let min = sorted[0];
    let max = *sorted.last().expect("non-empty");
    let kept: &[f64] = if sorted.len() >= 3 {
        &sorted[1..sorted.len() - 1]
    } else {
        &sorted
    };
    Summary {
        mean: kept.iter().sum::<f64>() / kept.len() as f64,
        min,
        max,
        n: kept.len(),
    }
}

/// Summaries of every reported quantity over a repeated experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepeatedResult {
    /// Wall-clock execution time, seconds.
    pub exec_time: Summary,
    /// Whole-node average package power, watts.
    pub pkg_power: Summary,
    /// Whole-node average DRAM power, watts.
    pub dram_power: Summary,
    /// Whole-node package + DRAM energy, joules.
    pub total_energy: Summary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_runs_drop_best_and_worst() {
        // 10 values; the outliers 1.0 and 100.0 must not affect the mean.
        let mut v = vec![10.0; 8];
        v.push(1.0);
        v.push(100.0);
        let s = trimmed(&v);
        assert_eq!(s.mean, 10.0);
        assert_eq!(s.n, 8);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn small_samples_keep_everything() {
        let s = trimmed(&[2.0, 4.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.n, 2);
    }

    #[test]
    fn single_value() {
        let s = trimmed(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!((s.min, s.max, s.n), (5.0, 5.0, 1));
    }

    #[test]
    fn relative_spread() {
        let s = trimmed(&[98.0, 100.0, 102.0]);
        assert_eq!(s.mean, 100.0);
        assert!((s.relative_spread() - 0.04).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no measurements")]
    fn empty_input_panics() {
        trimmed(&[]);
    }
}
