//! Crash-safe experiment journal: durable per-interval decisions,
//! periodic checkpoints, and resume-by-replay.
//!
//! A journaled run writes three kinds of durable state into one
//! directory:
//!
//! * `meta.json` — the [`ExperimentSpec`] and seed, written once before
//!   the run starts (atomically, via temp-file + rename);
//! * `segment-*.log` — an append-only, CRC-framed journal
//!   ([`dufp_journal::JournalWriter`]) with one [`JournalRecord`] per
//!   completed control interval carrying each socket's *final* raw
//!   register state (uncore band, RAPL limit, P-state request);
//! * `checkpoint-*.json` — periodic [`CheckpointState`] snapshots of
//!   everything the registers alone cannot rebuild: controller state,
//!   sampler baselines, resilience counters, actuator caches and the
//!   fault injector's RNG position.
//!
//! [`resume`] rebuilds the crashed run: it re-creates the machine from
//! the journaled seed, replays the simulator tick-for-tick while applying
//! each journaled interval's final registers (the simulator is
//! deterministic, so this reproduces the exact pre-crash trajectory up to
//! the checkpoint), restores the checkpointed soft state, truncates the
//! journal to the checkpoint and continues live. A resumed run's journal
//! is bit-identical to the journal an uninterrupted run would have
//! written — the property the crash-equivalence proptests pin down.

use crate::runner::{run_driver, ExperimentSpec, JournalSession, ResumePoint, RunResult};
use dufp_control::{ControllerState, ResilienceState};
use dufp_counters::CounterSnapshot;
use dufp_journal::{
    latest_checkpoint_before, read_records, write_file_atomic, FsyncPolicy, JournalWriter,
};
use dufp_msr::InjectorSnapshot;
use dufp_types::{Error, Hertz, Result, Watts};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Default checkpoint cadence, in completed control intervals. At the
/// paper's 200 ms monitoring interval this is one checkpoint every five
/// simulated seconds — frequent enough that resume replays little, rare
/// enough that checkpoint serialization stays off the hot path.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 25;

/// Name of the experiment-description file inside a journal directory.
pub const META_FILE: &str = "meta.json";

/// How a journaled run is configured.
#[derive(Debug, Clone)]
pub struct JournalOptions {
    /// Directory receiving `meta.json`, journal segments and checkpoints.
    /// Created if absent; must not already contain journal segments.
    pub dir: PathBuf,
    /// Durability/throughput trade-off for journal appends.
    pub fsync: FsyncPolicy,
    /// Checkpoint cadence in completed control intervals (0 is rejected).
    pub checkpoint_every: u64,
}

impl JournalOptions {
    /// Options with the default fsync policy and checkpoint cadence.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        JournalOptions {
            dir: dir.into(),
            fsync: FsyncPolicy::EveryN(8),
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
        }
    }
}

/// The experiment description persisted alongside the journal, so
/// `dufp resume <dir>` needs nothing but the directory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMeta {
    /// The full experiment specification.
    pub spec: ExperimentSpec,
    /// The seed of this run (journaling covers single runs only).
    pub seed: u64,
}

/// One socket's raw register state at the end of a control interval.
///
/// These three values are the *complete* actuation surface: together with
/// the seed they determine every subsequent simulator tick, so replay
/// needs nothing else from the control stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SocketRegs {
    /// `MSR_UNCORE_RATIO_LIMIT`, encoded.
    pub uncore: u64,
    /// `MSR_PKG_POWER_LIMIT`, raw.
    pub limit: u64,
    /// `IA32_PERF_CTL`, encoded.
    pub perf_ctl: u64,
}

/// One durable journal entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// A control interval completed: all sockets sampled, controllers ran,
    /// and the registers settled at these values.
    Interval {
        /// Zero-based interval index (equals this record's position).
        index: u64,
        /// Simulator tick at the end of the interval.
        tick: u64,
        /// Final register state, one entry per socket.
        sockets: Vec<SocketRegs>,
    },
    /// The run finished normally. Its absence marks a crashed run.
    Complete {
        /// Number of completed control intervals.
        intervals: u64,
        /// Simulator tick at completion.
        tick: u64,
    },
}

impl JournalRecord {
    /// Serializes the record into a journal payload.
    pub fn encode(&self) -> Result<Vec<u8>> {
        serde_json::to_vec(self).map_err(|e| Error::invalid("journal record", e.to_string()))
    }

    /// Parses a journal payload back into a record.
    pub fn decode(payload: &[u8]) -> Result<Self> {
        serde_json::from_slice(payload)
            .map_err(|e| Error::Corruption(format!("undecodable journal record: {e}")))
    }
}

/// Per-socket actuator cache that a fresh [`dufp_control::HwActuators`]
/// cannot re-derive from the hardware registers alone: the cached views a
/// controller's getters observe between writes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActuatorCache {
    /// Whether the controller considers the uncore band pinned.
    pub pinned: bool,
    /// The cached uncore frequency (pin target, or band maximum).
    pub uncore: Hertz,
    /// The cached long-term power limit.
    pub cap_long: Watts,
    /// The cached short-term power limit.
    pub cap_short: Watts,
    /// The last requested core-frequency ceiling.
    pub freq_cap: Hertz,
}

/// Everything the registers cannot rebuild, snapshotted at a journal
/// position: restoring this state after replaying `interval` journal
/// records puts the whole control stack back exactly where the crashed
/// run was.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointState {
    /// Number of completed control intervals (the journal position this
    /// snapshot corresponds to).
    pub interval: u64,
    /// Simulator tick at snapshot time.
    pub tick: u64,
    /// The run's seed (cross-checked against `meta.json` on resume).
    pub seed: u64,
    /// Per-socket controller state.
    pub controllers: Vec<ControllerState>,
    /// Per-socket sampler baselines.
    pub samplers: Vec<Option<CounterSnapshot>>,
    /// Per-socket retry/degradation state.
    pub resilience: Vec<ResilienceState>,
    /// Per-socket actuator caches.
    pub actuators: Vec<ActuatorCache>,
    /// Fault-injector RNG position and hit counters, when a plan is armed.
    pub injector: Option<InjectorSnapshot>,
}

impl CheckpointState {
    /// Serializes the checkpoint payload.
    pub fn encode(&self) -> Result<Vec<u8>> {
        serde_json::to_vec(self).map_err(|e| Error::invalid("checkpoint", e.to_string()))
    }

    /// Parses a checkpoint payload.
    pub fn decode(payload: &[u8]) -> Result<Self> {
        serde_json::from_slice(payload)
            .map_err(|e| Error::Corruption(format!("undecodable checkpoint: {e}")))
    }
}

/// What `resume` found inside a journal directory.
#[derive(Debug)]
pub struct JournalSummary {
    /// The persisted experiment description.
    pub meta: RunMeta,
    /// Completed intervals recorded in the journal.
    pub intervals: Vec<JournalRecord>,
    /// Whether a `Complete` record closes the journal.
    pub complete: bool,
    /// Whether the reader had to drop a torn/corrupt tail.
    pub truncated: bool,
}

/// Reads and validates a journal directory without running anything
/// (used by `resume` and by the `dufp journal` inspection command).
pub fn summarize(dir: &Path) -> Result<JournalSummary> {
    let meta = load_meta(dir)?;
    let outcome = read_records(dir)?;
    let mut intervals = Vec::new();
    let mut complete = false;
    for (pos, payload) in outcome.records.iter().enumerate() {
        if complete {
            return Err(Error::Corruption(format!(
                "journal record {pos} follows a Complete record"
            )));
        }
        match JournalRecord::decode(payload)? {
            JournalRecord::Interval {
                index,
                tick,
                sockets,
            } => {
                if index != intervals.len() as u64 {
                    return Err(Error::Corruption(format!(
                        "journal record {pos} carries interval index {index}, expected {}",
                        intervals.len()
                    )));
                }
                intervals.push(JournalRecord::Interval {
                    index,
                    tick,
                    sockets,
                });
            }
            JournalRecord::Complete { .. } => complete = true,
        }
    }
    Ok(JournalSummary {
        meta,
        intervals,
        complete,
        truncated: outcome.truncated,
    })
}

fn load_meta(dir: &Path) -> Result<RunMeta> {
    let path = dir.join(META_FILE);
    let bytes = std::fs::read(&path).map_err(|e| {
        Error::Precondition(format!("no journal metadata at {}: {e}", path.display()))
    })?;
    serde_json::from_slice(&bytes)
        .map_err(|e| Error::Corruption(format!("undecodable {}: {e}", path.display())))
}

/// Executes one journaled run: every completed control interval is
/// appended to the write-ahead journal in `opts.dir` and the full control
/// state is checkpointed every `opts.checkpoint_every` intervals. If the
/// process dies mid-run — injected crash, SIGKILL, power loss — the
/// directory holds everything [`resume`] needs.
pub fn run_journaled(spec: &ExperimentSpec, seed: u64, opts: &JournalOptions) -> Result<RunResult> {
    if opts.checkpoint_every == 0 {
        return Err(Error::invalid("checkpoint_every", "must be positive"));
    }
    std::fs::create_dir_all(&opts.dir)?;
    let meta = RunMeta {
        spec: spec.clone(),
        seed,
    };
    let payload = serde_json::to_vec_pretty(&meta)
        .map_err(|e| Error::invalid("journal metadata", e.to_string()))?;
    write_file_atomic(&opts.dir, META_FILE, &payload)?;
    // Creating the writer up front also rejects a dirty directory (one
    // that already holds segments) before any simulation work happens.
    let writer = JournalWriter::create(&opts.dir, opts.fsync)?;
    run_driver(
        spec,
        seed,
        Some(JournalSession {
            dir: opts.dir.clone(),
            fsync: opts.fsync,
            checkpoint_every: opts.checkpoint_every,
            writer: Some(writer),
            resume: None,
        }),
    )
}

/// Resumes a crashed journaled run and drives it to completion.
///
/// The journal tail is replayed deterministically on top of the last
/// usable checkpoint; corrupt or too-new checkpoints fall back to older
/// ones and, in the worst case, to a full replay from the start — the
/// run is recovered in every case that leaves `meta.json` readable.
pub fn resume(dir: &Path) -> Result<RunResult> {
    resume_with(dir, FsyncPolicy::EveryN(8), DEFAULT_CHECKPOINT_EVERY)
}

/// [`resume`] with explicit fsync policy and checkpoint cadence for the
/// continued live portion.
pub fn resume_with(dir: &Path, fsync: FsyncPolicy, checkpoint_every: u64) -> Result<RunResult> {
    if checkpoint_every == 0 {
        return Err(Error::invalid("checkpoint_every", "must be positive"));
    }
    let summary = summarize(dir)?;
    if summary.complete {
        return Err(Error::Precondition(format!(
            "journal at {} records a completed run ({} intervals); nothing to resume",
            dir.display(),
            summary.intervals.len()
        )));
    }
    let head = summary.intervals.len() as u64;
    // A checkpoint is usable only up to the journal head (`seq <= head`):
    // anything newer describes state the journal cannot corroborate. An
    // unusable or undecodable checkpoint degrades to a longer replay,
    // never to a refusal.
    let checkpoint = match latest_checkpoint_before(dir, head) {
        Ok(Some((_, payload))) => match CheckpointState::decode(&payload) {
            Ok(cp) => {
                if cp.seed != summary.meta.seed {
                    return Err(Error::Corruption(format!(
                        "checkpoint seed {} does not match journal seed {}",
                        cp.seed, summary.meta.seed
                    )));
                }
                Some(cp)
            }
            Err(_) => None,
        },
        Ok(None) => None,
        Err(Error::Corruption(_)) => None,
        Err(e) => return Err(e),
    };
    let intervals = summary
        .intervals
        .into_iter()
        .map(|rec| match rec {
            JournalRecord::Interval { sockets, .. } => sockets,
            JournalRecord::Complete { .. } => unreachable!("filtered by summarize"),
        })
        .collect();
    run_driver(
        &summary.meta.spec,
        summary.meta.seed,
        Some(JournalSession {
            dir: dir.to_path_buf(),
            fsync,
            checkpoint_every,
            writer: None,
            resume: Some(ResumePoint {
                intervals,
                checkpoint,
            }),
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_once;
    use crate::ControllerKind;
    use dufp_journal::{list_checkpoints, truncate_records, TestDir};
    use dufp_msr::FaultPlan;
    use dufp_sim::SimConfig;
    use dufp_types::Ratio;
    use proptest::prelude::*;

    fn ep_spec(plan: Option<&str>) -> ExperimentSpec {
        ExperimentSpec {
            sim: SimConfig::yeti_single_socket(0),
            app: "EP".into(),
            controller: ControllerKind::Dufp {
                slowdown: Ratio::from_percent(10.0),
            },
            trace: None,
            interval_ms: None,
            telemetry: false,
            fault_plan: plan.map(|p| FaultPlan::parse(p).expect("valid plan")),
            engine: Default::default(),
        }
    }

    fn with_crash(base: Option<&str>, at: u64) -> String {
        match base {
            Some(p) => format!("{p};crash,at={at}"),
            None => format!("crash,at={at}"),
        }
    }

    fn records_of(dir: &Path) -> Vec<Vec<u8>> {
        let out = read_records(dir).unwrap();
        out.records
    }

    fn assert_same_result(a: &RunResult, b: &RunResult) {
        assert_eq!(
            a.exec_time.value().to_bits(),
            b.exec_time.value().to_bits(),
            "exec time diverged: {} vs {}",
            a.exec_time.value(),
            b.exec_time.value()
        );
        assert_eq!(
            a.pkg_energy.value().to_bits(),
            b.pkg_energy.value().to_bits()
        );
        assert_eq!(
            a.dram_energy.value().to_bits(),
            b.dram_energy.value().to_bits()
        );
    }

    use crate::runner::RunResult;

    /// Reference run + crashed-then-resumed run over the same base plan;
    /// asserts the decision journals and whole-run results are
    /// bit-identical. Returns the reference dir for extra assertions.
    fn check_crash_equivalence(
        base_plan: Option<&str>,
        crash_at: u64,
        seed: u64,
    ) -> (TestDir, TestDir) {
        let reference = ep_spec(base_plan);
        let dir_a = TestDir::new("ref");
        let ra = run_journaled(&reference, seed, &JournalOptions::new(dir_a.path()))
            .expect("reference run completes");

        let crashed = ep_spec(Some(&with_crash(base_plan, crash_at)));
        let dir_b = TestDir::new("crash");
        let err = run_journaled(&crashed, seed, &JournalOptions::new(dir_b.path()))
            .expect_err("crash rule must abort the run");
        assert!(err.to_string().contains("crash at tick"), "{err}");

        let rb = resume(dir_b.path()).expect("resume completes the run");
        assert_same_result(&ra, &rb);
        assert_eq!(
            records_of(dir_a.path()),
            records_of(dir_b.path()),
            "resumed journal must be bit-identical to the uninterrupted one"
        );
        (dir_a, dir_b)
    }

    #[test]
    fn journal_record_round_trips() {
        let rec = JournalRecord::Interval {
            index: 3,
            tick: 800,
            sockets: vec![SocketRegs {
                uncore: 0x1818,
                limit: 0x00DD_8000,
                perf_ctl: 0x1D00,
            }],
        };
        let back = JournalRecord::decode(&rec.encode().unwrap()).unwrap();
        assert_eq!(back, rec);
        let err = JournalRecord::decode(b"not json").unwrap_err();
        assert!(matches!(err, Error::Corruption(_)));
    }

    #[test]
    fn resume_refuses_a_missing_directory() {
        let err = resume(Path::new("/nonexistent/journal")).unwrap_err();
        assert!(matches!(err, Error::Precondition(_)), "{err}");
    }

    #[test]
    fn journaled_run_matches_a_plain_run_and_records_completion() {
        let spec = ep_spec(None);
        let plain = run_once(&spec, 3).unwrap();
        let dir = TestDir::new("clean");
        let journaled = run_journaled(&spec, 3, &JournalOptions::new(dir.path())).unwrap();
        assert_same_result(&plain, &journaled);

        let summary = summarize(dir.path()).unwrap();
        assert!(summary.complete, "clean runs end with a Complete record");
        assert!(!summary.truncated);
        assert!(
            summary.intervals.len() > 50,
            "EP runs for minutes of control intervals, got {}",
            summary.intervals.len()
        );
        assert!(
            !list_checkpoints(dir.path()).unwrap().is_empty(),
            "periodic checkpoints must have been written"
        );
        // A completed journal refuses to resume.
        let err = resume(dir.path()).unwrap_err();
        assert!(matches!(err, Error::Precondition(_)), "{err}");
    }

    #[test]
    fn crash_after_a_checkpoint_resumes_bit_identically() {
        // Crash at tick 7001: 35 completed intervals, checkpoint at 25.
        let (_, dir_b) = check_crash_equivalence(None, 7001, 5);
        drop(dir_b);
    }

    #[test]
    fn crash_before_any_checkpoint_replays_from_scratch() {
        // Tick 1000 is 5 intervals in — no checkpoint exists yet.
        let reference = ep_spec(None);
        let dir_a = TestDir::new("ref-early");
        let ra = run_journaled(&reference, 6, &JournalOptions::new(dir_a.path())).unwrap();

        let crashed = ep_spec(Some(&with_crash(None, 1000)));
        let dir_b = TestDir::new("crash-early");
        run_journaled(&crashed, 6, &JournalOptions::new(dir_b.path())).unwrap_err();
        assert!(
            list_checkpoints(dir_b.path()).unwrap().is_empty(),
            "no checkpoint should exist 5 intervals in"
        );
        let rb = resume(dir_b.path()).unwrap();
        assert_same_result(&ra, &rb);
        assert_eq!(records_of(dir_a.path()), records_of(dir_b.path()));
    }

    #[test]
    fn crash_equivalence_holds_under_an_active_fault_plan() {
        check_crash_equivalence(
            Some("seed=42;write,p=0.01;write,reg=cap,cpu=0-15,window=200+5000"),
            9003,
            4,
        );
    }

    #[test]
    fn corrupted_journal_tail_still_resumes_to_the_same_run() {
        let reference = ep_spec(None);
        let dir_a = TestDir::new("ref-torn");
        let ra = run_journaled(&reference, 8, &JournalOptions::new(dir_a.path())).unwrap();

        let crashed = ep_spec(Some(&with_crash(None, 7001)));
        let dir_b = TestDir::new("crash-torn");
        run_journaled(&crashed, 8, &JournalOptions::new(dir_b.path())).unwrap_err();
        // Tear the tail: flip the last byte of the highest segment, as a
        // half-flushed page would.
        let (_, last_seg) = dufp_journal::segment_paths(dir_b.path())
            .unwrap()
            .pop()
            .unwrap();
        let mut bytes = std::fs::read(&last_seg).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&last_seg, &bytes).unwrap();

        let rb = resume(dir_b.path()).unwrap();
        assert_same_result(&ra, &rb);
        assert_eq!(records_of(dir_a.path()), records_of(dir_b.path()));
    }

    #[test]
    fn checkpoint_outrunning_the_journal_falls_back_to_full_replay() {
        let reference = ep_spec(None);
        let dir_a = TestDir::new("ref-outrun");
        let ra = run_journaled(&reference, 9, &JournalOptions::new(dir_a.path())).unwrap();

        let crashed = ep_spec(Some(&with_crash(None, 7001)));
        let dir_b = TestDir::new("crash-outrun");
        run_journaled(&crashed, 9, &JournalOptions::new(dir_b.path())).unwrap_err();
        // Drop the journal below the checkpoint's position (seq 25): the
        // checkpoint now describes state the journal cannot corroborate.
        truncate_records(dir_b.path(), 10).unwrap();

        let rb = resume(dir_b.path()).unwrap();
        assert_same_result(&ra, &rb);
        assert_eq!(records_of(dir_a.path()), records_of(dir_b.path()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[test]
        fn crash_equivalence_for_random_ticks_and_plans(
            crash_at in 600u64..16000,
            seed in 1u64..500,
            plan in prop::sample::select(vec![
                None,
                Some("seed=42;write,p=0.01"),
                Some("seed=7;write,reg=cap,cpu=0-15,window=200+5000"),
                Some("seed=9;sample,p=0.005"),
            ]),
        ) {
            check_crash_equivalence(plan, crash_at, seed);
        }
    }

    #[test]
    fn summarize_rejects_out_of_order_interval_indices() {
        let dir = TestDir::new("bad-order");
        let meta = RunMeta {
            spec: ExperimentSpec {
                sim: dufp_sim::SimConfig::yeti_single_socket(0),
                app: "EP".into(),
                controller: crate::ControllerKind::Default,
                trace: None,
                interval_ms: None,
                telemetry: false,
                fault_plan: None,
                engine: Default::default(),
            },
            seed: 1,
        };
        write_file_atomic(dir.path(), META_FILE, &serde_json::to_vec(&meta).unwrap()).unwrap();
        let mut w = JournalWriter::create(dir.path(), FsyncPolicy::Never).unwrap();
        let rec = JournalRecord::Interval {
            index: 5,
            tick: 100,
            sockets: vec![],
        };
        w.append(&rec.encode().unwrap()).unwrap();
        w.sync().unwrap();
        let err = summarize(dir.path()).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)), "{err}");
    }
}
