//! The experiment runner: one application × one controller × one platform.
//!
//! Reproduces the paper's measurement protocol: the application runs on
//! every socket, one controller instance per socket wakes every 200 ms,
//! samples the PAPI-like counters and actuates its socket's uncore
//! frequency and power cap. Execution time, package power, DRAM power and
//! total energy are reported for the whole node.

use crate::journal::{ActuatorCache, CheckpointState, JournalRecord, SocketRegs};
use crate::stats::{trimmed, RepeatedResult};
use crate::watchdog::Watchdog;
use dufp_control::{
    classify, Actuators, ControlConfig, Controller, Duf, Dufp, ErrorClass, HwActuators, NoOp,
    ResilientActuators, SafeStateGuard, StaticCap,
};
use dufp_counters::{CounterSnapshot, Sampler, Telemetry};
use dufp_journal::{truncate_records, write_checkpoint, FsyncPolicy, JournalWriter};
use dufp_msr::registers::{PerfCtl, UncoreRatioLimit};
use dufp_msr::{FaultPlan, InjectorSnapshot, MsrIo};
use dufp_rapl::{MsrRapl, PowerCapper};
use dufp_sim::{Machine, SimConfig, Trace};
use dufp_telemetry::{
    Actuator, DecisionEvent, Reason, SocketTelemetry, Telemetry as TelemetryHandle, TelemetryReport,
};
use dufp_types::{shutdown, Duration, Error, Joules, Ratio, Result, Seconds, SocketId, Watts};
use dufp_workloads::MaterializeCtx;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::Arc;

/// Which controller to run on each socket.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ControllerKind {
    /// Default configuration: nothing actuates.
    Default,
    /// DUF (uncore only) at the given tolerated slowdown.
    Duf {
        /// Tolerated slowdown in `[0, 1)`.
        slowdown: Ratio,
    },
    /// DUFP (uncore + dynamic cap) at the given tolerated slowdown.
    Dufp {
        /// Tolerated slowdown in `[0, 1)`.
        slowdown: Ratio,
    },
    /// The DNPC related-work baseline: cap only, frequency-linear model.
    Dnpc {
        /// Tolerated performance degradation in `[0, 1)`.
        slowdown: Ratio,
    },
    /// DUFP-F: the §VII future-work extension with direct core-frequency
    /// management.
    DufpF {
        /// Tolerated slowdown in `[0, 1)`.
        slowdown: Ratio,
    },
    /// A fixed whole-run power cap (Fig. 1a).
    StaticCap {
        /// The cap applied to both constraints.
        cap: Watts,
    },
    /// A fixed cap applied only within `[start, end)` (Fig. 1b/1c).
    WindowedCap {
        /// The cap applied to both constraints.
        cap: Watts,
        /// Window start, seconds from run start.
        start: Seconds,
        /// Window end, seconds from run start.
        end: Seconds,
    },
}

impl ControllerKind {
    fn build(&self, cfg: &ControlConfig, tel: SocketTelemetry) -> Box<dyn Controller> {
        match *self {
            ControllerKind::Default => Box::new(NoOp),
            ControllerKind::Duf { .. } => Box::new(Duf::new(cfg.clone()).with_telemetry(tel)),
            ControllerKind::Dufp { .. } => Box::new(Dufp::new(cfg.clone()).with_telemetry(tel)),
            ControllerKind::Dnpc { .. } => {
                Box::new(dufp_control::Dnpc::new(cfg.clone()).with_telemetry(tel))
            }
            ControllerKind::DufpF { .. } => {
                Box::new(dufp_control::DufpF::new(cfg.clone()).with_telemetry(tel))
            }
            ControllerKind::StaticCap { cap } => Box::new(StaticCap::whole_run(cap)),
            ControllerKind::WindowedCap { cap, start, end } => {
                Box::new(StaticCap::windowed(cap, start, end))
            }
        }
    }

    fn slowdown(&self) -> Ratio {
        match *self {
            ControllerKind::Duf { slowdown }
            | ControllerKind::Dufp { slowdown }
            | ControllerKind::Dnpc { slowdown }
            | ControllerKind::DufpF { slowdown } => slowdown,
            _ => Ratio(0.0),
        }
    }

    /// Display name matching the paper's figure legends.
    pub fn label(&self) -> String {
        match *self {
            ControllerKind::Default => "default".into(),
            ControllerKind::Duf { slowdown } => {
                format!("DUF@{:.0}%", slowdown.as_percent())
            }
            ControllerKind::Dufp { slowdown } => {
                format!("DUFP@{:.0}%", slowdown.as_percent())
            }
            ControllerKind::Dnpc { slowdown } => {
                format!("DNPC@{:.0}%", slowdown.as_percent())
            }
            ControllerKind::DufpF { slowdown } => {
                format!("DUFP-F@{:.0}%", slowdown.as_percent())
            }
            ControllerKind::StaticCap { cap } => format!("cap{:.0}W", cap.value()),
            ControllerKind::WindowedCap { cap, .. } => {
                format!("cap{:.0}W[window]", cap.value())
            }
        }
    }
}

/// Which stepping engine drives the simulated machine.
///
/// Both engines produce bit-identical decision traces, energies and
/// telemetry — the fast path memoizes the expensive model evaluations of a
/// converged steady stretch and replays only the per-tick noise draws and
/// accumulator updates, falling back to a full tick whenever any input it
/// depends on changes. `Tick` is the permanent differential oracle: the
/// equivalence suite in `tests/engine_differential.rs` runs every policy,
/// fault plan and crash/resume scenario under both and compares bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum Engine {
    /// Legacy fixed-Δt stepping: one full model evaluation per tick.
    Tick,
    /// Memoized fast path (default): full evaluations only at events —
    /// phase changes, register writes, allowance regime crossings.
    #[default]
    Event,
}

impl Engine {
    /// CLI spelling (`--engine tick|event`).
    pub fn parse(s: &str) -> Result<Engine> {
        match s {
            "tick" => Ok(Engine::Tick),
            "event" => Ok(Engine::Event),
            other => Err(Error::invalid("engine", format!("unknown engine `{other}` (expected `tick` or `event`)"))),
        }
    }

    /// The CLI spelling of this engine.
    pub fn label(&self) -> &'static str {
        match self {
            Engine::Tick => "tick",
            Engine::Event => "event",
        }
    }
}

/// Optional per-run trace request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Socket to trace.
    pub socket: SocketId,
    /// Sampling stride in simulator ticks.
    pub stride: u32,
}

/// A fully-specified experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Platform configuration (the seed inside is overridden per run).
    pub sim: SimConfig,
    /// Application name (see [`dufp_workloads::apps::by_name`]) or, when
    /// the value ends in `.json`, a path to a workload spec file
    /// ([`dufp_workloads::WorkloadFile`]).
    pub app: String,
    /// Controller to run on every socket.
    pub controller: ControllerKind,
    /// Optional frequency/power trace.
    pub trace: Option<TraceSpec>,
    /// Monitoring-interval override in milliseconds (`None` = the paper's
    /// 200 ms). Shorter intervals react faster but cost more controller
    /// work and actuate on noisier samples (§IV-D).
    pub interval_ms: Option<u64>,
    /// When `true`, records decision events, simulator gauges and
    /// pipeline-stage timings, returned in [`RunResult::telemetry`].
    /// Defaults to off: the disabled path costs one branch per record
    /// site, so benchmarks are unaffected.
    #[serde(default)]
    pub telemetry: bool,
    /// Optional fault plan armed against the simulated hardware (chaos
    /// run). Armed after initialization — controller construction and
    /// sampler priming — so scheduled rules are relative to the control
    /// loop's start. The run survives injected faults through the
    /// resilience layer instead of aborting.
    #[serde(default)]
    pub fault_plan: Option<FaultPlan>,
    /// Stepping engine. The default [`Engine::Event`] fast path is
    /// bit-identical to [`Engine::Tick`]; pass `Tick` to run the legacy
    /// per-tick oracle (differential baseline, ~an order of magnitude
    /// slower).
    #[serde(default)]
    pub engine: Engine,
}

/// Whole-node measurements of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Wall-clock execution time.
    pub exec_time: Seconds,
    /// Sum of package energies over all sockets.
    pub pkg_energy: Joules,
    /// Sum of DRAM energies over all sockets.
    pub dram_energy: Joules,
    /// Node-level average package power (all sockets).
    pub avg_pkg_power: Watts,
    /// Node-level average DRAM power.
    pub avg_dram_power: Watts,
    /// The recorded trace, if requested.
    pub trace: Option<Trace>,
    /// Decision events + metrics, when [`ExperimentSpec::telemetry`] is on.
    #[serde(default)]
    pub telemetry: Option<TelemetryReport>,
}

impl RunResult {
    /// Package + DRAM energy.
    pub fn total_energy(&self) -> Joules {
        self.pkg_energy + self.dram_energy
    }
}

/// Takes the end-of-run counter snapshot, riding out injected transient
/// sampler faults with a few retries.
fn sample_end(machine: &Machine, socket: SocketId) -> Result<CounterSnapshot> {
    let mut last = None;
    for _ in 0..4 {
        match machine.sample(socket) {
            Ok(snap) => return Ok(snap),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| Error::Precondition("unreachable: no sample error".into())))
}

/// A journaled-run request handed to the driver by [`crate::journal`].
pub(crate) struct JournalSession {
    /// Journal directory (segments + checkpoints + `meta.json`).
    pub dir: PathBuf,
    /// Fsync policy for the live portion of the run.
    pub fsync: FsyncPolicy,
    /// Checkpoint cadence in completed control intervals.
    pub checkpoint_every: u64,
    /// Pre-created writer (fresh runs); `None` until replay finishes on
    /// resumes, because resume must truncate the tail before reopening.
    pub writer: Option<JournalWriter>,
    /// Present when resuming a crashed run.
    pub resume: Option<ResumePoint>,
}

/// The validated journal contents a resume starts from.
pub(crate) struct ResumePoint {
    /// Final per-socket registers of every journaled interval, in order.
    pub intervals: Vec<Vec<SocketRegs>>,
    /// The checkpoint to restore, when a usable one exists. `None` means
    /// a full deterministic replay from the start.
    pub checkpoint: Option<CheckpointState>,
}

/// A journal being written by the live portion of a run.
struct ActiveJournal {
    writer: JournalWriter,
    dir: PathBuf,
    checkpoint_every: u64,
}

/// Snapshot of everything the journal registers cannot rebuild, taken at
/// a control-interval boundary.
fn checkpoint_state<M: MsrIo, C: PowerCapper>(
    interval: u64,
    tick: u64,
    seed: u64,
    per_socket: &[PerSocket<M, C>],
    injector: Option<InjectorSnapshot>,
) -> CheckpointState {
    CheckpointState {
        interval,
        tick,
        seed,
        controllers: per_socket.iter().map(|(c, ..)| c.state()).collect(),
        samplers: per_socket.iter().map(|(_, s, ..)| s.snapshot()).collect(),
        resilience: per_socket.iter().map(|(.., g)| g.state()).collect(),
        actuators: per_socket
            .iter()
            .map(|(.., g)| {
                let hw = g.inner();
                ActuatorCache {
                    pinned: hw.uncore_pinned(),
                    uncore: hw.uncore(),
                    cap_long: hw.cap_long(),
                    cap_short: hw.cap_short(),
                    freq_cap: hw.core_freq_cap(),
                }
            })
            .collect(),
        injector,
    }
}

/// Restores a checkpoint onto freshly constructed per-socket stacks.
fn restore_checkpoint<M: MsrIo, C: PowerCapper>(
    cp: &CheckpointState,
    per_socket: &mut [PerSocket<M, C>],
) -> Result<()> {
    let n = per_socket.len();
    if cp.controllers.len() != n
        || cp.samplers.len() != n
        || cp.resilience.len() != n
        || cp.actuators.len() != n
    {
        return Err(Error::Corruption(format!(
            "checkpoint describes {} socket(s), run has {n}",
            cp.controllers.len()
        )));
    }
    for (i, (controller, sampler, _, guard)) in per_socket.iter_mut().enumerate() {
        controller.restore(&cp.controllers[i])?;
        sampler.restore(cp.samplers[i]);
        let resilient: &mut ResilientActuators<_> = &mut *guard;
        resilient.restore_state(&cp.resilience[i]);
        let a = cp.actuators[i];
        resilient.inner_mut().restore_cached(
            a.pinned,
            a.uncore,
            a.cap_long,
            a.cap_short,
            a.freq_cap,
        );
    }
    Ok(())
}

type Guarded<M, C> = SafeStateGuard<ResilientActuators<HwActuators<M, C>>>;
type PerSocket<M, C> = (Box<dyn Controller>, Sampler, Watchdog, Guarded<M, C>);

/// Executes one run with the given seed.
pub fn run_once(spec: &ExperimentSpec, seed: u64) -> Result<RunResult> {
    run_driver(spec, seed, None)
}

/// The run loop shared by plain, journaled and resumed runs.
pub(crate) fn run_driver(
    spec: &ExperimentSpec,
    seed: u64,
    journal: Option<JournalSession>,
) -> Result<RunResult> {
    spec.sim.validate()?;
    let mut sim = spec.sim.clone();
    sim.seed = seed;
    let arch = sim.arch.clone();
    let machine = Arc::new(Machine::new(sim));
    let ctx = MaterializeCtx::from_arch(&arch);
    // Modeled applications come from the process-wide phase-table cache:
    // a sweep's jobs share one immutable Arc'd table per (app, machine)
    // instead of re-materializing the roofline terms per job. Spec files
    // stay uncached — the file may change between runs.
    let workload = if spec.app.ends_with(".json") {
        Arc::new(dufp_workloads::load_workload(&spec.app, &ctx)?)
    } else {
        dufp_workloads::shared_by_name(&spec.app, &ctx)?
    };
    let nominal = workload.nominal_duration(&ctx);
    machine.load_all(&workload);

    if let Some(t) = spec.trace {
        machine.enable_trace(t.socket, t.stride)?;
    }

    let tel = if spec.telemetry {
        TelemetryHandle::enabled()
    } else {
        TelemetryHandle::disabled()
    };
    machine.attach_telemetry(&tel);
    // Stage-timing histograms (µs); detached no-ops when telemetry is off.
    let stage_bounds = [
        1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0,
    ];
    let tick_us = tel.histogram("runner.tick_us", &stage_bounds);
    let sample_us = tel.histogram("runner.sample_us", &stage_bounds);
    let control_us = tel.histogram("runner.control_us", &stage_bounds);
    let timed = tel.is_enabled();

    let mut cfg = ControlConfig::from_arch(&arch, spec.controller.slowdown())?;
    if let Some(ms) = spec.interval_ms {
        if ms == 0 {
            return Err(Error::invalid("interval_ms", "must be positive"));
        }
        cfg.interval = Duration::from_millis(ms);
    }
    let capper = MsrRapl::new(
        Arc::clone(&machine),
        arch.sockets as usize,
        arch.cores_per_socket as usize,
    )?;
    let capper = Arc::new(capper);

    // One controller + sampler + watchdog + guarded actuator set per
    // socket. The resilience stack (retry → degrade) absorbs non-fatal
    // actuation failures, and the safe-state guard restores platform
    // defaults however the run ends — normal completion, error return,
    // panic unwind or a shutdown request.
    let mut per_socket: Vec<PerSocket<_, _>> = (0..arch.sockets)
        .map(|s| {
            let act = HwActuators::new(
                Arc::clone(&machine),
                Arc::clone(&capper),
                SocketId(s),
                usize::from(s) * usize::from(arch.cores_per_socket),
                cfg.clone(),
            )?;
            let stel = tel.for_socket(s);
            let resilient =
                ResilientActuators::new(act, cfg.cap_floor).with_telemetry(stel.clone());
            // A plausibility ceiling for per-socket power: PL2 plus ample
            // headroom — anything beyond it is a glitched energy counter.
            let watchdog = Watchdog::new(
                cfg.interval.as_seconds(),
                Watts(arch.pl2_default.value() * 4.0),
            );
            Ok((
                spec.controller.build(&cfg, stel.clone()),
                Sampler::new(),
                watchdog,
                SafeStateGuard::new(resilient).with_telemetry(stel),
            ))
        })
        .collect::<Result<Vec<_>>>()?;

    // Prime all samplers at t = 0.
    for (idx, (_, sampler, _, _)) in per_socket.iter_mut().enumerate() {
        sampler.sample(machine.as_ref(), SocketId(idx as u16))?;
    }
    let start_snaps: Vec<_> = (0..arch.sockets)
        .map(|s| machine.sample(SocketId(s)))
        .collect::<Result<Vec<_>>>()?;
    let started = machine.now();

    let ticks_per_interval = (cfg.interval.as_micros() / machine.config().tick.as_micros()).max(1);

    // Journal activation. On resume this replays the journaled prefix —
    // tick batches plus each interval's final registers, which by the
    // simulator's determinism reproduces the crashed run bit-for-bit up
    // to the checkpoint — then restores the checkpointed soft state and
    // truncates the journal tail (it is regenerated identically by the
    // continued live run). The injector stays unarmed throughout replay:
    // its consumed randomness is accounted for by the checkpointed
    // snapshot, not by re-drawing.
    let mut completed: u64 = 0;
    let mut crash_enabled = true;
    let mut restored_injector: Option<InjectorSnapshot> = None;
    let mut active: Option<ActiveJournal> = None;
    if let Some(mut session) = journal {
        if let Some(resume) = session.resume.take() {
            crash_enabled = false;
            let head = resume.intervals.len() as u64;
            let replay_to = resume.checkpoint.as_ref().map(|c| c.interval).unwrap_or(0);
            if replay_to > head {
                return Err(Error::Corruption(format!(
                    "checkpoint at interval {replay_to} is newer than the journal head {head}"
                )));
            }
            for regs in resume.intervals.iter().take(replay_to as usize) {
                match spec.engine {
                    Engine::Tick => {
                        for _ in 0..ticks_per_interval {
                            machine.tick();
                        }
                    }
                    // The fast path stops early once every socket is done;
                    // the tick loop would idle-tick to the interval boundary
                    // instead. The divergence is unobservable: either way
                    // the next check rejects the journal as corrupt.
                    Engine::Event => {
                        machine.advance(ticks_per_interval);
                    }
                }
                if machine.done() {
                    return Err(Error::Corruption(
                        "journal extends past workload completion".into(),
                    ));
                }
                if regs.len() != per_socket.len() {
                    return Err(Error::Corruption(format!(
                        "journal record carries {} socket(s), run has {}",
                        regs.len(),
                        per_socket.len()
                    )));
                }
                for (s, r) in regs.iter().enumerate() {
                    machine.with_socket(SocketId(s as u16), |ss| {
                        ss.write_uncore(UncoreRatioLimit::decode(r.uncore));
                        ss.write_limit(r.limit);
                        ss.write_perf_ctl(PerfCtl::decode(r.perf_ctl));
                    })?;
                }
            }
            if let Some(cp) = resume.checkpoint {
                restore_checkpoint(&cp, &mut per_socket)?;
                restored_injector = cp.injector;
            }
            let kept = truncate_records(&session.dir, replay_to)?;
            session.writer = Some(JournalWriter::open(&session.dir, session.fsync, kept)?);
            completed = replay_to;
            tel.record_decision(DecisionEvent {
                tick: machine.now().0 / machine.config().tick.as_micros(),
                at_us: machine.now().0,
                socket: 0,
                phase: 0,
                oi_class: None,
                flops_ratio: None,
                actuator: Actuator::Journal,
                old: replay_to as f64,
                new: head as f64,
                reason: Reason::Resumed,
            });
        }
        let writer = session
            .writer
            .take()
            .ok_or_else(|| Error::Precondition("journal session carries no writer".to_owned()))?;
        active = Some(ActiveJournal {
            writer,
            dir: session.dir,
            checkpoint_every: session.checkpoint_every,
        });
    }

    // Arm the fault plan only now: initialization (and any resume replay)
    // is done, so scheduled rules count from the first control interval
    // and a chaos plan cannot fail the setup path it is not meant to
    // model. A resumed run continues the checkpointed fault stream.
    match (&spec.fault_plan, restored_injector.take()) {
        (Some(plan), Some(snap)) => machine.inject_faults_with_state(plan.clone(), &snap)?,
        (Some(plan), None) => machine.inject_faults(plan.clone()),
        (None, _) => {}
    }
    // A `crash,at=N` rule kills the run once the fault clock reaches N —
    // the in-process stand-in for SIGKILL that the crash-equivalence
    // tests drive. A resumed run never re-crashes: the rule modeled the
    // one crash that already happened.
    let crash_at = if crash_enabled {
        spec.fault_plan.as_ref().and_then(|p| p.crash_tick())
    } else {
        None
    };
    let watchdog_resets = tel.counter("watchdog_resets_total");
    let sample_failures = tel.counter("sample_failures_total");
    let journal_checkpoints = tel.counter("journal_checkpoints_total");

    let max_duration = Duration::from_seconds(Seconds(nominal.value() * 10.0 + 30.0));

    // Reusable per-interval register buffer for the journal path: the
    // record type owns its Vec, so the buffer round-trips through each
    // record with mem::take and is reclaimed after encoding — one
    // allocation for the whole run instead of one per control interval.
    let mut regs_buf: Vec<SocketRegs> = Vec::with_capacity(per_socket.len());

    'outer: loop {
        if shutdown::requested() {
            // Early return drops the guards, which restore the hardware.
            return Err(Error::Precondition(
                "run interrupted by shutdown request".into(),
            ));
        }
        let t0 = timed.then(std::time::Instant::now);
        match spec.engine {
            Engine::Tick => {
                for _ in 0..ticks_per_interval {
                    machine.tick();
                    if machine.done() {
                        break 'outer;
                    }
                    if let Some(at) = crash_at {
                        if machine.now().0 / machine.config().tick.as_micros() >= at {
                            // The modeled process death: the journal keeps
                            // only what was durably appended — no Complete
                            // record — and the safe-state guards restore the
                            // platform as the error unwinds, exactly like a
                            // wrapper script cleaning up after a killed run.
                            return Err(Error::Precondition(format!(
                                "fault plan crash at tick {at}"
                            )));
                        }
                    }
                    if machine.now().duration_since(started) >= max_duration {
                        return Err(Error::Precondition(format!(
                            "{} did not finish within 10x nominal time under {}",
                            spec.app,
                            spec.controller.label()
                        )));
                    }
                }
            }
            Engine::Event => {
                // Batched fast-forward up to the next *scheduled* event: the
                // interval boundary, a `crash,at=N` rule, or the 10× timeout.
                // Each barrier caps the batch so the corresponding check
                // fires at exactly the tick the per-tick loop would fire it;
                // completion needs no barrier because `advance` stops the
                // moment every socket reports done.
                let tick_len = machine.config().tick.as_micros();
                let mut remaining = ticks_per_interval;
                while remaining > 0 {
                    let mut batch = remaining;
                    if let Some(at) = crash_at {
                        let idx = machine.now().0 / tick_len;
                        batch = batch.min(at.saturating_sub(idx).max(1));
                    }
                    let elapsed = machine.now().duration_since(started).as_micros();
                    let budget = max_duration.as_micros().saturating_sub(elapsed);
                    batch = batch.min(budget.div_ceil(tick_len).max(1));
                    let advanced = machine.advance(batch);
                    remaining -= advanced.min(remaining);
                    if machine.done() {
                        break 'outer;
                    }
                    if let Some(at) = crash_at {
                        if machine.now().0 / tick_len >= at {
                            return Err(Error::Precondition(format!(
                                "fault plan crash at tick {at}"
                            )));
                        }
                    }
                    if machine.now().duration_since(started) >= max_duration {
                        return Err(Error::Precondition(format!(
                            "{} did not finish within 10x nominal time under {}",
                            spec.app,
                            spec.controller.label()
                        )));
                    }
                }
            }
        }
        if let Some(t0) = t0 {
            tick_us.observe(t0.elapsed().as_secs_f64() * 1e6);
        }
        let tick_now = machine.now().0 / machine.config().tick.as_micros();
        for (idx, (controller, sampler, watchdog, act)) in per_socket.iter_mut().enumerate() {
            let t1 = timed.then(std::time::Instant::now);
            let sampled = match sampler.sample(machine.as_ref(), SocketId(idx as u16)) {
                Ok(sampled) => sampled,
                // A failed counter read is a sensor fault, not a reason to
                // abort: drop the baseline (the next good sample re-primes)
                // and skip this interval.
                Err(e) if classify(&e) != ErrorClass::Fatal => {
                    sample_failures.inc();
                    sampler.reset();
                    continue;
                }
                Err(e) => return Err(e),
            };
            if let Some(t1) = t1 {
                sample_us.observe(t1.elapsed().as_secs_f64() * 1e6);
            }
            if let Some(metrics) = sampled {
                if let Some(trip) = watchdog.check(&metrics) {
                    // Corrupted interval: never show it to the controller.
                    // Re-prime the sampler and park the cap at its default
                    // (the §IV-D overshoot reset, generalized).
                    sampler.reset();
                    let cap_before = act.cap_long().value();
                    let _ = act.reset_cap();
                    watchdog_resets.inc();
                    tel.record_decision(DecisionEvent {
                        tick: tick_now,
                        at_us: machine.now().0,
                        socket: idx as u16,
                        phase: 0,
                        oi_class: Some(trip.label().to_string()),
                        flops_ratio: None,
                        actuator: Actuator::PowerCap,
                        old: cap_before,
                        new: act.cap_long().value(),
                        reason: Reason::WatchdogReset,
                    });
                    continue;
                }
                let t2 = timed.then(std::time::Instant::now);
                controller.on_interval(&metrics, &mut **act as &mut dyn Actuators)?;
                if let Some(t2) = t2 {
                    control_us.observe(t2.elapsed().as_secs_f64() * 1e6);
                }
            }
        }
        completed += 1;
        if let Some(j) = active.as_mut() {
            // Journal the interval's *final* register state — the complete
            // actuation surface, whatever mix of controller moves, retries
            // and degradations produced it.
            regs_buf.clear();
            for s in 0..per_socket.len() {
                regs_buf.push(machine.with_socket(SocketId(s as u16), |ss| SocketRegs {
                    uncore: ss.uncore_raw().encode(),
                    limit: ss.limit_raw(),
                    perf_ctl: ss.perf_ctl().encode(),
                })?);
            }
            let record = JournalRecord::Interval {
                index: completed - 1,
                tick: tick_now,
                sockets: std::mem::take(&mut regs_buf),
            };
            j.writer.append(&record.encode()?)?;
            let JournalRecord::Interval { sockets, .. } = record else {
                unreachable!("record constructed as Interval above");
            };
            regs_buf = sockets;
            if completed.is_multiple_of(j.checkpoint_every) {
                // The journal prefix a checkpoint refers to must be
                // durable before the checkpoint claims it exists.
                j.writer.sync()?;
                let cp = checkpoint_state(
                    completed,
                    tick_now,
                    seed,
                    &per_socket,
                    machine.injector_snapshot(),
                );
                write_checkpoint(&j.dir, completed, &cp.encode()?)?;
                journal_checkpoints.inc();
                tel.record_decision(DecisionEvent {
                    tick: tick_now,
                    at_us: machine.now().0,
                    socket: 0,
                    phase: 0,
                    oi_class: None,
                    flops_ratio: None,
                    actuator: Actuator::Journal,
                    old: (completed - j.checkpoint_every) as f64,
                    new: completed as f64,
                    reason: Reason::Checkpoint,
                });
            }
        }
    }

    if let Some(j) = active.as_mut() {
        let record = JournalRecord::Complete {
            intervals: completed,
            tick: machine.now().0 / machine.config().tick.as_micros(),
        };
        j.writer.append(&record.encode()?)?;
        j.writer.sync()?;
    }

    let exec_time = machine.now().duration_since(started).as_seconds();
    let mut pkg = Joules(0.0);
    let mut dram = Joules(0.0);
    for (s, start) in start_snaps.iter().enumerate() {
        let end = sample_end(machine.as_ref(), SocketId(s as u16))?;
        pkg += end.pkg_energy - start.pkg_energy;
        dram += end.dram_energy - start.dram_energy;
    }

    // Restore platform defaults through the guards *before* draining the
    // report, so the restore (and any pending degradation) events are part
    // of the trace the caller sees.
    for (_, _, _, guard) in per_socket {
        drop(guard.restore_now());
    }

    let trace = match spec.trace {
        Some(t) => machine.take_trace(t.socket)?,
        None => None,
    };

    Ok(RunResult {
        exec_time,
        avg_pkg_power: pkg / exec_time,
        avg_dram_power: dram / exec_time,
        pkg_energy: pkg,
        dram_energy: dram,
        trace,
        telemetry: spec.telemetry.then(|| tel.report()),
    })
}

/// Executes `runs` seeded repetitions in parallel and summarizes them with
/// the paper's trimmed statistics.
pub fn run_repeated(spec: &ExperimentSpec, runs: usize, base_seed: u64) -> Result<RepeatedResult> {
    if runs == 0 {
        return Err(Error::Precondition("runs must be >= 1".into()));
    }
    let results: Vec<RunResult> = (0..runs)
        .into_par_iter()
        .map(|i| run_once(spec, base_seed.wrapping_add(i as u64 * 7919)))
        .collect::<Result<Vec<_>>>()?;

    let times: Vec<f64> = results.iter().map(|r| r.exec_time.value()).collect();
    let pkg: Vec<f64> = results.iter().map(|r| r.avg_pkg_power.value()).collect();
    let dram: Vec<f64> = results.iter().map(|r| r.avg_dram_power.value()).collect();
    let energy: Vec<f64> = results.iter().map(|r| r.total_energy().value()).collect();
    Ok(RepeatedResult {
        exec_time: trimmed(&times),
        pkg_power: trimmed(&pkg),
        dram_power: trimmed(&dram),
        total_energy: trimmed(&energy),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(app: &str, controller: ControllerKind) -> ExperimentSpec {
        ExperimentSpec {
            sim: SimConfig::yeti_single_socket(0),
            app: app.into(),
            controller,
            trace: None,
            interval_ms: None,
            telemetry: false,
            fault_plan: None,
            engine: Engine::default(),
        }
    }

    #[test]
    fn default_run_produces_sane_numbers() {
        let r = run_once(&spec("EP", ControllerKind::Default), 1).unwrap();
        assert!(
            (25.0..40.0).contains(&r.exec_time.value()),
            "{:?}",
            r.exec_time
        );
        assert!(
            (100.0..135.0).contains(&r.avg_pkg_power.value()),
            "pkg {:?}",
            r.avg_pkg_power
        );
        assert!(r.avg_dram_power.value() > 10.0);
        assert!(r.total_energy().value() > 0.0);
    }

    #[test]
    fn unknown_app_errors() {
        assert!(run_once(&spec("NOPE", ControllerKind::Default), 1).is_err());
    }

    #[test]
    fn static_cap_reduces_power_and_slows_compute() {
        let free = run_once(&spec("EP", ControllerKind::Default), 1).unwrap();
        let capped = run_once(
            &spec("EP", ControllerKind::StaticCap { cap: Watts(100.0) }),
            1,
        )
        .unwrap();
        assert!(capped.avg_pkg_power.value() < free.avg_pkg_power.value() - 10.0);
        assert!(capped.exec_time.value() > free.exec_time.value() * 1.02);
    }

    #[test]
    fn dufp_respects_large_slowdown_budget_on_ep() {
        let free = run_once(&spec("EP", ControllerKind::Default), 2).unwrap();
        let dufp = run_once(
            &spec(
                "EP",
                ControllerKind::Dufp {
                    slowdown: Ratio::from_percent(20.0),
                },
            ),
            2,
        )
        .unwrap();
        let overhead = dufp.exec_time.value() / free.exec_time.value() - 1.0;
        assert!(overhead < 0.25, "overhead {overhead}");
        assert!(
            dufp.avg_pkg_power.value() < free.avg_pkg_power.value(),
            "DUFP must save power on EP"
        );
    }

    #[test]
    fn trace_request_round_trips() {
        let mut s = spec("CG", ControllerKind::Default);
        s.trace = Some(TraceSpec {
            socket: SocketId(0),
            stride: 100,
        });
        let r = run_once(&s, 3).unwrap();
        let trace = r.trace.expect("trace requested");
        assert!(!trace.points.is_empty());
    }

    #[test]
    fn telemetry_off_by_default_and_absent_from_results() {
        let r = run_once(&spec("EP", ControllerKind::Default), 1).unwrap();
        assert!(r.telemetry.is_none());
    }

    #[test]
    fn telemetry_run_reports_decisions_and_stage_timings() {
        let mut s = spec(
            "CG",
            ControllerKind::Dufp {
                slowdown: Ratio::from_percent(10.0),
            },
        );
        s.telemetry = true;
        let r = run_once(&s, 4).unwrap();
        let report = r.telemetry.expect("telemetry requested");
        assert!(!report.decisions.is_empty(), "DUFP on CG must actuate");
        assert_eq!(report.dropped, 0);
        // Every event carries a typed reason; the per-reason tally must
        // account for every decision.
        let total: usize = report.counts_by_reason().iter().map(|(_, n)| n).sum();
        assert_eq!(total, report.decisions.len());
        // Stage timings and simulator gauges all made it into the snapshot.
        for h in ["runner.tick_us", "runner.sample_us", "runner.control_us"] {
            let hist = report
                .metrics
                .histograms
                .iter()
                .find(|s| s.name == h)
                .unwrap_or_else(|| panic!("missing histogram {h}"));
            assert!(hist.count > 0, "{h} never observed");
        }
        assert!(report
            .metrics
            .gauges
            .iter()
            .any(|g| g.name == "sim.socket0.pkg_power_w" && g.value > 0.0));
    }

    #[test]
    fn chaos_run_degrades_and_restores_without_aborting() {
        // ~1 % of all actuator writes fail transiently, and every cap write
        // fails for 25 consecutive intervals (ticks 200..5200): the retry
        // layer must ride out the noise, the burst must degrade DUFP to
        // uncore-only, and the run must still finish with a safe-state
        // restore on record.
        let mut s = spec(
            "EP",
            ControllerKind::Dufp {
                slowdown: Ratio::from_percent(10.0),
            },
        );
        s.telemetry = true;
        s.fault_plan = Some(
            FaultPlan::parse("seed=42;write,p=0.01;write,reg=cap,cpu=0-15,window=200+5000")
                .expect("valid plan"),
        );
        let r = run_once(&s, 4).expect("chaos run must survive its faults");
        assert!(r.exec_time.value() > 0.0);
        let report = r.telemetry.expect("telemetry requested");
        let count = |reason| {
            report
                .decisions
                .iter()
                .filter(|e| e.reason == reason)
                .count()
        };
        assert!(
            count(Reason::ActuationRetry) > 0,
            "transient faults must be retried"
        );
        assert!(
            count(Reason::Degraded) > 0,
            "a persistent cap-write burst must degrade DUFP to uncore-only"
        );
        assert!(
            count(Reason::SafeStateRestore) > 0,
            "the guard must log the end-of-run restore"
        );
    }

    #[test]
    fn repeated_runs_summarize() {
        let r = run_repeated(&spec("EP", ControllerKind::Default), 4, 10).unwrap();
        assert_eq!(r.exec_time.n, 2, "4 runs, trimmed to 2");
        assert!(r.exec_time.relative_spread() < 0.05);
    }

    #[test]
    fn zero_runs_rejected() {
        assert!(run_repeated(&spec("EP", ControllerKind::Default), 0, 1).is_err());
    }
}
