//! Paper-style ratio reporting.
//!
//! Every figure in the paper presents results "as a percentage over its
//! default execution time and power and energy consumption" (§V); the
//! Fig. 1 motivation additionally normalizes power by the *default power
//! budget* (125 W per socket) rather than by consumption.

use crate::stats::RepeatedResult;
use dufp_types::Watts;
use serde::{Deserialize, Serialize};

/// Percentage deltas of a variant against the default configuration.
/// Positive `*_savings_pct` means the variant consumes less; positive
/// `overhead_pct` means it runs slower.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ratios {
    /// Execution-time overhead, percent over the default time.
    pub overhead_pct: f64,
    /// Package power savings, percent of the default package power.
    pub pkg_power_savings_pct: f64,
    /// DRAM power savings, percent of the default DRAM power.
    pub dram_power_savings_pct: f64,
    /// Package+DRAM energy savings, percent of the default energy.
    pub energy_savings_pct: f64,
}

/// Computes the Fig. 3/4-style ratios of `variant` against `default_run`.
pub fn ratios_vs_default(default_run: &RepeatedResult, variant: &RepeatedResult) -> Ratios {
    let pct = |base: f64, v: f64| (1.0 - v / base) * 100.0;
    Ratios {
        overhead_pct: (variant.exec_time.mean / default_run.exec_time.mean - 1.0) * 100.0,
        pkg_power_savings_pct: pct(default_run.pkg_power.mean, variant.pkg_power.mean),
        dram_power_savings_pct: pct(default_run.dram_power.mean, variant.dram_power.mean),
        energy_savings_pct: pct(default_run.total_energy.mean, variant.total_energy.mean),
    }
}

/// Fig. 1-style power ratio: consumption over the socket *budget*
/// (`sockets × PL1`), not over default consumption.
pub fn power_over_budget(avg_power: Watts, sockets: u16, pl1: Watts) -> f64 {
    avg_power.value() / (f64::from(sockets) * pl1.value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    fn rr(time: f64, pkg: f64, dram: f64, energy: f64) -> RepeatedResult {
        let s = |v: f64| Summary {
            mean: v,
            min: v,
            max: v,
            n: 8,
        };
        RepeatedResult {
            exec_time: s(time),
            pkg_power: s(pkg),
            dram_power: s(dram),
            total_energy: s(energy),
        }
    }

    #[test]
    fn ratios_have_paper_sign_conventions() {
        let default_run = rr(100.0, 120.0, 30.0, 15000.0);
        let variant = rr(105.0, 100.0, 27.0, 13500.0);
        let r = ratios_vs_default(&default_run, &variant);
        assert!((r.overhead_pct - 5.0).abs() < 1e-9);
        assert!((r.pkg_power_savings_pct - 16.666).abs() < 0.01);
        assert!((r.dram_power_savings_pct - 10.0).abs() < 1e-9);
        assert!((r.energy_savings_pct - 10.0).abs() < 1e-9);
    }

    #[test]
    fn losses_are_negative_savings() {
        let default_run = rr(100.0, 120.0, 30.0, 15000.0);
        let worse = rr(99.0, 125.0, 31.0, 15600.0);
        let r = ratios_vs_default(&default_run, &worse);
        assert!(r.overhead_pct < 0.0);
        assert!(r.pkg_power_savings_pct < 0.0);
        assert!(r.energy_savings_pct < 0.0);
    }

    #[test]
    fn budget_ratio_matches_fig1_convention() {
        // One socket consuming 100 W of a 125 W budget → 0.8.
        assert!((power_over_budget(Watts(100.0), 1, Watts(125.0)) - 0.8).abs() < 1e-12);
        // Four sockets, 400 W of 500 W.
        assert!((power_over_budget(Watts(400.0), 4, Watts(125.0)) - 0.8).abs() < 1e-12);
    }
}
