//! # DUFP — Dynamic Uncore Frequency scaling and Power capping
//!
//! A reproduction of *"Combining Uncore Frequency and Dynamic Power Capping
//! to Improve Power Savings"* (Guermouche, IPDPSW 2022): the DUFP runtime
//! controller, its DUF baseline, the measurement framework, the hardware
//! access layers (MSR, RAPL/powercap) and a calibrated Skylake-SP socket
//! simulator that stands in for the paper's Grid'5000 YETI testbed.
//!
//! ## Quick start
//!
//! ```
//! use dufp::prelude::*;
//!
//! // CG under DUFP at 10 % tolerated slowdown, on the simulated YETI node.
//! let spec = ExperimentSpec {
//!     sim: SimConfig::yeti_single_socket(1),
//!     app: "CG".into(),
//!     controller: ControllerKind::Dufp {
//!         slowdown: Ratio::from_percent(10.0),
//!     },
//!     trace: None,
//!     interval_ms: None, telemetry: false, // the paper's 200 ms
//!     fault_plan: None,
//!     engine: Engine::default(), // memoized fast path; `Tick` = legacy oracle
//! };
//! let result = run_once(&spec, 1).unwrap();
//! assert!(result.exec_time.value() > 0.0);
//! println!(
//!     "CG/DUFP@10%: {:.1}s, {:.1} W package",
//!     result.exec_time.value(),
//!     result.avg_pkg_power.value()
//! );
//! ```
//!
//! ## Layers
//!
//! * [`dufp_types`] — units, ids, the Table I architecture description.
//! * [`dufp_msr`] — MSR codecs and backends (simulator or `/dev/cpu/N/msr`).
//! * [`dufp_rapl`] — powercap-style RAPL zones over MSR or sysfs.
//! * [`dufp_counters`] — the PAPI-like sampling layer.
//! * [`dufp_model`] — the analytic power/performance models.
//! * [`dufp_sim`] — the discrete-time socket simulator.
//! * [`dufp_workloads`] — phase-graph models of the paper's applications.
//! * [`dufp_control`] — the DUF and DUFP controllers.
//! * [`runner`] / [`stats`] / [`compare`] (this crate) — experiments,
//!   trimmed statistics and paper-style ratio reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod compare;
pub mod journal;
pub mod runner;
pub mod stats;
pub mod sweep;
pub mod watchdog;

pub use capture::{record_trace, record_workload};
pub use compare::{ratios_vs_default, Ratios};
pub use journal::{
    resume, run_journaled, summarize, CheckpointState, JournalOptions, JournalRecord,
    JournalSummary, RunMeta, SocketRegs,
};
pub use runner::{
    run_once, run_repeated, ControllerKind, Engine, ExperimentSpec, RunResult, TraceSpec,
};
pub use stats::{trimmed, RepeatedResult, Summary};
pub use sweep::{
    parse_grid, run_sweep, to_jsonl_bytes, SweepGrid, SweepJob, SweepOutput, SweepRow,
};
pub use watchdog::{Watchdog, WatchdogTrip};

/// One-stop imports for examples and tools.
pub mod prelude {
    pub use crate::compare::{ratios_vs_default, Ratios};
    pub use crate::runner::{
        run_once, run_repeated, ControllerKind, Engine, ExperimentSpec, RunResult, TraceSpec,
    };
    pub use crate::stats::{trimmed, RepeatedResult, Summary};
    pub use dufp_control::{ControlConfig, Controller, Duf, Dufp};
    pub use dufp_counters::{IntervalMetrics, Sampler, Telemetry};
    pub use dufp_sim::{Machine, SimConfig};
    pub use dufp_types::{
        ArchSpec, Duration, Hertz, Instant, Joules, Ratio, Seconds, SocketId, Watts,
    };
    pub use dufp_workloads::{apps, MaterializeCtx, Workload};
}
