//! Sensor-fault watchdog for the experiment runner.
//!
//! The paper already resets the caps when measured power overshoots after
//! an uncore reset (§IV-D); this module generalizes that reflex to sensor
//! faults. Each monitoring interval is vetted before the controller sees
//! it: non-finite values, missed ticks (an interval much longer than the
//! configured monitoring period) and energy-counter anomalies (absurd
//! implied power) all trip the watchdog. The runner reacts by re-priming
//! the sampler and resetting the power cap — a controller must never act
//! on a corrupted sample, and a cap chosen from one must not linger.

use dufp_counters::IntervalMetrics;
use dufp_types::{Seconds, Watts};

/// Why the watchdog tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogTrip {
    /// A metric was NaN or infinite (stale/corrupted counter sample).
    NonFiniteSample,
    /// The interval was far longer than the monitoring period — ticks were
    /// missed, so the derived rates average over unknown conditions.
    MissedTicks,
    /// The energy counters implied an impossible package power.
    EnergyAnomaly,
}

impl WatchdogTrip {
    /// Stable label used in traces and counters.
    pub fn label(self) -> &'static str {
        match self {
            WatchdogTrip::NonFiniteSample => "non-finite-sample",
            WatchdogTrip::MissedTicks => "missed-ticks",
            WatchdogTrip::EnergyAnomaly => "energy-anomaly",
        }
    }
}

/// Per-socket watchdog over the derived interval metrics.
#[derive(Debug, Clone)]
pub struct Watchdog {
    /// The nominal monitoring interval.
    expected: Seconds,
    /// Trip when `interval > stretch × expected`.
    stretch: f64,
    /// Trip when implied package power exceeds this.
    max_power: Watts,
    trips: u64,
}

impl Watchdog {
    /// Interval-stretch factor: two consecutive intervals can legitimately
    /// merge (scheduling jitter), three cannot.
    const DEFAULT_STRETCH: f64 = 3.0;

    /// A watchdog for a monitoring interval of `expected` seconds.
    /// `max_power` bounds plausible per-socket package power — a Skylake-SP
    /// package under PL2 stays far below it, so anything above means the
    /// energy counter glitched (dropped wrap, counter reset mid-interval).
    pub fn new(expected: Seconds, max_power: Watts) -> Self {
        Watchdog {
            expected,
            stretch: Self::DEFAULT_STRETCH,
            max_power,
            trips: 0,
        }
    }

    /// Vets one interval; `Some(trip)` means the sample must be discarded
    /// and the sampler re-primed.
    pub fn check(&mut self, m: &IntervalMetrics) -> Option<WatchdogTrip> {
        let trip = self.vet(m);
        if trip.is_some() {
            self.trips += 1;
        }
        trip
    }

    fn vet(&self, m: &IntervalMetrics) -> Option<WatchdogTrip> {
        let finite = m.interval.value().is_finite()
            && m.flops.value().is_finite()
            && m.bandwidth.value().is_finite()
            && m.pkg_power.value().is_finite()
            && m.dram_power.value().is_finite()
            && m.core_freq.value().is_finite();
        if !finite {
            return Some(WatchdogTrip::NonFiniteSample);
        }
        if m.interval.value() > self.expected.value() * self.stretch {
            return Some(WatchdogTrip::MissedTicks);
        }
        if m.pkg_power.value() < 0.0
            || m.pkg_power.value() > self.max_power.value()
            || m.dram_power.value() < 0.0
            || m.dram_power.value() > self.max_power.value()
        {
            return Some(WatchdogTrip::EnergyAnomaly);
        }
        None
    }

    /// Total trips so far.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dufp_types::{BytesPerSec, FlopsPerSec, Hertz, Instant, OpIntensity};

    fn metrics() -> IntervalMetrics {
        IntervalMetrics {
            at: Instant(200_000),
            interval: Seconds(0.2),
            flops: FlopsPerSec(1e10),
            bandwidth: BytesPerSec(2e10),
            oi: OpIntensity(0.5),
            pkg_power: Watts(110.0),
            dram_power: Watts(25.0),
            core_freq: Hertz::from_ghz(2.6),
        }
    }

    fn dog() -> Watchdog {
        Watchdog::new(Seconds(0.2), Watts(400.0))
    }

    #[test]
    fn clean_interval_passes() {
        let mut d = dog();
        assert_eq!(d.check(&metrics()), None);
        assert_eq!(d.trips(), 0);
    }

    #[test]
    fn nan_metrics_trip() {
        let mut d = dog();
        let mut m = metrics();
        m.flops = FlopsPerSec(f64::NAN);
        assert_eq!(d.check(&m), Some(WatchdogTrip::NonFiniteSample));
        let mut m = metrics();
        m.core_freq = Hertz(f64::INFINITY);
        assert_eq!(d.check(&m), Some(WatchdogTrip::NonFiniteSample));
        assert_eq!(d.trips(), 2);
    }

    #[test]
    fn stretched_interval_trips_as_missed_ticks() {
        let mut d = dog();
        let mut m = metrics();
        m.interval = Seconds(0.5);
        assert_eq!(d.check(&m), None, "2.5x is tolerated jitter");
        m.interval = Seconds(0.7);
        assert_eq!(d.check(&m), Some(WatchdogTrip::MissedTicks));
    }

    #[test]
    fn absurd_power_trips_as_energy_anomaly() {
        let mut d = dog();
        let mut m = metrics();
        m.pkg_power = Watts(2500.0);
        assert_eq!(d.check(&m), Some(WatchdogTrip::EnergyAnomaly));
        let mut m = metrics();
        m.dram_power = Watts(-1.0);
        assert_eq!(d.check(&m), Some(WatchdogTrip::EnergyAnomaly));
    }

    #[test]
    fn saturated_oi_does_not_trip() {
        // oi is intentionally exempt: the sampler clamps it, and a
        // CPU-bound interval legitimately saturates it.
        let mut d = dog();
        let mut m = metrics();
        m.oi = OpIntensity(dufp_counters::OI_SATURATED);
        assert_eq!(d.check(&m), None);
    }
}
