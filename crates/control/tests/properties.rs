//! Property tests for the controller state machines: arbitrary metric
//! streams must never drive the actuators outside their legal ranges, and
//! the actuator caches must always agree with the hardware registers.

use dufp_control::{
    Actuators, ControlConfig, Controller, Dnpc, Duf, Dufp, DufpF, ResilientActuators,
    SafeStateGuard,
};
use dufp_counters::IntervalMetrics;
use dufp_msr::registers::{
    PkgPowerLimit, RaplPowerUnit, UncoreRatioLimit, MSR_PKG_POWER_LIMIT, MSR_RAPL_POWER_UNIT,
    MSR_UNCORE_RATIO_LIMIT, SKYLAKE_SP_POWER_UNIT_RAW,
};
use dufp_msr::{FakeMsr, FaultOp, FaultPlan, FaultRule, FaultWhen, MsrIo};
use dufp_rapl::{Constraint, MsrRapl, PowerCapper};
use dufp_types::{
    ArchSpec, BytesPerSec, FlopsPerSec, Hertz, Instant, OpIntensity, Ratio, Seconds, SocketId,
    Watts,
};
use proptest::prelude::*;
use std::sync::Arc;

type Rig = (
    Arc<FakeMsr>,
    ControlConfig,
    dufp_control::HwActuators<Arc<FakeMsr>, MsrRapl<Arc<FakeMsr>>>,
);

fn rig(slowdown_pct: f64) -> Rig {
    let msr = Arc::new(FakeMsr::new(16));
    msr.seed(MSR_RAPL_POWER_UNIT, SKYLAKE_SP_POWER_UNIT_RAW);
    let units = RaplPowerUnit::skylake_sp();
    let reg = PkgPowerLimit::defaults(Watts(125.0), Seconds(1.0), Watts(150.0), Seconds(0.01));
    msr.seed(MSR_PKG_POWER_LIMIT, reg.encode(&units).unwrap());
    let arch = ArchSpec::yeti();
    let band = UncoreRatioLimit {
        max_ratio: arch.uncore_freq_max.as_ratio_100mhz(),
        min_ratio: arch.uncore_freq_min.as_ratio_100mhz(),
    };
    msr.seed(MSR_UNCORE_RATIO_LIMIT, band.encode());
    let capper = MsrRapl::new(Arc::clone(&msr), 1, 16).unwrap();
    let cfg = ControlConfig::from_arch(&arch, Ratio::from_percent(slowdown_pct)).unwrap();
    let act = dufp_control::HwActuators::new(Arc::clone(&msr), capper, SocketId(0), 0, cfg.clone())
        .unwrap();
    (msr, cfg, act)
}

/// Arbitrary-but-plausible interval metrics.
fn arb_metrics() -> impl Strategy<Value = (f64, f64, f64, f64)> {
    (
        0.0f64..1e12,   // flops/s
        1.0f64..1.2e11, // bytes/s
        30.0f64..160.0, // pkg power W
        1.0f64..2.8,    // core freq GHz
    )
}

fn metrics(t: u64, flops: f64, bw: f64, power: f64, freq: f64) -> IntervalMetrics {
    IntervalMetrics {
        at: Instant(t * 200_000),
        interval: Seconds(0.2),
        flops: FlopsPerSec(flops),
        bandwidth: BytesPerSec(bw),
        oi: OpIntensity(if bw > 0.0 { flops / bw } else { f64::INFINITY }),
        pkg_power: Watts(power),
        dram_power: Watts(20.0),
        core_freq: Hertz::from_ghz(freq),
    }
}

fn check_invariants(
    cfg: &ControlConfig,
    act: &dufp_control::HwActuators<Arc<FakeMsr>, MsrRapl<Arc<FakeMsr>>>,
    msr: &FakeMsr,
) {
    // Cached views stay in legal ranges.
    assert!(act.uncore() >= cfg.uncore_min && act.uncore() <= cfg.uncore_max);
    assert!(act.cap_long() >= cfg.cap_floor);
    assert!(act.cap_short() >= act.cap_long());
    assert!(act.core_freq_cap() >= cfg.core_freq_min);
    assert!(act.core_freq_cap() <= cfg.core_freq_max);

    // Cache coherence: the hardware registers agree with the cached view.
    let units = RaplPowerUnit::skylake_sp();
    let raw = msr.read(0, MSR_PKG_POWER_LIMIT).unwrap();
    let reg = PkgPowerLimit::decode(raw, &units);
    assert!(
        (reg.pl1.power.value() - act.cap_long().value()).abs() < 0.25,
        "PL1 register {:?} vs cache {:?}",
        reg.pl1.power,
        act.cap_long()
    );
    assert!(
        (reg.pl2.power.value() - act.cap_short().value()).abs() < 0.25,
        "PL2 register {:?} vs cache {:?}",
        reg.pl2.power,
        act.cap_short()
    );
}

macro_rules! fuzz_controller {
    ($name:ident, $make:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn $name(
                slowdown in prop::sample::select(vec![0.0, 5.0, 10.0, 20.0]),
                stream in prop::collection::vec(arb_metrics(), 1..120),
            ) {
                let (msr, cfg, mut act) = rig(slowdown);
                let mut controller = $make(cfg.clone());
                for (t, (flops, bw, power, freq)) in stream.into_iter().enumerate() {
                    controller
                        .on_interval(&metrics(t as u64, flops, bw, power, freq), &mut act)
                        .unwrap();
                    check_invariants(&cfg, &act, &msr);
                }
            }
        }
    };
}

fuzz_controller!(duf_survives_arbitrary_metric_streams, Duf::new);
fuzz_controller!(dufp_survives_arbitrary_metric_streams, Dufp::new);
fuzz_controller!(dufpf_survives_arbitrary_metric_streams, DufpF::new);
fuzz_controller!(dnpc_survives_arbitrary_metric_streams, Dnpc::new);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A `SlowdownViolation` decision event is a claim that measured
    /// FLOPS/s fell below `(1 - slowdown)` of the running per-phase
    /// maximum — the emitted `flops_ratio` must back it up. The phase
    /// tracker observes the interval *before* the controller decides, so
    /// the ratio and the decision share the same maximum and the bound is
    /// exact (modulo float rounding).
    #[test]
    fn slowdown_violation_events_imply_flops_below_budget(
        slowdown in prop::sample::select(vec![5.0, 10.0, 20.0]),
        stream in prop::collection::vec(arb_metrics(), 1..120),
    ) {
        use dufp_telemetry::{Reason, SocketTelemetry, Telemetry};
        let budget = 1.0 - slowdown / 100.0;
        type Make = fn(ControlConfig, SocketTelemetry) -> Box<dyn Controller>;
        let makes: [Make; 3] = [
            |cfg, t| Box::new(Duf::new(cfg).with_telemetry(t)),
            |cfg, t| Box::new(Dufp::new(cfg).with_telemetry(t)),
            |cfg, t| Box::new(DufpF::new(cfg).with_telemetry(t)),
        ];
        for make in makes {
            let tel = Telemetry::new(8192);
            let (_msr, cfg, mut act) = rig(slowdown);
            let mut controller = make(cfg, tel.for_socket(0));
            for (t, &(flops, bw, power, freq)) in stream.iter().enumerate() {
                controller
                    .on_interval(&metrics(t as u64, flops, bw, power, freq), &mut act)
                    .unwrap();
            }
            for e in tel.drain_events() {
                if e.reason == Reason::SlowdownViolation {
                    let ratio = e
                        .flops_ratio
                        .expect("slowdown violations must carry a flops ratio");
                    prop_assert!(
                        ratio < budget + 1e-9,
                        "{}: flops ratio {ratio} does not violate the {budget} budget (tick {})",
                        controller.name(),
                        e.tick
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// NaN/∞-poisoned metrics must not wedge the controllers or break the
    /// actuator invariants (a dead PAPI counter reads as zero or garbage).
    #[test]
    fn dufp_tolerates_degenerate_metrics(
        poison_idx in 0usize..20,
        kind in 0u8..4,
    ) {
        let (msr, cfg, mut act) = rig(10.0);
        let mut controller = Dufp::new(cfg.clone());
        for t in 0..20u64 {
            let m = if t as usize == poison_idx {
                match kind {
                    0 => metrics(t, 0.0, 0.0, 0.0, 1.0),
                    1 => metrics(t, f64::INFINITY, 1.0, 100.0, 2.8),
                    2 => metrics(t, 1e11, 0.0, 100.0, 2.8), // oi = inf
                    _ => metrics(t, 0.0, 1e11, 160.0, 1.0),
                }
            } else {
                metrics(t, 1e11, 5e10, 100.0, 2.8)
            };
            controller.on_interval(&m, &mut act).unwrap();
            check_invariants(&cfg, &act, &msr);
        }
    }
}

/// Arbitrary fault rules against the cap and uncore registers: random
/// probabilistic noise, one-shot faults and bursts, on reads and writes.
/// (The vendored proptest shim has no `prop_map`, so rules are drawn as
/// raw selector tuples and decoded here.)
type RuleTuple = (u8, u8, u8, f64, u64, u64);

fn arb_fault_rule() -> impl Strategy<Value = RuleTuple> {
    (
        0u8..3,       // op selector
        0u8..3,       // register selector
        0u8..3,       // schedule selector
        0.0f64..0.25, // probability
        0u64..40,     // window start / one-shot index
        1u64..25,     // window length
    )
}

fn decode_rule((op, reg, when, p, from, count): RuleTuple) -> FaultRule {
    FaultRule {
        op: match op {
            0 => FaultOp::Read,
            1 => FaultOp::Write,
            _ => FaultOp::Any,
        },
        register: match reg {
            0 => None,
            1 => Some(MSR_PKG_POWER_LIMIT),
            _ => Some(MSR_UNCORE_RATIO_LIMIT),
        },
        cpus: None,
        when: match when {
            0 => FaultWhen::Probability { p },
            1 => FaultWhen::At { at: from },
            _ => FaultWhen::Window { from, count },
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline resilience property: under *any* fault plan, a DUFP
    /// run through the retry/degrade wrapper (a) never rests the power cap
    /// below the floor — degraded or not — and (b) leaves the register
    /// file at platform defaults once the safe-state guard lets go.
    #[test]
    fn any_fault_plan_leaves_defaults_restored_and_floor_respected(
        seed in 0u64..1_000,
        rules in prop::collection::vec(arb_fault_rule(), 0..4),
        stream in prop::collection::vec(arb_metrics(), 1..60),
    ) {
        let (msr, cfg, act) = rig(10.0);
        let resilient = ResilientActuators::new(act, cfg.cap_floor);
        let mut guard = SafeStateGuard::new(resilient);
        let mut controller = Dufp::new(cfg.clone());
        let rules = rules.into_iter().map(decode_rule).collect();
        msr.inject_plan(FaultPlan { seed, rules });
        for (t, (flops, bw, power, freq)) in stream.into_iter().enumerate() {
            controller
                .on_interval(&metrics(t as u64, flops, bw, power, freq), &mut *guard)
                .unwrap();
            // Injected faults are transient/persistent, never fatal: the
            // run keeps going and the resting cap honors the floor.
            prop_assert!(
                guard.cap_long() >= cfg.cap_floor,
                "cap {:?} rests below floor {:?} (degradation {:?})",
                guard.cap_long(),
                cfg.cap_floor,
                guard.degradation()
            );
        }
        // The fault plan ends with the workload (a chaos plan models the
        // run, not the teardown); the guard must then restore defaults
        // even if knobs were degraded mid-run.
        msr.clear_faults();
        drop(guard.restore_now());

        let units = RaplPowerUnit::skylake_sp();
        let reg = PkgPowerLimit::decode(msr.read(0, MSR_PKG_POWER_LIMIT).unwrap(), &units);
        prop_assert!((reg.pl1.power.value() - 125.0).abs() < 0.25, "PL1 {:?}", reg.pl1.power);
        prop_assert!((reg.pl2.power.value() - 150.0).abs() < 0.25, "PL2 {:?}", reg.pl2.power);
        let arch = ArchSpec::yeti();
        let band = UncoreRatioLimit::decode(msr.read(0, MSR_UNCORE_RATIO_LIMIT).unwrap());
        prop_assert_eq!(band.max_ratio, arch.uncore_freq_max.as_ratio_100mhz());
        prop_assert_eq!(band.min_ratio, arch.uncore_freq_min.as_ratio_100mhz());
    }
}

#[test]
fn mid_run_msr_fault_surfaces_as_a_clean_error() {
    // A dying MSR device must produce an error, not a panic or a wedged
    // state; after the fault clears the controller keeps working.
    let (msr, cfg, mut act) = rig(10.0);
    let mut controller = Dufp::new(cfg.clone());
    controller
        .on_interval(&metrics(0, 1e11, 5e10, 100.0, 2.8), &mut act)
        .unwrap();
    msr.inject(dufp_msr::io::Fault::WriteOf(MSR_PKG_POWER_LIMIT));
    let err = controller
        .on_interval(&metrics(1, 1e11, 5e10, 100.0, 2.8), &mut act)
        .unwrap_err();
    assert!(err.to_string().contains("0x610"), "{err}");
    msr.inject(dufp_msr::io::Fault::None);
    controller
        .on_interval(&metrics(2, 1e11, 5e10, 100.0, 2.8), &mut act)
        .unwrap();
    check_invariants(&cfg, &act, &msr);
}

#[test]
fn cap_writes_are_visible_in_the_register_file() {
    let (msr, cfg, mut act) = rig(10.0);
    let mut controller = Dufp::new(cfg);
    // Two steady intervals: prime then decrease → 120 W in the register.
    controller
        .on_interval(&metrics(0, 1e11, 5e10, 100.0, 2.8), &mut act)
        .unwrap();
    controller
        .on_interval(&metrics(1, 1e11, 5e10, 100.0, 2.8), &mut act)
        .unwrap();
    let units = RaplPowerUnit::skylake_sp();
    let reg = PkgPowerLimit::decode(msr.read(0, MSR_PKG_POWER_LIMIT).unwrap(), &units);
    assert_eq!(reg.pl1.power, Watts(120.0));
    assert_eq!(reg.pl2.power, Watts(120.0));
}

#[test]
fn actuator_cache_follows_external_clamping() {
    // A capper that clamps (like the cluster budget wrapper) must stay
    // coherent with the cached view thanks to the read-back writes.
    struct Clamping<C>(C);
    impl<C: PowerCapper> PowerCapper for Clamping<C> {
        fn set_limit(&self, s: SocketId, w: Constraint, l: Watts) -> dufp_types::Result<()> {
            self.0.set_limit(s, w, l.min(Watts(100.0)))
        }
        fn limit(&self, s: SocketId, w: Constraint) -> dufp_types::Result<Watts> {
            self.0.limit(s, w)
        }
        fn defaults(&self, s: SocketId) -> dufp_types::Result<(Watts, Watts)> {
            let (a, b) = self.0.defaults(s)?;
            Ok((a.min(Watts(100.0)), b.min(Watts(100.0))))
        }
        fn package_energy(&self, s: SocketId) -> dufp_types::Result<dufp_types::Joules> {
            self.0.package_energy(s)
        }
        fn dram_energy(&self, s: SocketId) -> dufp_types::Result<dufp_types::Joules> {
            self.0.dram_energy(s)
        }
    }

    let msr = Arc::new(FakeMsr::new(16));
    msr.seed(MSR_RAPL_POWER_UNIT, SKYLAKE_SP_POWER_UNIT_RAW);
    let units = RaplPowerUnit::skylake_sp();
    let reg = PkgPowerLimit::defaults(Watts(125.0), Seconds(1.0), Watts(150.0), Seconds(0.01));
    msr.seed(MSR_PKG_POWER_LIMIT, reg.encode(&units).unwrap());
    let arch = ArchSpec::yeti();
    let capper = Clamping(MsrRapl::new(Arc::clone(&msr), 1, 16).unwrap());
    let cfg = ControlConfig::from_arch(&arch, Ratio::from_percent(10.0)).unwrap();
    let mut act =
        dufp_control::HwActuators::new(Arc::clone(&msr), capper, SocketId(0), 0, cfg).unwrap();

    act.set_cap_both(Watts(115.0)).unwrap();
    assert_eq!(act.cap_long(), Watts(100.0), "cache reflects the clamp");
    act.reset_cap().unwrap();
    assert_eq!(
        act.cap_long(),
        Watts(100.0),
        "reset lands on the clamped default"
    );
}
