//! Controller configuration.

use dufp_types::{ArchSpec, Duration, Error, Hertz, Ratio, Result, Watts};
use serde::{Deserialize, Serialize};

/// Everything a DUF/DUFP instance needs to know about limits and steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlConfig {
    /// User-defined tolerated slowdown, in `[0, 1)` (the paper evaluates
    /// 0 %, 5 %, 10 % and 20 %).
    pub slowdown: Ratio,
    /// Monitoring interval (200 ms in the paper, §IV-D).
    pub interval: Duration,
    /// Measurement-error band: FLOPS/s within `epsilon` of the slowdown
    /// boundary are "equivalent" and the actuators hold steady (§III).
    pub epsilon: Ratio,
    /// Maximum (all-core turbo) core frequency; observing an average core
    /// frequency below it means RAPL is actively throttling.
    pub core_freq_max: Hertz,
    /// Lowest core P-state (DUFP-F's frequency floor).
    pub core_freq_min: Hertz,
    /// Core DVFS ladder step (100 MHz).
    pub core_freq_step: Hertz,
    /// Uncore ladder: lowest frequency.
    pub uncore_min: Hertz,
    /// Uncore ladder: highest frequency.
    pub uncore_max: Hertz,
    /// Uncore actuation step (100 MHz).
    pub uncore_step: Hertz,
    /// Cap actuation step (5 W).
    pub cap_step: Watts,
    /// Lowest cap DUFP applies (65 W, §IV-A).
    pub cap_floor: Watts,
    /// §IV-D: reset the cap when measured power exceeds the programmed cap
    /// by more than this margin (a freshly applied cap needs time to bite).
    pub overshoot_margin: Watts,
    /// Operational-intensity threshold below which a phase counts as
    /// *highly* memory-intensive (0.02).
    pub oi_highly_memory: f64,
    /// Operational-intensity threshold above which a phase counts as
    /// *highly* compute-intensive (100).
    pub oi_highly_compute: f64,
    /// After a slowdown violation forced an actuator back up, wait this
    /// many intervals before probing below that level again. Prevents the
    /// controller from oscillating across the violation boundary every
    /// other interval (which would push the *average* slowdown past the
    /// tolerance). `0` disables the memory entirely (ablation).
    pub reprobe_intervals: u32,
    /// Enable coupling 1 (§III): raise the cap when an uncore increase did
    /// not restore FLOPS/s. Disable only for ablation studies.
    pub coupling1: bool,
    /// Enable coupling 2 (§III): after a joint reset, re-read the uncore
    /// and retry its reset if the lingering cap held it down. Disable only
    /// for ablation studies.
    pub coupling2: bool,
    /// Enable the §IV-D rule: reset the cap when measured power exceeds the
    /// programmed cap beyond [`ControlConfig::overshoot_margin`]. Disable
    /// only for ablation studies.
    pub overshoot_reset: bool,
    /// §V-G improvement (off by default — the paper's tool does not have
    /// it): guard *cumulative* progress as well as per-interval FLOPS/s.
    /// Slowdowns that hide below the per-interval tolerance but accumulate
    /// (LAMMPS' aliased power bursts) freeze cap decreases once the
    /// cumulative deficit reaches the tolerated slowdown.
    pub cumulative_guard: bool,
}

/// A finite `f64`, or a typed error naming the offending field.
fn finite(name: &'static str, v: f64) -> Result<()> {
    if v.is_finite() {
        Ok(())
    } else {
        Err(Error::invalid(name, format!("{v} is not finite")))
    }
}

/// A finite, strictly positive `f64`.
fn positive(name: &'static str, v: f64) -> Result<()> {
    finite(name, v)?;
    if v > 0.0 {
        Ok(())
    } else {
        Err(Error::invalid(name, format!("{v} must be positive")))
    }
}

impl ControlConfig {
    /// The paper's configuration for `arch` at the given tolerated
    /// slowdown.
    pub fn from_arch(arch: &ArchSpec, slowdown: Ratio) -> Result<Self> {
        let cfg = Self::from_arch_unchecked(arch, slowdown);
        cfg.validate()?;
        Ok(cfg)
    }

    fn from_arch_unchecked(arch: &ArchSpec, slowdown: Ratio) -> Self {
        ControlConfig {
            slowdown,
            interval: Duration::from_millis(200),
            epsilon: Ratio(0.01),
            core_freq_max: arch.core_freq_max,
            core_freq_min: arch.core_freq_min,
            core_freq_step: arch.core_freq_step,
            uncore_min: arch.uncore_freq_min,
            uncore_max: arch.uncore_freq_max,
            uncore_step: arch.uncore_freq_step,
            cap_step: arch.cap_step,
            cap_floor: arch.cap_floor,
            overshoot_margin: Watts(3.0),
            oi_highly_memory: 0.02,
            oi_highly_compute: 100.0,
            reprobe_intervals: 25,
            coupling1: true,
            coupling2: true,
            overshoot_reset: true,
            cumulative_guard: false,
        }
    }

    /// Rejects configurations no controller can act on — NaN/negative
    /// magnitudes, inverted ladders, a zero monitoring interval — with a
    /// typed [`Error::InvalidValue`] naming the offending field. Called by
    /// [`ControlConfig::from_arch`] and by anything deserializing a config
    /// from user input.
    pub fn validate(&self) -> Result<()> {
        finite("slowdown", self.slowdown.value())?;
        if !(0.0..1.0).contains(&self.slowdown.value()) {
            return Err(Error::invalid(
                "slowdown",
                format!("{} must be within [0, 1)", self.slowdown.value()),
            ));
        }
        finite("epsilon", self.epsilon.value())?;
        if !(0.0..1.0).contains(&self.epsilon.value()) {
            return Err(Error::invalid(
                "epsilon",
                format!("{} must be within [0, 1)", self.epsilon.value()),
            ));
        }
        if self.interval.as_micros() == 0 {
            return Err(Error::invalid("interval", "zero monitoring interval"));
        }
        positive("core_freq_min", self.core_freq_min.value())?;
        positive("core_freq_max", self.core_freq_max.value())?;
        positive("core_freq_step", self.core_freq_step.value())?;
        if self.core_freq_min > self.core_freq_max {
            return Err(Error::invalid(
                "core_freq_min",
                format!(
                    "{:.2} GHz above core_freq_max {:.2} GHz",
                    self.core_freq_min.as_ghz(),
                    self.core_freq_max.as_ghz()
                ),
            ));
        }
        positive("uncore_min", self.uncore_min.value())?;
        positive("uncore_max", self.uncore_max.value())?;
        positive("uncore_step", self.uncore_step.value())?;
        if self.uncore_min > self.uncore_max {
            return Err(Error::invalid(
                "uncore_min",
                format!(
                    "{:.2} GHz above uncore_max {:.2} GHz",
                    self.uncore_min.as_ghz(),
                    self.uncore_max.as_ghz()
                ),
            ));
        }
        positive("cap_step", self.cap_step.value())?;
        positive("cap_floor", self.cap_floor.value())?;
        finite("overshoot_margin", self.overshoot_margin.value())?;
        if self.overshoot_margin.value() < 0.0 {
            return Err(Error::invalid(
                "overshoot_margin",
                format!("{} W is negative", self.overshoot_margin.value()),
            ));
        }
        positive("oi_highly_memory", self.oi_highly_memory)?;
        positive("oi_highly_compute", self.oi_highly_compute)?;
        if self.oi_highly_memory >= self.oi_highly_compute {
            return Err(Error::invalid(
                "oi_highly_memory",
                format!(
                    "{} not below oi_highly_compute {}",
                    self.oi_highly_memory, self.oi_highly_compute
                ),
            ));
        }
        Ok(())
    }

    /// The FLOPS/s floor implied by the tolerated slowdown for a per-phase
    /// maximum of `max`.
    #[inline]
    pub fn performance_floor(&self, max: f64) -> f64 {
        max * (1.0 - self.slowdown.value())
    }

    /// Half-width of the "equivalent" hold band around the floor.
    #[inline]
    pub fn band(&self, max: f64) -> f64 {
        max * self.epsilon.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yeti_defaults_match_paper() {
        let c = ControlConfig::from_arch(&ArchSpec::yeti(), Ratio::from_percent(5.0)).unwrap();
        assert_eq!(c.interval, Duration::from_millis(200));
        assert_eq!(c.cap_step, Watts(5.0));
        assert_eq!(c.cap_floor, Watts(65.0));
        assert_eq!(c.uncore_step, Hertz::from_mhz(100.0));
        assert_eq!(c.oi_highly_memory, 0.02);
        assert_eq!(c.oi_highly_compute, 100.0);
    }

    #[test]
    fn slowdown_must_be_a_fraction() {
        assert!(ControlConfig::from_arch(&ArchSpec::yeti(), Ratio(1.0)).is_err());
        assert!(ControlConfig::from_arch(&ArchSpec::yeti(), Ratio(-0.1)).is_err());
        assert!(ControlConfig::from_arch(&ArchSpec::yeti(), Ratio(0.0)).is_ok());
    }

    #[test]
    fn broken_configs_are_rejected_with_the_offending_field() {
        let base = ControlConfig::from_arch(&ArchSpec::yeti(), Ratio::from_percent(5.0)).unwrap();
        let check = |mutate: &dyn Fn(&mut ControlConfig), field: &str| {
            let mut c = base.clone();
            mutate(&mut c);
            let err = c.validate().unwrap_err().to_string();
            assert!(err.contains(field), "expected {field} in: {err}");
        };
        check(&|c| c.slowdown = Ratio(f64::NAN), "slowdown");
        check(&|c| c.slowdown = Ratio(1.5), "slowdown");
        check(&|c| c.epsilon = Ratio(-0.01), "epsilon");
        check(&|c| c.interval = Duration::ZERO, "interval");
        check(&|c| c.core_freq_step = Hertz(0.0), "core_freq_step");
        check(&|c| c.uncore_min = Hertz::from_ghz(3.0), "uncore_min");
        check(&|c| c.uncore_max = Hertz(f64::INFINITY), "uncore_max");
        check(&|c| c.cap_step = Watts(-5.0), "cap_step");
        check(&|c| c.cap_floor = Watts(0.0), "cap_floor");
        check(&|c| c.overshoot_margin = Watts(-1.0), "overshoot_margin");
        check(&|c| c.oi_highly_memory = 200.0, "oi_highly_memory");
        check(&|c| c.oi_highly_compute = f64::NAN, "oi_highly_compute");
    }

    #[test]
    fn performance_floor_scales() {
        let c = ControlConfig::from_arch(&ArchSpec::yeti(), Ratio::from_percent(10.0)).unwrap();
        assert!((c.performance_floor(100.0) - 90.0).abs() < 1e-9);
        assert!((c.band(100.0) - 1.0).abs() < 1e-9);
    }
}
