//! Controller configuration.

use dufp_types::{ArchSpec, Duration, Error, Hertz, Ratio, Result, Watts};
use serde::{Deserialize, Serialize};

/// Everything a DUF/DUFP instance needs to know about limits and steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlConfig {
    /// User-defined tolerated slowdown, in `[0, 1)` (the paper evaluates
    /// 0 %, 5 %, 10 % and 20 %).
    pub slowdown: Ratio,
    /// Monitoring interval (200 ms in the paper, §IV-D).
    pub interval: Duration,
    /// Measurement-error band: FLOPS/s within `epsilon` of the slowdown
    /// boundary are "equivalent" and the actuators hold steady (§III).
    pub epsilon: Ratio,
    /// Maximum (all-core turbo) core frequency; observing an average core
    /// frequency below it means RAPL is actively throttling.
    pub core_freq_max: Hertz,
    /// Lowest core P-state (DUFP-F's frequency floor).
    pub core_freq_min: Hertz,
    /// Core DVFS ladder step (100 MHz).
    pub core_freq_step: Hertz,
    /// Uncore ladder: lowest frequency.
    pub uncore_min: Hertz,
    /// Uncore ladder: highest frequency.
    pub uncore_max: Hertz,
    /// Uncore actuation step (100 MHz).
    pub uncore_step: Hertz,
    /// Cap actuation step (5 W).
    pub cap_step: Watts,
    /// Lowest cap DUFP applies (65 W, §IV-A).
    pub cap_floor: Watts,
    /// §IV-D: reset the cap when measured power exceeds the programmed cap
    /// by more than this margin (a freshly applied cap needs time to bite).
    pub overshoot_margin: Watts,
    /// Operational-intensity threshold below which a phase counts as
    /// *highly* memory-intensive (0.02).
    pub oi_highly_memory: f64,
    /// Operational-intensity threshold above which a phase counts as
    /// *highly* compute-intensive (100).
    pub oi_highly_compute: f64,
    /// After a slowdown violation forced an actuator back up, wait this
    /// many intervals before probing below that level again. Prevents the
    /// controller from oscillating across the violation boundary every
    /// other interval (which would push the *average* slowdown past the
    /// tolerance). `0` disables the memory entirely (ablation).
    pub reprobe_intervals: u32,
    /// Enable coupling 1 (§III): raise the cap when an uncore increase did
    /// not restore FLOPS/s. Disable only for ablation studies.
    pub coupling1: bool,
    /// Enable coupling 2 (§III): after a joint reset, re-read the uncore
    /// and retry its reset if the lingering cap held it down. Disable only
    /// for ablation studies.
    pub coupling2: bool,
    /// Enable the §IV-D rule: reset the cap when measured power exceeds the
    /// programmed cap beyond [`ControlConfig::overshoot_margin`]. Disable
    /// only for ablation studies.
    pub overshoot_reset: bool,
    /// §V-G improvement (off by default — the paper's tool does not have
    /// it): guard *cumulative* progress as well as per-interval FLOPS/s.
    /// Slowdowns that hide below the per-interval tolerance but accumulate
    /// (LAMMPS' aliased power bursts) freeze cap decreases once the
    /// cumulative deficit reaches the tolerated slowdown.
    pub cumulative_guard: bool,
}

impl ControlConfig {
    /// The paper's configuration for `arch` at the given tolerated
    /// slowdown.
    pub fn from_arch(arch: &ArchSpec, slowdown: Ratio) -> Result<Self> {
        if !(0.0..1.0).contains(&slowdown.value()) {
            return Err(Error::invalid(
                "slowdown",
                format!("{} must be within [0, 1)", slowdown.value()),
            ));
        }
        Ok(ControlConfig {
            slowdown,
            interval: Duration::from_millis(200),
            epsilon: Ratio(0.01),
            core_freq_max: arch.core_freq_max,
            core_freq_min: arch.core_freq_min,
            core_freq_step: arch.core_freq_step,
            uncore_min: arch.uncore_freq_min,
            uncore_max: arch.uncore_freq_max,
            uncore_step: arch.uncore_freq_step,
            cap_step: arch.cap_step,
            cap_floor: arch.cap_floor,
            overshoot_margin: Watts(3.0),
            oi_highly_memory: 0.02,
            oi_highly_compute: 100.0,
            reprobe_intervals: 25,
            coupling1: true,
            coupling2: true,
            overshoot_reset: true,
            cumulative_guard: false,
        })
    }

    /// The FLOPS/s floor implied by the tolerated slowdown for a per-phase
    /// maximum of `max`.
    #[inline]
    pub fn performance_floor(&self, max: f64) -> f64 {
        max * (1.0 - self.slowdown.value())
    }

    /// Half-width of the "equivalent" hold band around the floor.
    #[inline]
    pub fn band(&self, max: f64) -> f64 {
        max * self.epsilon.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yeti_defaults_match_paper() {
        let c = ControlConfig::from_arch(&ArchSpec::yeti(), Ratio::from_percent(5.0)).unwrap();
        assert_eq!(c.interval, Duration::from_millis(200));
        assert_eq!(c.cap_step, Watts(5.0));
        assert_eq!(c.cap_floor, Watts(65.0));
        assert_eq!(c.uncore_step, Hertz::from_mhz(100.0));
        assert_eq!(c.oi_highly_memory, 0.02);
        assert_eq!(c.oi_highly_compute, 100.0);
    }

    #[test]
    fn slowdown_must_be_a_fraction() {
        assert!(ControlConfig::from_arch(&ArchSpec::yeti(), Ratio(1.0)).is_err());
        assert!(ControlConfig::from_arch(&ArchSpec::yeti(), Ratio(-0.1)).is_err());
        assert!(ControlConfig::from_arch(&ArchSpec::yeti(), Ratio(0.0)).is_ok());
    }

    #[test]
    fn performance_floor_scales() {
        let c = ControlConfig::from_arch(&ArchSpec::yeti(), Ratio::from_percent(10.0)).unwrap();
        assert!((c.performance_floor(100.0) - 90.0).abs() < 1e-9);
        assert!((c.band(100.0) - 1.0).abs() < 1e-9);
    }
}
