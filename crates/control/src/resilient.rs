//! Fault-tolerant actuation: retry, degrade, and restore safe state.
//!
//! DUFP writes MSRs every 200 ms on a live node; on real hardware those
//! writes can fail (`EIO` on `/dev/cpu/N/msr`, offlined cores, sysfs
//! permission loss). A single propagated `Err` used to abort the whole
//! experiment. This module inserts a resilience layer between the
//! controllers and the hardware:
//!
//! * [`ResilientActuators`] wraps any [`Actuators`] implementation and
//!   (1) retries *transient* failures with bounded exponential backoff,
//!   (2) absorbs *persistent* failures by walking the per-socket
//!   degradation ladder — DUFP → DUF-only (cap knob disabled) → passive
//!   (uncore knob disabled too) — while keeping the run alive, and
//!   (3) propagates *fatal* errors (caller bugs) unchanged. Every retry
//!   and every ladder transition is emitted as a typed
//!   [`DecisionEvent`] and counted (`actuation_retries_total`,
//!   `degradations_total`).
//! * [`SafeStateGuard`] is the RAII companion: whatever happens — clean
//!   exit, controller panic, Ctrl-C unwinding the runner — dropping the
//!   guard restores the platform-default PL1/PL2 caps and uncore band,
//!   so a crashed controller never leaves a socket parked at the 65 W
//!   floor.
//!
//! The error taxonomy lives in [`classify`]; DESIGN.md §10 documents the
//! full failure model.

use crate::actuators::Actuators;
use dufp_telemetry::{Actuator as TelActuator, Counter, DecisionEvent, Reason, SocketTelemetry};
use dufp_types::{Error, Hertz, Result, Watts};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// How the resilience layer treats a failed actuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Likely to succeed on retry (device hiccup, `EIO`, busy MSR).
    Transient,
    /// Will keep failing (capability absent, component gone); retrying is
    /// pointless — degrade instead.
    Persistent,
    /// A caller bug (value out of range, violated precondition); absorbing
    /// it would hide the defect, so it propagates.
    Fatal,
}

/// Classifies an [`Error`] from the actuation path.
///
/// MSR/I-O failures are transient: on real nodes they are almost always a
/// momentary device condition. Missing capabilities or components are
/// persistent. Range and precondition violations are fatal — they indicate
/// a controller bug, not a hardware fault.
pub fn classify(e: &Error) -> ErrorClass {
    match e {
        Error::Msr { .. } | Error::Io(_) => ErrorClass::Transient,
        // A fenced coordinator stays fenced: a successor holds the fleet,
        // so retrying the grant path is pointless.
        Error::Unsupported(_) | Error::NoSuchComponent(_) | Error::Fenced { .. } => {
            ErrorClass::Persistent
        }
        Error::InvalidValue { .. }
        | Error::Precondition(_)
        | Error::Timeout { .. }
        | Error::Corruption(_)
        | Error::FrameTooLarge { .. } => ErrorClass::Fatal,
    }
}

/// Retry and degradation thresholds for [`ResilientActuators`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per actuation before the failure counts as persistent.
    pub max_retries: u32,
    /// Consecutive failed actuations on a knob before it is disabled.
    pub degrade_after: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            degrade_after: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based): exponential from
    /// [`RetryPolicy::base_backoff`], capped at [`RetryPolicy::max_backoff`].
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }

    /// Like [`RetryPolicy::backoff`], but with deterministic jitter: the
    /// delay is drawn uniformly from `[backoff(attempt)/2, backoff(attempt)]`
    /// by a SplitMix64 stream keyed on `(seed, attempt)`. Two agents with
    /// different seeds desynchronise their reconnect storms against a
    /// recovering coordinator, while any given `(seed, attempt)` pair always
    /// yields the same delay — replayable chaos runs depend on that.
    pub fn backoff_jittered(&self, attempt: u32, seed: u64) -> Duration {
        let full = self.backoff(attempt);
        let half = full / 2;
        let span = full.saturating_sub(half);
        if span.is_zero() {
            return full;
        }
        // SplitMix64 finalizer over a (seed, attempt) stream — the same
        // generator the fault-injection DSL uses, so one seed governs the
        // whole adversarial run.
        let mut z = seed
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let frac = (z >> 11) as f64 / (1u64 << 53) as f64;
        (half + span.mul_f64(frac)).min(self.max_backoff)
    }
}

/// How much authority a socket's controller still has.
///
/// Ordinals are stable and appear in [`Reason::Degraded`] events
/// (`old`/`new` fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationLevel {
    /// Both knobs work: full DUFP.
    Full = 0,
    /// The cap knob is disabled: DUFP behaves as DUF.
    UncoreOnly = 1,
    /// The uncore knob is disabled too: decisions are recorded but nothing
    /// is actuated.
    Passive = 2,
}

impl DegradationLevel {
    /// Human-readable label used in traces and run summaries.
    pub fn label(self) -> &'static str {
        match self {
            DegradationLevel::Full => "full",
            DegradationLevel::UncoreOnly => "uncore-only",
            DegradationLevel::Passive => "passive",
        }
    }

    /// The level for a ladder ordinal, if valid.
    pub fn from_ordinal(ord: u64) -> Option<Self> {
        match ord {
            0 => Some(DegradationLevel::Full),
            1 => Some(DegradationLevel::UncoreOnly),
            2 => Some(DegradationLevel::Passive),
            _ => None,
        }
    }
}

/// The knobs tracked independently by the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Knob {
    Uncore = 0,
    Cap = 1,
    CoreFreq = 2,
}

#[derive(Debug, Clone, Copy, Default)]
struct KnobState {
    /// Consecutive absorbed failures; reset by any success.
    streak: u32,
    /// Once true, setters on this knob become silent no-ops.
    disabled: bool,
}

/// Checkpointable view of one knob's ladder position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnobSnapshot {
    /// Consecutive absorbed failures at checkpoint time.
    pub streak: u32,
    /// Whether the knob had been abandoned.
    pub disabled: bool,
}

/// Checkpointable state of the resilience layer: the op counter (used as
/// the tick stand-in for events) plus each knob's ladder position, in
/// uncore / cap / core-frequency order. Restoring it on resume keeps the
/// degradation ladder exactly where the crashed run left it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceState {
    /// Actuation ops performed before the checkpoint.
    pub ops: u64,
    /// Per-knob ladder state (uncore, cap, core-freq).
    pub knobs: Vec<KnobSnapshot>,
}

/// Retrying, degrading wrapper around any [`Actuators`] implementation.
///
/// See the [module docs](self) for the failure model. Getters always
/// reflect the inner cached view; setters absorb non-fatal failures so the
/// control loop keeps running. Reset calls bypass the disabled flags — the
/// safe-state path must always reach for the hardware.
pub struct ResilientActuators<A> {
    inner: A,
    policy: RetryPolicy,
    tel: SocketTelemetry,
    sleep: fn(Duration),
    cap_floor: Watts,
    retries_total: Arc<Counter>,
    degradations_total: Arc<Counter>,
    /// Actuation ops seen so far; stands in for the tick in events.
    ops: u64,
    knobs: [KnobState; 3],
}

impl<A: Actuators> ResilientActuators<A> {
    /// Wraps `inner`. `cap_floor` is re-enforced here so that even direct
    /// long/short constraint writes (which [`crate::HwActuators`] does not
    /// floor) can never rest below it.
    pub fn new(inner: A, cap_floor: Watts) -> Self {
        ResilientActuators {
            inner,
            policy: RetryPolicy::default(),
            tel: SocketTelemetry::default(),
            sleep: |_| {},
            cap_floor,
            retries_total: Arc::new(Counter::default()),
            degradations_total: Arc::new(Counter::default()),
            ops: 0,
            knobs: [KnobState::default(); 3],
        }
    }

    /// Attaches a telemetry recorder; retries and degradations become
    /// typed [`DecisionEvent`]s and the `actuation_retries_total` /
    /// `degradations_total` counters go to the shared registry.
    pub fn with_telemetry(mut self, tel: SocketTelemetry) -> Self {
        self.retries_total = tel.telemetry().counter("actuation_retries_total");
        self.degradations_total = tel.telemetry().counter("degradations_total");
        self.tel = tel;
        self
    }

    /// Overrides the default [`RetryPolicy`].
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Installs a real sleeper for the backoff (e.g. `std::thread::sleep`
    /// on hardware). The default sleeper is a no-op so simulated runs and
    /// tests never stall.
    pub fn with_sleeper(mut self, sleep: fn(Duration)) -> Self {
        self.sleep = sleep;
        self
    }

    /// The current rung of the degradation ladder.
    pub fn degradation(&self) -> DegradationLevel {
        if self.knobs[Knob::Uncore as usize].disabled {
            DegradationLevel::Passive
        } else if self.knobs[Knob::Cap as usize].disabled {
            DegradationLevel::UncoreOnly
        } else {
            DegradationLevel::Full
        }
    }

    /// Total transient retries performed so far.
    pub fn retries(&self) -> u64 {
        self.retries_total.get()
    }

    /// Total ladder transitions so far.
    pub fn degradations(&self) -> u64 {
        self.degradations_total.get()
    }

    /// Captures the checkpointable resilience state.
    pub fn state(&self) -> ResilienceState {
        ResilienceState {
            ops: self.ops,
            knobs: self
                .knobs
                .iter()
                .map(|k| KnobSnapshot {
                    streak: k.streak,
                    disabled: k.disabled,
                })
                .collect(),
        }
    }

    /// Restores a previously captured resilience state (extra entries are
    /// ignored, missing ones leave the knob at its default).
    pub fn restore_state(&mut self, s: &ResilienceState) {
        self.ops = s.ops;
        for (dst, src) in self.knobs.iter_mut().zip(s.knobs.iter()) {
            dst.streak = src.streak;
            dst.disabled = src.disabled;
        }
    }

    /// Consumes the wrapper, returning the inner actuators.
    pub fn into_inner(self) -> A {
        self.inner
    }

    /// The wrapped actuators.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Mutable access to the wrapped actuators (checkpoint restore).
    pub fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }

    fn emit(&self, actuator: TelActuator, old: f64, new: f64, reason: Reason) {
        if !self.tel.is_enabled() {
            return;
        }
        self.tel.telemetry().record_decision(DecisionEvent {
            tick: self.ops,
            at_us: 0,
            socket: self.tel.socket(),
            phase: 0,
            oi_class: None,
            flops_ratio: None,
            actuator,
            old,
            new,
            reason,
        });
    }

    /// Runs one actuation with retry/degrade semantics. Returns
    /// `Ok(Some(v))` on success, `Ok(None)` when the failure was absorbed
    /// (the caller keeps running), `Err` only for fatal errors.
    fn guarded<T>(
        &mut self,
        knob: Knob,
        actuator: TelActuator,
        target: f64,
        mut op: impl FnMut(&mut A) -> Result<T>,
    ) -> Result<Option<T>> {
        self.ops += 1;
        let mut attempt = 0u32;
        loop {
            match op(&mut self.inner) {
                Ok(v) => {
                    self.knobs[knob as usize].streak = 0;
                    return Ok(Some(v));
                }
                Err(e) => match classify(&e) {
                    ErrorClass::Fatal => return Err(e),
                    ErrorClass::Transient if attempt < self.policy.max_retries => {
                        attempt += 1;
                        self.retries_total.inc();
                        self.emit(actuator, f64::from(attempt), target, Reason::ActuationRetry);
                        (self.sleep)(self.policy.backoff(attempt));
                    }
                    // Persistent, or transient with retries exhausted:
                    // absorb and account toward degradation.
                    _ => {
                        self.note_failure(knob);
                        return Ok(None);
                    }
                },
            }
        }
    }

    fn note_failure(&mut self, knob: Knob) {
        let state = &mut self.knobs[knob as usize];
        state.streak += 1;
        if state.disabled || state.streak < self.policy.degrade_after {
            return;
        }
        let before = self.degradation();
        self.knobs[knob as usize].disabled = true;
        let after = self.degradation();
        self.degradations_total.inc();
        let actuator = match knob {
            Knob::Uncore => TelActuator::Uncore,
            Knob::Cap => TelActuator::PowerCap,
            Knob::CoreFreq => TelActuator::CoreFreq,
        };
        self.emit(
            actuator,
            before as u8 as f64,
            after as u8 as f64,
            Reason::Degraded,
        );
        // Best effort: park the failed knob at its default so a half-
        // applied setting does not linger while the knob is abandoned.
        let _ = match knob {
            Knob::Uncore => self.inner.reset_uncore(),
            Knob::Cap => self.inner.reset_cap(),
            Knob::CoreFreq => self.inner.reset_core_freq_cap(),
        };
    }
}

impl<A: Actuators> Actuators for ResilientActuators<A> {
    fn set_uncore(&mut self, f: Hertz) -> Result<()> {
        if self.knobs[Knob::Uncore as usize].disabled {
            return Ok(());
        }
        self.guarded(Knob::Uncore, TelActuator::Uncore, f.value(), |a| {
            a.set_uncore(f)
        })
        .map(|_| ())
    }

    fn reset_uncore(&mut self) -> Result<()> {
        self.guarded(Knob::Uncore, TelActuator::Uncore, 0.0, |a| a.reset_uncore())
            .map(|_| ())
    }

    fn uncore(&self) -> Hertz {
        self.inner.uncore()
    }

    fn read_uncore(&mut self) -> Result<Hertz> {
        if self.knobs[Knob::Uncore as usize].disabled {
            return Ok(self.inner.uncore());
        }
        match self.guarded(Knob::Uncore, TelActuator::Uncore, 0.0, |a| a.read_uncore())? {
            Some(f) => Ok(f),
            // Absorbed read failure: fall back to the cached view so the
            // controller's coupling logic keeps a consistent value.
            None => Ok(self.inner.uncore()),
        }
    }

    fn set_cap_both(&mut self, w: Watts) -> Result<()> {
        if self.knobs[Knob::Cap as usize].disabled {
            return Ok(());
        }
        let w = w.max(self.cap_floor);
        self.guarded(Knob::Cap, TelActuator::PowerCap, w.value(), |a| {
            a.set_cap_both(w)
        })
        .map(|_| ())
    }

    fn set_cap_long(&mut self, w: Watts) -> Result<()> {
        if self.knobs[Knob::Cap as usize].disabled {
            return Ok(());
        }
        let w = w.max(self.cap_floor);
        self.guarded(Knob::Cap, TelActuator::PowerCap, w.value(), |a| {
            a.set_cap_long(w)
        })
        .map(|_| ())
    }

    fn set_cap_short(&mut self, w: Watts) -> Result<()> {
        if self.knobs[Knob::Cap as usize].disabled {
            return Ok(());
        }
        let w = w.max(self.cap_floor);
        self.guarded(Knob::Cap, TelActuator::PowerCapShort, w.value(), |a| {
            a.set_cap_short(w)
        })
        .map(|_| ())
    }

    fn reset_cap(&mut self) -> Result<()> {
        self.guarded(Knob::Cap, TelActuator::PowerCap, 0.0, |a| a.reset_cap())
            .map(|_| ())
    }

    fn cap_long(&self) -> Watts {
        self.inner.cap_long()
    }

    fn cap_short(&self) -> Watts {
        self.inner.cap_short()
    }

    fn cap_defaults(&self) -> (Watts, Watts) {
        self.inner.cap_defaults()
    }

    fn set_core_freq_cap(&mut self, f: Hertz) -> Result<()> {
        if self.knobs[Knob::CoreFreq as usize].disabled {
            return Ok(());
        }
        self.guarded(Knob::CoreFreq, TelActuator::CoreFreq, f.value(), |a| {
            a.set_core_freq_cap(f)
        })
        .map(|_| ())
    }

    fn reset_core_freq_cap(&mut self) -> Result<()> {
        self.guarded(Knob::CoreFreq, TelActuator::CoreFreq, 0.0, |a| {
            a.reset_core_freq_cap()
        })
        .map(|_| ())
    }

    fn core_freq_cap(&self) -> Hertz {
        self.inner.core_freq_cap()
    }
}

/// Attempts per knob when the guard restores defaults.
const RESTORE_ATTEMPTS: u32 = 3;

/// RAII safe-state guard: dropping it restores platform defaults.
///
/// Wraps any [`Actuators`] (typically a [`ResilientActuators`]) and on
/// drop — including a panic unwind or a Ctrl-C-triggered early return —
/// resets the power cap, the uncore band and the core-frequency request
/// to their defaults, retrying each a bounded number of times and
/// swallowing errors (a failing restore must not abort the unwind).
/// Restoration is recorded as [`Reason::SafeStateRestore`] events when a
/// telemetry recorder is attached.
pub struct SafeStateGuard<A: Actuators> {
    inner: Option<A>,
    tel: SocketTelemetry,
}

impl<A: Actuators> SafeStateGuard<A> {
    /// Arms the guard around `inner`.
    pub fn new(inner: A) -> Self {
        SafeStateGuard {
            inner: Some(inner),
            tel: SocketTelemetry::default(),
        }
    }

    /// Attaches a telemetry recorder for the restore events.
    pub fn with_telemetry(mut self, tel: SocketTelemetry) -> Self {
        self.tel = tel;
        self
    }

    /// Restores defaults now and disarms the guard, returning the inner
    /// actuators. Useful when the caller wants the restore inside normal
    /// control flow (and its events before the trace is drained) rather
    /// than at scope end.
    pub fn restore_now(mut self) -> A {
        let mut inner = self.inner.take().expect("guard holds until disarmed");
        Self::restore(&mut inner, &self.tel);
        inner
    }

    fn restore(a: &mut A, tel: &SocketTelemetry) {
        let (cap_old, short_old, uncore_old, freq_old) = (
            a.cap_long().value(),
            a.cap_short().value(),
            a.uncore().value(),
            a.core_freq_cap().value(),
        );
        let mut retry = |op: &mut dyn FnMut(&mut A) -> dufp_types::Result<()>| {
            for _ in 0..RESTORE_ATTEMPTS {
                if op(a).is_ok() {
                    return true;
                }
            }
            false
        };
        retry(&mut |a| a.reset_cap());
        retry(&mut |a| a.reset_uncore());
        retry(&mut |a| a.reset_core_freq_cap());
        if !tel.is_enabled() {
            return;
        }
        let events = [
            (TelActuator::PowerCap, cap_old, a.cap_long().value()),
            (TelActuator::PowerCapShort, short_old, a.cap_short().value()),
            (TelActuator::Uncore, uncore_old, a.uncore().value()),
            (TelActuator::CoreFreq, freq_old, a.core_freq_cap().value()),
        ];
        for (actuator, old, new) in events {
            tel.telemetry().record_decision(DecisionEvent {
                tick: 0,
                at_us: 0,
                socket: tel.socket(),
                phase: 0,
                oi_class: None,
                flops_ratio: None,
                actuator,
                old,
                new,
                reason: Reason::SafeStateRestore,
            });
        }
    }
}

impl<A: Actuators> std::ops::Deref for SafeStateGuard<A> {
    type Target = A;
    fn deref(&self) -> &A {
        self.inner.as_ref().expect("guard holds until disarmed")
    }
}

impl<A: Actuators> std::ops::DerefMut for SafeStateGuard<A> {
    fn deref_mut(&mut self) -> &mut A {
        self.inner.as_mut().expect("guard holds until disarmed")
    }
}

impl<A: Actuators> Drop for SafeStateGuard<A> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.as_mut() {
            Self::restore(inner, &self.tel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuators::test_support::MemActuators;
    use crate::config::ControlConfig;
    use dufp_telemetry::Telemetry;
    use dufp_types::{ArchSpec, Ratio};
    use parking_lot::Mutex;
    use std::collections::VecDeque;
    use std::sync::Arc;

    fn cfg() -> ControlConfig {
        ControlConfig::from_arch(&ArchSpec::yeti(), Ratio::from_percent(5.0)).unwrap()
    }

    /// MemActuators behind shared state, with scripted per-knob failures —
    /// observable after a guard consumed (and dropped) the actuators.
    #[derive(Clone)]
    struct Flaky {
        mem: Arc<Mutex<MemActuators>>,
        cap_errors: Arc<Mutex<VecDeque<Error>>>,
        uncore_errors: Arc<Mutex<VecDeque<Error>>>,
    }

    impl Flaky {
        fn new() -> Self {
            Flaky {
                mem: Arc::new(Mutex::new(MemActuators::new(cfg()))),
                cap_errors: Arc::new(Mutex::new(VecDeque::new())),
                uncore_errors: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        fn push_cap_errors(&self, n: usize, make: impl Fn() -> Error) {
            let mut q = self.cap_errors.lock();
            for _ in 0..n {
                q.push_back(make());
            }
        }

        fn push_uncore_errors(&self, n: usize, make: impl Fn() -> Error) {
            let mut q = self.uncore_errors.lock();
            for _ in 0..n {
                q.push_back(make());
            }
        }

        fn log(&self) -> Vec<String> {
            self.mem.lock().log.clone()
        }
    }

    fn take(q: &Mutex<VecDeque<Error>>) -> Result<()> {
        match q.lock().pop_front() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    impl Actuators for Flaky {
        fn set_uncore(&mut self, f: Hertz) -> Result<()> {
            take(&self.uncore_errors)?;
            self.mem.lock().set_uncore(f)
        }
        fn reset_uncore(&mut self) -> Result<()> {
            take(&self.uncore_errors)?;
            self.mem.lock().reset_uncore()
        }
        fn uncore(&self) -> Hertz {
            self.mem.lock().uncore()
        }
        fn read_uncore(&mut self) -> Result<Hertz> {
            take(&self.uncore_errors)?;
            self.mem.lock().read_uncore()
        }
        fn set_cap_both(&mut self, w: Watts) -> Result<()> {
            take(&self.cap_errors)?;
            self.mem.lock().set_cap_both(w)
        }
        fn set_cap_long(&mut self, w: Watts) -> Result<()> {
            take(&self.cap_errors)?;
            self.mem.lock().set_cap_long(w)
        }
        fn set_cap_short(&mut self, w: Watts) -> Result<()> {
            take(&self.cap_errors)?;
            self.mem.lock().set_cap_short(w)
        }
        fn reset_cap(&mut self) -> Result<()> {
            take(&self.cap_errors)?;
            self.mem.lock().reset_cap()
        }
        fn cap_long(&self) -> Watts {
            self.mem.lock().cap_long()
        }
        fn cap_short(&self) -> Watts {
            self.mem.lock().cap_short()
        }
        fn cap_defaults(&self) -> (Watts, Watts) {
            self.mem.lock().cap_defaults()
        }
        fn set_core_freq_cap(&mut self, f: Hertz) -> Result<()> {
            self.mem.lock().set_core_freq_cap(f)
        }
        fn reset_core_freq_cap(&mut self) -> Result<()> {
            self.mem.lock().reset_core_freq_cap()
        }
        fn core_freq_cap(&self) -> Hertz {
            self.mem.lock().core_freq_cap()
        }
    }

    fn wrap(flaky: Flaky, tel: &Telemetry) -> ResilientActuators<Flaky> {
        ResilientActuators::new(flaky, cfg().cap_floor).with_telemetry(tel.for_socket(0))
    }

    #[test]
    fn transient_failures_are_retried_and_applied() {
        let tel = Telemetry::new(64);
        let flaky = Flaky::new();
        flaky.push_cap_errors(2, || Error::msr(0x610, "EIO"));
        let mut r = wrap(flaky.clone(), &tel);

        r.set_cap_both(Watts(100.0)).unwrap();
        assert_eq!(r.cap_long(), Watts(100.0), "third attempt landed");
        assert_eq!(r.retries(), 2);
        assert_eq!(r.degradation(), DegradationLevel::Full);
        let events = tel.drain_events();
        assert_eq!(
            events
                .iter()
                .filter(|e| e.reason == Reason::ActuationRetry)
                .count(),
            2
        );
    }

    #[test]
    fn exhausted_retries_then_degrade_to_uncore_only() {
        let tel = Telemetry::new(256);
        let flaky = Flaky::new();
        let policy = RetryPolicy::default();
        // Each actuation burns 1 + max_retries attempts; degrade_after
        // failed actuations in a row disables the knob.
        let per_actuation = 1 + policy.max_retries as usize;
        flaky.push_cap_errors(per_actuation * policy.degrade_after as usize, || {
            Error::msr(0x610, "EIO")
        });
        let mut r = wrap(flaky.clone(), &tel);

        for _ in 0..policy.degrade_after {
            r.set_cap_both(Watts(90.0)).unwrap();
        }
        assert_eq!(r.degradation(), DegradationLevel::UncoreOnly);
        assert_eq!(r.degradations(), 1);
        // Cap setters are now silent no-ops; uncore still works.
        r.set_cap_both(Watts(70.0)).unwrap();
        assert_eq!(r.cap_long(), Watts(125.0), "knob parked at default");
        r.set_uncore(Hertz::from_ghz(1.8)).unwrap();
        assert_eq!(r.uncore(), Hertz::from_ghz(1.8));

        let events = tel.drain_events();
        let degraded: Vec<_> = events
            .iter()
            .filter(|e| e.reason == Reason::Degraded)
            .collect();
        assert_eq!(degraded.len(), 1);
        assert_eq!(degraded[0].old, DegradationLevel::Full as u8 as f64);
        assert_eq!(degraded[0].new, DegradationLevel::UncoreOnly as u8 as f64);
    }

    #[test]
    fn persistent_errors_degrade_without_retries() {
        let tel = Telemetry::new(64);
        let flaky = Flaky::new();
        flaky.push_cap_errors(3, || Error::Unsupported("no RAPL"));
        let mut r = wrap(flaky.clone(), &tel).with_policy(RetryPolicy {
            degrade_after: 3,
            ..RetryPolicy::default()
        });

        for _ in 0..3 {
            r.set_cap_both(Watts(90.0)).unwrap();
        }
        assert_eq!(r.degradation(), DegradationLevel::UncoreOnly);
        assert_eq!(r.retries(), 0, "persistent failures are not retried");
    }

    #[test]
    fn uncore_failure_reaches_passive() {
        let tel = Telemetry::new(64);
        let flaky = Flaky::new();
        let per = 1 + RetryPolicy::default().max_retries as usize;
        flaky.push_uncore_errors(per * 3, || Error::msr(0x620, "EIO"));
        let mut r = wrap(flaky.clone(), &tel);
        for _ in 0..3 {
            r.set_uncore(Hertz::from_ghz(1.5)).unwrap();
        }
        assert_eq!(r.degradation(), DegradationLevel::Passive);
    }

    #[test]
    fn fatal_errors_propagate() {
        let tel = Telemetry::new(64);
        let flaky = Flaky::new();
        flaky.push_cap_errors(1, || Error::invalid("cap", "below hardware minimum"));
        let mut r = wrap(flaky.clone(), &tel);
        assert!(r.set_cap_both(Watts(90.0)).is_err());
    }

    #[test]
    fn resilient_layer_floors_direct_constraint_writes() {
        let tel = Telemetry::new(64);
        let mut r = wrap(Flaky::new(), &tel);
        r.set_cap_long(Watts(10.0)).unwrap();
        r.set_cap_short(Watts(10.0)).unwrap();
        assert_eq!(r.cap_long(), cfg().cap_floor);
        assert_eq!(r.cap_short(), cfg().cap_floor);
    }

    #[test]
    fn read_uncore_falls_back_to_cache_when_absorbed() {
        let tel = Telemetry::new(64);
        let flaky = Flaky::new();
        let mut r = wrap(flaky.clone(), &tel);
        r.set_uncore(Hertz::from_ghz(1.6)).unwrap();
        let per = 1 + RetryPolicy::default().max_retries as usize;
        flaky.push_uncore_errors(per, || Error::msr(0x620, "EIO"));
        assert_eq!(r.read_uncore().unwrap(), Hertz::from_ghz(1.6));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let tel = Telemetry::new(64);
        let flaky = Flaky::new();
        let per = 1 + RetryPolicy::default().max_retries as usize;
        let mut r = wrap(flaky.clone(), &tel);
        // Two failed actuations, then a success, then two more failures:
        // never three in a row, so no degradation.
        flaky.push_cap_errors(per * 2, || Error::msr(0x610, "EIO"));
        r.set_cap_both(Watts(90.0)).unwrap();
        r.set_cap_both(Watts(90.0)).unwrap();
        r.set_cap_both(Watts(85.0)).unwrap();
        flaky.push_cap_errors(per * 2, || Error::msr(0x610, "EIO"));
        r.set_cap_both(Watts(80.0)).unwrap();
        r.set_cap_both(Watts(80.0)).unwrap();
        assert_eq!(r.degradation(), DegradationLevel::Full);
    }

    #[test]
    fn guard_restores_defaults_on_drop() {
        let tel = Telemetry::new(64);
        let flaky = Flaky::new();
        {
            let mut g =
                SafeStateGuard::new(wrap(flaky.clone(), &tel)).with_telemetry(tel.for_socket(0));
            g.set_cap_both(Watts(70.0)).unwrap();
            g.set_uncore(Hertz::from_ghz(1.3)).unwrap();
        }
        assert_eq!(flaky.cap_long(), Watts(125.0));
        assert_eq!(flaky.cap_short(), Watts(150.0));
        assert_eq!(flaky.uncore(), cfg().uncore_max);
        let restores = tel
            .drain_events()
            .into_iter()
            .filter(|e| e.reason == Reason::SafeStateRestore)
            .count();
        assert_eq!(restores, 4);
    }

    #[test]
    fn guard_restores_through_panic_unwind() {
        let flaky = Flaky::new();
        let flaky2 = flaky.clone();
        let result = std::panic::catch_unwind(move || {
            let mut g = SafeStateGuard::new(ResilientActuators::new(flaky2, cfg().cap_floor));
            g.set_cap_both(Watts(70.0)).unwrap();
            panic!("controller bug");
        });
        assert!(result.is_err());
        assert_eq!(flaky.cap_long(), Watts(125.0), "restored despite panic");
        assert!(flaky.log().contains(&"cap=reset".to_string()));
    }

    #[test]
    fn guard_retries_failing_restores() {
        let flaky = Flaky::new();
        {
            let mut g = SafeStateGuard::new(flaky.clone());
            g.set_cap_both(Watts(70.0)).unwrap();
            // Two transient failures: the third in-guard attempt succeeds.
            flaky.push_cap_errors(2, || Error::msr(0x610, "EIO"));
        }
        assert_eq!(flaky.cap_long(), Watts(125.0));
    }

    #[test]
    fn restore_now_returns_inner_and_restores_before_scope_end() {
        let tel = Telemetry::new(64);
        let flaky = Flaky::new();
        let mut g =
            SafeStateGuard::new(wrap(flaky.clone(), &tel)).with_telemetry(tel.for_socket(0));
        g.set_cap_both(Watts(70.0)).unwrap();
        let r = g.restore_now();
        assert_eq!(r.cap_long(), Watts(125.0));
        assert!(tel
            .drain_events()
            .iter()
            .any(|e| e.reason == Reason::SafeStateRestore));
    }

    #[test]
    fn resets_bypass_disabled_knobs() {
        let tel = Telemetry::new(64);
        let flaky = Flaky::new();
        let per = 1 + RetryPolicy::default().max_retries as usize;
        flaky.push_cap_errors(per * 3, || Error::msr(0x610, "EIO"));
        let mut r = wrap(flaky.clone(), &tel);
        for _ in 0..3 {
            r.set_cap_both(Watts(90.0)).unwrap();
        }
        assert_eq!(r.degradation(), DegradationLevel::UncoreOnly);
        // The hardware recovered; an explicit reset must still reach it.
        flaky.mem.lock().long = Watts(70.0);
        r.reset_cap().unwrap();
        assert_eq!(flaky.cap_long(), Watts(125.0));
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(1), Duration::from_millis(1));
        assert_eq!(p.backoff(2), Duration::from_millis(2));
        assert_eq!(p.backoff(3), Duration::from_millis(4));
        assert_eq!(p.backoff(30), p.max_backoff);
    }

    #[test]
    fn jittered_backoff_stays_within_half_to_full_band() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(8),
            max_backoff: Duration::from_secs(2),
            ..RetryPolicy::default()
        };
        for seed in 0..64u64 {
            for attempt in 1..=8u32 {
                let full = p.backoff(attempt);
                let d = p.backoff_jittered(attempt, seed);
                assert!(d >= full / 2, "attempt {attempt} seed {seed}: {d:?} < half");
                assert!(d <= full, "attempt {attempt} seed {seed}: {d:?} > full");
            }
        }
    }

    #[test]
    fn jittered_backoff_is_deterministic_per_seed_and_varies_across_seeds() {
        let p = RetryPolicy::default();
        for attempt in 1..=6u32 {
            assert_eq!(
                p.backoff_jittered(attempt, 42),
                p.backoff_jittered(attempt, 42),
                "same (seed, attempt) must replay identically"
            );
        }
        // Across many seeds at a wide band, at least two distinct delays
        // must appear — otherwise there is no jitter at all.
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
            ..RetryPolicy::default()
        };
        let delays: std::collections::HashSet<Duration> =
            (0..16u64).map(|s| p.backoff_jittered(4, s)).collect();
        assert!(delays.len() > 1, "jitter collapsed to a single value");
    }

    #[test]
    fn jittered_backoff_never_exceeds_ceiling() {
        let p = RetryPolicy::default();
        for seed in 0..32u64 {
            assert!(p.backoff_jittered(30, seed) <= p.max_backoff);
        }
    }
}
