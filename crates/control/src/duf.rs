//! DUF — dynamic uncore frequency scaling (the paper's prior tool and the
//! baseline of every figure).
//!
//! Per monitoring interval (§II-C): on a phase change the uncore resets;
//! otherwise, if FLOPS/s (or bandwidth — DUF guards bandwidth on *all*
//! phases, unlike DUFP's cap logic, §III) dropped below the tolerated
//! slowdown relative to the per-phase maximum, the uncore frequency is
//! raised one step; if performance is comfortably within the tolerance the
//! uncore keeps stepping down toward its minimum; inside the
//! measurement-error band it holds.

use crate::actuators::Actuators;
use crate::config::ControlConfig;
use crate::phase::{PhaseEvent, PhaseTracker};
use crate::state::{ControllerState, UncoreLogicState};
use crate::trace::TelState;
use crate::Controller;
use dufp_counters::IntervalMetrics;
use dufp_telemetry::{Actuator, Reason, SocketTelemetry};
use dufp_types::{Hertz, Result};
use serde::{Deserialize, Serialize};

/// What the uncore logic did this interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UncoreAction {
    /// No decision yet (first interval) or nothing to do.
    None,
    /// Stepped the uncore down.
    Decreased,
    /// Stepped the uncore up.
    Increased,
    /// Reset to the maximum (phase change).
    Reset,
    /// Inside the measurement-error band.
    Hold,
}

/// The uncore decision engine, shared verbatim between DUF and DUFP
/// ("DUFP uses the same algorithm as DUF when it comes to uncore
/// frequency", §I).
#[derive(Debug, Clone)]
pub struct UncoreLogic {
    cfg: ControlConfig,
    /// The action taken on the most recent interval.
    pub last_action: UncoreAction,
    /// Frequency a violation forced us back up to; probing below it is
    /// blocked until [`ControlConfig::reprobe_intervals`] pass.
    probe_floor: Option<f64>,
    intervals_since_violation: u32,
}

impl UncoreLogic {
    /// New engine for `cfg`.
    pub fn new(cfg: ControlConfig) -> Self {
        UncoreLogic {
            cfg,
            last_action: UncoreAction::None,
            probe_floor: None,
            intervals_since_violation: 0,
        }
    }

    /// Snapshot of the engine's decision state (for checkpoints).
    pub fn state(&self) -> UncoreLogicState {
        UncoreLogicState {
            last_action: self.last_action,
            probe_floor: self.probe_floor,
            intervals_since_violation: self.intervals_since_violation,
        }
    }

    /// Restores a snapshot taken by [`UncoreLogic::state`].
    pub fn restore(&mut self, s: &UncoreLogicState) {
        self.last_action = s.last_action;
        self.probe_floor = s.probe_floor;
        self.intervals_since_violation = s.intervals_since_violation;
    }

    /// Decides and actuates for one interval. `event` must come from the
    /// shared phase tracker *after* observing `m`.
    ///
    /// `suppress_violation` tells the engine that another actuator (DUFP's
    /// power cap) moved last interval and is the likely cause of any
    /// FLOPS/s dip — the uncore must not react to it. Standalone DUF
    /// always passes `false`.
    pub fn decide(
        &mut self,
        event: PhaseEvent,
        tracker: &PhaseTracker,
        m: &IntervalMetrics,
        act: &mut dyn Actuators,
        suppress_violation: bool,
    ) -> Result<UncoreAction> {
        let action = match event {
            PhaseEvent::First => UncoreAction::None,
            PhaseEvent::Changed => {
                act.reset_uncore()?;
                self.probe_floor = None;
                self.intervals_since_violation = 0;
                UncoreAction::Reset
            }
            PhaseEvent::Continued => {
                // Relative performance drops vs. the per-phase maxima; DUF
                // guards both FLOPS/s and bandwidth on every phase.
                let drop_f = relative_drop(m.flops.value(), tracker.max_flops);
                let drop_b = relative_drop(m.bandwidth.value(), tracker.max_bandwidth);
                let s = self.cfg.slowdown.value();
                let e = self.cfg.epsilon.value();

                // Three-way split per §II-C / §III: dropped by more than
                // the tolerated slowdown → raise; "equivalent to the
                // slowdown" (within the measurement-error band below the
                // boundary) → hold; otherwise keep stepping down. At 0 %
                // tolerance the measurement-error band itself is the
                // violation threshold.
                let threshold = if s > 0.0 { s } else { e };
                let violating = drop_f > threshold || drop_b > threshold;
                let at_boundary = s > 0.0 && (drop_f >= s - e || drop_b >= s - e);

                self.intervals_since_violation = self.intervals_since_violation.saturating_add(1);
                if violating && suppress_violation {
                    // The cap moved last interval: let the cap logic fix
                    // its own damage instead of burning uncore headroom.
                    UncoreAction::Hold
                } else if violating {
                    let cur = act.uncore();
                    self.intervals_since_violation = 0;
                    if cur < self.cfg.uncore_max {
                        let raised = Hertz(cur.value() + self.cfg.uncore_step.value());
                        act.set_uncore(raised)?;
                        self.probe_floor = Some(raised.value());
                        UncoreAction::Increased
                    } else {
                        UncoreAction::Hold
                    }
                } else if at_boundary {
                    UncoreAction::Hold
                } else {
                    let cur = act.uncore();
                    let next = cur.value() - self.cfg.uncore_step.value();
                    let blocked = self.probe_floor.is_some_and(|fl| next < fl - 1.0)
                        && self.intervals_since_violation < self.cfg.reprobe_intervals;
                    if cur > self.cfg.uncore_min && !blocked {
                        if self.probe_floor.is_some_and(|fl| next < fl - 1.0) {
                            // Re-probe window reached: forget the floor and
                            // feel for the boundary again.
                            self.probe_floor = None;
                        }
                        act.set_uncore(Hertz(next))?;
                        UncoreAction::Decreased
                    } else {
                        UncoreAction::Hold
                    }
                }
            }
        };
        self.last_action = action;
        Ok(action)
    }
}

/// `1 - value/max`, clamped to zero when the phase has no recorded maximum.
#[inline]
pub(crate) fn relative_drop(value: f64, max: f64) -> f64 {
    if max > 0.0 {
        (1.0 - value / max).max(0.0)
    } else {
        0.0
    }
}

/// Why the uncore logic moved (trace reason for an [`UncoreAction`]).
///
/// `Increased` means a violation: slowdown when the FLOPS/s drop crossed
/// the threshold (the same comparison `decide` made), bandwidth otherwise.
pub(crate) fn uncore_trace_reason(
    action: UncoreAction,
    m: &IntervalMetrics,
    tracker: &PhaseTracker,
    cfg: &ControlConfig,
) -> Option<Reason> {
    match action {
        UncoreAction::Reset => Some(Reason::PhaseReset),
        UncoreAction::Increased => {
            let s = cfg.slowdown.value();
            let threshold = if s > 0.0 { s } else { cfg.epsilon.value() };
            let drop_f = relative_drop(m.flops.value(), tracker.max_flops);
            Some(if drop_f > threshold {
                Reason::SlowdownViolation
            } else {
                Reason::BandwidthViolation
            })
        }
        UncoreAction::Decreased => Some(Reason::Probe),
        UncoreAction::None | UncoreAction::Hold => None,
    }
}

/// The DUF controller: phase tracking + uncore logic, nothing else.
#[derive(Debug)]
pub struct Duf {
    tracker: PhaseTracker,
    logic: UncoreLogic,
    tel: TelState,
}

impl Duf {
    /// New DUF instance.
    pub fn new(cfg: ControlConfig) -> Self {
        Duf {
            tracker: PhaseTracker::new(),
            logic: UncoreLogic::new(cfg),
            tel: TelState::default(),
        }
    }

    /// Attaches a decision-trace recorder (builder style).
    pub fn with_telemetry(mut self, tel: SocketTelemetry) -> Self {
        self.tel.tel = tel;
        self
    }

    /// The most recent uncore action (for tests and traces).
    pub fn last_action(&self) -> UncoreAction {
        self.logic.last_action
    }
}

impl Controller for Duf {
    fn name(&self) -> &'static str {
        "DUF"
    }

    fn on_interval(&mut self, m: &IntervalMetrics, act: &mut dyn Actuators) -> Result<()> {
        let uncore_before = act.uncore();
        let event = self.tracker.observe(m);
        if event == PhaseEvent::Changed {
            self.tel.phase_seq += 1;
        }
        let action = self.logic.decide(event, &self.tracker, m, act, false)?;
        if self.tel.is_enabled() {
            if let Some(reason) = uncore_trace_reason(action, m, &self.tracker, &self.logic.cfg) {
                self.tel.emit(
                    Some(&self.tracker),
                    m,
                    Actuator::Uncore,
                    uncore_before.value(),
                    act.uncore().value(),
                    reason,
                );
            }
        }
        self.tel.tick += 1;
        Ok(())
    }

    fn state(&self) -> ControllerState {
        ControllerState::Duf {
            tracker: self.tracker.clone(),
            uncore: self.logic.state(),
            tel: self.tel.counters(),
        }
    }

    fn restore(&mut self, state: &ControllerState) -> Result<()> {
        match state {
            ControllerState::Duf {
                tracker,
                uncore,
                tel,
            } => {
                self.tracker = tracker.clone();
                self.logic.restore(uncore);
                self.tel.restore_counters(tel);
                Ok(())
            }
            other => Err(other.mismatch("DUF")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuators::test_support::MemActuators;
    use dufp_types::{
        ArchSpec, BytesPerSec, FlopsPerSec, Hertz, Instant, OpIntensity, Ratio, Seconds, Watts,
    };

    fn cfg(slowdown_pct: f64) -> ControlConfig {
        ControlConfig::from_arch(&ArchSpec::yeti(), Ratio::from_percent(slowdown_pct)).unwrap()
    }

    fn m(flops: f64, bw: f64) -> IntervalMetrics {
        IntervalMetrics {
            at: Instant(0),
            interval: Seconds(0.2),
            flops: FlopsPerSec(flops),
            bandwidth: BytesPerSec(bw),
            oi: OpIntensity(if bw > 0.0 { flops / bw } else { f64::INFINITY }),
            pkg_power: Watts(100.0),
            dram_power: Watts(20.0),
            core_freq: Hertz::from_ghz(2.8),
        }
    }

    #[test]
    fn steady_phase_keeps_stepping_down_to_minimum() {
        let c = cfg(5.0);
        let mut duf = Duf::new(c.clone());
        let mut act = MemActuators::new(c.clone());
        // 20 identical intervals: flops stay at max, so DUF steps 100 MHz
        // each time until the 1.2 GHz floor.
        for _ in 0..20 {
            duf.on_interval(&m(1e11, 5e10), &mut act).unwrap();
        }
        assert_eq!(act.uncore(), c.uncore_min);
        assert_eq!(duf.last_action(), UncoreAction::Hold);
    }

    #[test]
    fn slowdown_violation_steps_back_up() {
        let c = cfg(5.0);
        let mut duf = Duf::new(c.clone());
        let mut act = MemActuators::new(c.clone());
        duf.on_interval(&m(1e11, 5e10), &mut act).unwrap(); // prime
        duf.on_interval(&m(1e11, 5e10), &mut act).unwrap(); // decrease → 2.3
        assert_eq!(act.uncore(), Hertz::from_ghz(2.3));
        // FLOPS drop 8 % — beyond the 5 % tolerance.
        duf.on_interval(&m(0.92e11, 4.6e10), &mut act).unwrap();
        assert_eq!(duf.last_action(), UncoreAction::Increased);
        assert_eq!(act.uncore(), Hertz::from_ghz(2.4));
    }

    #[test]
    fn bandwidth_drop_alone_triggers_increase() {
        // DUF guards bandwidth on all phases (§III, difference 1).
        let c = cfg(5.0);
        let mut duf = Duf::new(c.clone());
        let mut act = MemActuators::new(c.clone());
        duf.on_interval(&m(1e10, 8e10), &mut act).unwrap();
        duf.on_interval(&m(1e10, 8e10), &mut act).unwrap(); // decrease
        let down = act.uncore();
        // FLOPS fine, bandwidth down 10 %.
        duf.on_interval(&m(1e10, 7.2e10), &mut act).unwrap();
        assert_eq!(duf.last_action(), UncoreAction::Increased);
        assert!(act.uncore() > down);
    }

    #[test]
    fn within_band_holds() {
        let c = cfg(5.0);
        let mut duf = Duf::new(c.clone());
        let mut act = MemActuators::new(c.clone());
        duf.on_interval(&m(1e11, 5e10), &mut act).unwrap();
        // Exactly at the 5 % floor: inside the ±1 % band → hold.
        duf.on_interval(&m(0.95e11, 4.75e10), &mut act).unwrap();
        assert_eq!(duf.last_action(), UncoreAction::Hold);
        assert_eq!(act.uncore(), c.uncore_max);
    }

    #[test]
    fn phase_change_resets_uncore() {
        let c = cfg(10.0);
        let mut duf = Duf::new(c.clone());
        let mut act = MemActuators::new(c.clone());
        duf.on_interval(&m(1e10, 8e10), &mut act).unwrap(); // memory phase
        duf.on_interval(&m(1e10, 8e10), &mut act).unwrap(); // decrease
        duf.on_interval(&m(1e10, 8e10), &mut act).unwrap(); // decrease
        assert!(act.uncore() < c.uncore_max);
        // Flip to a CPU-intensive interval (oi ≥ 1).
        duf.on_interval(&m(2e11, 5e10), &mut act).unwrap();
        assert_eq!(duf.last_action(), UncoreAction::Reset);
        assert_eq!(act.uncore(), c.uncore_max);
    }

    #[test]
    fn never_steps_outside_ladder() {
        let c = cfg(20.0);
        let mut duf = Duf::new(c.clone());
        let mut act = MemActuators::new(c.clone());
        // Long steady run: must stop at min, never below.
        for _ in 0..50 {
            duf.on_interval(&m(1e11, 5e10), &mut act).unwrap();
            assert!(act.uncore() >= c.uncore_min);
            assert!(act.uncore() <= c.uncore_max);
        }
        // Long violating run: must stop at max.
        for _ in 0..50 {
            duf.on_interval(&m(0.5e11, 2.5e10), &mut act).unwrap();
            assert!(act.uncore() <= c.uncore_max);
        }
        assert_eq!(act.uncore(), c.uncore_max);
    }

    #[test]
    fn zero_slowdown_still_reclaims_uncore_when_flops_hold() {
        let c = cfg(0.0);
        let mut duf = Duf::new(c.clone());
        let mut act = MemActuators::new(c.clone());
        for _ in 0..5 {
            duf.on_interval(&m(1e11, 5e10), &mut act).unwrap();
        }
        assert!(
            act.uncore() < c.uncore_max,
            "steady FLOPS at 0 % tolerance must still allow decreases"
        );
    }
}
