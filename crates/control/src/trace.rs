//! Shared decision-trace plumbing for the controllers.
//!
//! Every controller owns a [`TelState`]: the socket-bound telemetry handle
//! plus the tick and phase-sequence counters its events carry. All methods
//! are no-ops on a disabled handle, so controllers built without
//! `with_telemetry` pay one branch per interval and allocate nothing.

use crate::phase::PhaseTracker;
use crate::state::TelCounters;
use dufp_counters::IntervalMetrics;
use dufp_telemetry::{Actuator, DecisionCtx, Reason, SocketTelemetry};

/// Telemetry state embedded in each controller.
#[derive(Debug, Clone, Default)]
pub(crate) struct TelState {
    /// The socket-bound recorder (disabled by default).
    pub tel: SocketTelemetry,
    /// Monitoring intervals seen so far (event timestamp).
    pub tick: u64,
    /// Phase changes seen so far (monotonic per-socket sequence).
    pub phase_seq: u64,
}

impl TelState {
    /// Whether events are being recorded at all.
    pub fn is_enabled(&self) -> bool {
        self.tel.is_enabled()
    }

    /// The durable counters (for [`crate::ControllerState`] snapshots).
    pub fn counters(&self) -> TelCounters {
        TelCounters {
            tick: self.tick,
            phase_seq: self.phase_seq,
        }
    }

    /// Restores checkpointed counters; the recorder handle is unchanged.
    pub fn restore_counters(&mut self, c: &TelCounters) {
        self.tick = c.tick;
        self.phase_seq = c.phase_seq;
    }

    /// Records that `actuator` moved `old` → `new` because of `reason`.
    /// `tracker` (when the controller has one) supplies the OI class and
    /// the FLOPS ratio against the per-phase maximum.
    pub fn emit(
        &self,
        tracker: Option<&PhaseTracker>,
        m: &IntervalMetrics,
        actuator: Actuator,
        old: f64,
        new: f64,
        reason: Reason,
    ) {
        if !self.tel.is_enabled() || old == new {
            return;
        }
        let ctx = DecisionCtx {
            tick: self.tick,
            phase: self.phase_seq,
            oi_class: tracker.and_then(|t| t.class()).map(|c| format!("{c:?}")),
            flops_ratio: tracker
                .and_then(|t| (t.max_flops > 0.0).then(|| m.flops.value() / t.max_flops)),
        };
        self.tel.decision(ctx, actuator, old, new, reason);
    }
}
