//! DUFP-F — DUFP extended with *direct* core-frequency management (the
//! paper's §VII future work).
//!
//! §V-G observes that under DUFP "power capping impacts CPU frequency.
//! Therefore, better handling CPU frequency under power capping, instead
//! of relying on power capping to change the CPU frequency, may improve
//! even more both performance and power consumption." DUFP-F implements
//! that idea with the third knob, `IA32_PERF_CTL`:
//!
//! * the **uncore** runs DUF's algorithm unchanged,
//! * the **core frequency** is stepped down directly (100 MHz at a time)
//!   while FLOPS/s stay within the tolerated slowdown, with the same
//!   violation/boundary/probe-memory discipline as the other knobs,
//! * the **power cap** no longer drives DVFS at all: it *trails* the
//!   measured power a couple of steps above it, so bursts are still
//!   clipped but the enforcement loop never throttles behind the
//!   controller's back (and never triggers its settle transients).
//!
//! Compared with DUFP, the same operating point is reached through an
//! explicit request rather than through the RAPL firmware hunting for it —
//! fewer transients, no bandwidth starvation from deep allowances.

use crate::actuators::Actuators;
use crate::config::ControlConfig;
use crate::duf::{relative_drop, uncore_trace_reason, UncoreAction, UncoreLogic};
use crate::phase::{PhaseEvent, PhaseTracker};
use crate::state::ControllerState;
use crate::trace::TelState;
use crate::Controller;
use dufp_counters::IntervalMetrics;
use dufp_telemetry::{Actuator, Reason, SocketTelemetry};
use dufp_types::{Hertz, Result, Watts};
use serde::{Deserialize, Serialize};

/// What the frequency logic did this interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FreqAction {
    /// No decision yet.
    None,
    /// Stepped the P-state request down.
    Decreased,
    /// Stepped the P-state request up.
    Increased,
    /// Reset to the architectural maximum.
    Reset,
    /// Held steady.
    Hold,
}

/// The DUFP-F controller.
#[derive(Debug)]
pub struct DufpF {
    cfg: ControlConfig,
    tracker: PhaseTracker,
    uncore: UncoreLogic,
    last_freq_action: FreqAction,
    probe_floor: Option<f64>,
    intervals_since_violation: u32,
    tel: TelState,
}

impl DufpF {
    /// New DUFP-F instance.
    pub fn new(cfg: ControlConfig) -> Self {
        DufpF {
            uncore: UncoreLogic::new(cfg.clone()),
            cfg,
            tracker: PhaseTracker::new(),
            last_freq_action: FreqAction::None,
            probe_floor: None,
            intervals_since_violation: 0,
            tel: TelState::default(),
        }
    }

    /// Attaches a decision-trace recorder (builder style).
    pub fn with_telemetry(mut self, tel: SocketTelemetry) -> Self {
        self.tel.tel = tel;
        self
    }

    /// The most recent frequency action.
    pub fn last_freq_action(&self) -> FreqAction {
        self.last_freq_action
    }

    /// The trailing power cap for a measured power level: two cap steps of
    /// headroom, quantized to the cap step, clamped to `[floor, default]`.
    fn trailing_cap(&self, measured: Watts, default_long: Watts) -> Watts {
        let step = self.cfg.cap_step.value();
        let target = measured.value() + 2.0 * step;
        let quantized = (target / step).ceil() * step;
        Watts(quantized.clamp(self.cfg.cap_floor.value(), default_long.value()))
    }

    fn freq_decide(&mut self, drop_f: f64, act: &mut dyn Actuators) -> Result<FreqAction> {
        let s = self.cfg.slowdown.value();
        let e = self.cfg.epsilon.value();
        let threshold = if s > 0.0 { s } else { e };
        let step = self.cfg.core_freq_step.value();

        self.intervals_since_violation = self.intervals_since_violation.saturating_add(1);
        Ok(if drop_f > threshold {
            self.intervals_since_violation = 0;
            let cur = act.core_freq_cap();
            if cur < self.cfg.core_freq_max {
                let raised = Hertz(cur.value() + step);
                act.set_core_freq_cap(raised)?;
                self.probe_floor = Some(raised.value());
                FreqAction::Increased
            } else {
                FreqAction::Hold
            }
        } else if s > 0.0 && drop_f >= s - e {
            FreqAction::Hold
        } else {
            let cur = act.core_freq_cap();
            let next = cur.value() - step;
            let blocked = self.probe_floor.is_some_and(|fl| next < fl - 1.0)
                && self.intervals_since_violation < self.cfg.reprobe_intervals;
            if cur > self.cfg.core_freq_min && !blocked {
                if self.probe_floor.is_some_and(|fl| next < fl - 1.0) {
                    self.probe_floor = None;
                }
                act.set_core_freq_cap(Hertz(next))?;
                FreqAction::Decreased
            } else {
                FreqAction::Hold
            }
        })
    }
}

impl Controller for DufpF {
    fn name(&self) -> &'static str {
        "DUFP-F"
    }

    fn on_interval(&mut self, m: &IntervalMetrics, act: &mut dyn Actuators) -> Result<()> {
        let uncore_before = act.uncore();
        let cap_before = act.cap_long();
        let freq_before = act.core_freq_cap();
        let event = self.tracker.observe(m);
        if event == PhaseEvent::Changed {
            self.tel.phase_seq += 1;
        }

        // Attribution mirror of DUFP: while we hold the frequency below the
        // maximum, FLOPS dips are (potentially) our own doing — the uncore
        // must not respond to them.
        let freq_throttling = act.core_freq_cap() < self.cfg.core_freq_max;
        self.uncore
            .decide(event, &self.tracker, m, act, freq_throttling)?;

        let freq_action = match event {
            PhaseEvent::First => FreqAction::None,
            PhaseEvent::Changed => {
                act.reset_core_freq_cap()?;
                act.reset_cap()?;
                self.probe_floor = None;
                self.intervals_since_violation = 0;
                FreqAction::Reset
            }
            PhaseEvent::Continued => {
                // The uncore raising this interval means the dip was the
                // uncore's probe — leave the frequency alone for one round.
                let drop_f = relative_drop(m.flops.value(), self.tracker.max_flops);
                let action = if self.uncore.last_action == UncoreAction::Increased {
                    FreqAction::Hold
                } else {
                    self.freq_decide(drop_f, act)?
                };

                // The cap trails measured power instead of leading it.
                let (default_long, _) = act.cap_defaults();
                let want = self.trailing_cap(m.pkg_power, default_long);
                if (want.value() - act.cap_long().value()).abs() >= self.cfg.cap_step.value() - 1e-9
                {
                    act.set_cap_both(want)?;
                }
                action
            }
        };

        if self.tel.is_enabled() {
            if let Some(why) =
                uncore_trace_reason(self.uncore.last_action, m, &self.tracker, &self.cfg)
            {
                self.tel.emit(
                    Some(&self.tracker),
                    m,
                    Actuator::Uncore,
                    uncore_before.value(),
                    act.uncore().value(),
                    why,
                );
            }
            // `freq_decide` raises only on a FLOPS/s violation, so an
            // Increased action is always a slowdown event.
            let freq_reason = match freq_action {
                FreqAction::Reset => Some(Reason::PhaseReset),
                FreqAction::Increased => Some(Reason::SlowdownViolation),
                FreqAction::Decreased => Some(Reason::Probe),
                FreqAction::None | FreqAction::Hold => None,
            };
            if let Some(why) = freq_reason {
                self.tel.emit(
                    Some(&self.tracker),
                    m,
                    Actuator::CoreFreq,
                    freq_before.value(),
                    act.core_freq_cap().value(),
                    why,
                );
            }
            let cap_reason = if event == PhaseEvent::Changed {
                Reason::PhaseReset
            } else {
                Reason::TrailingCap
            };
            self.tel.emit(
                Some(&self.tracker),
                m,
                Actuator::PowerCap,
                cap_before.value(),
                act.cap_long().value(),
                cap_reason,
            );
        }
        self.tel.tick += 1;

        self.last_freq_action = freq_action;
        Ok(())
    }

    fn state(&self) -> ControllerState {
        ControllerState::DufpF {
            tracker: self.tracker.clone(),
            uncore: self.uncore.state(),
            last_freq_action: self.last_freq_action,
            probe_floor: self.probe_floor,
            intervals_since_violation: self.intervals_since_violation,
            tel: self.tel.counters(),
        }
    }

    fn restore(&mut self, state: &ControllerState) -> Result<()> {
        match state {
            ControllerState::DufpF {
                tracker,
                uncore,
                last_freq_action,
                probe_floor,
                intervals_since_violation,
                tel,
            } => {
                self.tracker = tracker.clone();
                self.uncore.restore(uncore);
                self.last_freq_action = *last_freq_action;
                self.probe_floor = *probe_floor;
                self.intervals_since_violation = *intervals_since_violation;
                self.tel.restore_counters(tel);
                Ok(())
            }
            other => Err(other.mismatch("DUFP-F")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuators::test_support::MemActuators;
    use dufp_types::{ArchSpec, BytesPerSec, FlopsPerSec, Instant, OpIntensity, Ratio, Seconds};

    fn cfg(pct: f64) -> ControlConfig {
        ControlConfig::from_arch(&ArchSpec::yeti(), Ratio::from_percent(pct)).unwrap()
    }

    fn m(flops: f64, bw: f64, power: f64, freq_ghz: f64) -> IntervalMetrics {
        IntervalMetrics {
            at: Instant(0),
            interval: Seconds(0.2),
            flops: FlopsPerSec(flops),
            bandwidth: BytesPerSec(bw),
            oi: OpIntensity(if bw > 0.0 { flops / bw } else { f64::INFINITY }),
            pkg_power: Watts(power),
            dram_power: Watts(25.0),
            core_freq: Hertz::from_ghz(freq_ghz),
        }
    }

    #[test]
    fn steady_memory_phase_steps_frequency_down() {
        let c = cfg(10.0);
        let mut d = DufpF::new(c.clone());
        let mut a = MemActuators::new(c.clone());
        for _ in 0..6 {
            d.on_interval(&m(1e10, 8e10, 100.0, 2.8), &mut a).unwrap();
        }
        assert!(
            a.core_freq_cap() < c.core_freq_max,
            "freq cap should descend: {:?}",
            a.core_freq_cap()
        );
        assert_eq!(d.last_freq_action(), FreqAction::Decreased);
    }

    #[test]
    fn violation_raises_frequency_and_locks_probe_floor() {
        let c = cfg(10.0);
        let mut d = DufpF::new(c.clone());
        let mut a = MemActuators::new(c.clone());
        d.on_interval(&m(1e10, 8e10, 100.0, 2.8), &mut a).unwrap();
        for _ in 0..4 {
            d.on_interval(&m(1e10, 8e10, 98.0, 2.8), &mut a).unwrap();
        }
        let low = a.core_freq_cap();
        // 12 % drop > 10 % → raise.
        d.on_interval(&m(0.88e10, 7.0e10, 95.0, low.as_ghz()), &mut a)
            .unwrap();
        // The uncore responds first (it was not suppressed before the freq
        // started moving? it was — freq_cap < max ⇒ uncore held), so the
        // frequency logic must have acted.
        assert_eq!(d.last_freq_action(), FreqAction::Increased);
        assert!(a.core_freq_cap() > low);
        // Further decreases are blocked by the probe floor.
        let at = a.core_freq_cap();
        d.on_interval(&m(1e10, 8e10, 98.0, at.as_ghz()), &mut a)
            .unwrap();
        assert_eq!(a.core_freq_cap(), at, "probe floor must hold");
    }

    #[test]
    fn cap_trails_measured_power() {
        let c = cfg(10.0);
        let mut d = DufpF::new(c.clone());
        let mut a = MemActuators::new(c.clone());
        d.on_interval(&m(1e10, 8e10, 93.0, 2.8), &mut a).unwrap();
        d.on_interval(&m(1e10, 8e10, 93.0, 2.8), &mut a).unwrap();
        // 93 W + 10 W headroom, ceil to 5 W grid → 105 W.
        assert_eq!(a.cap_long(), Watts(105.0));
        assert_eq!(a.cap_short(), Watts(105.0));
        // Power falls; the cap follows down.
        for _ in 0..3 {
            d.on_interval(&m(1e10, 8e10, 74.0, 2.6), &mut a).unwrap();
        }
        assert_eq!(a.cap_long(), Watts(85.0));
    }

    #[test]
    fn trailing_cap_respects_floor_and_default() {
        let c = cfg(10.0);
        let d = DufpF::new(c);
        assert_eq!(d.trailing_cap(Watts(40.0), Watts(125.0)), Watts(65.0));
        assert_eq!(d.trailing_cap(Watts(130.0), Watts(125.0)), Watts(125.0));
        assert_eq!(d.trailing_cap(Watts(93.0), Watts(125.0)), Watts(105.0));
    }

    #[test]
    fn phase_change_resets_all_three_knobs() {
        let c = cfg(10.0);
        let mut d = DufpF::new(c.clone());
        let mut a = MemActuators::new(c.clone());
        for _ in 0..5 {
            d.on_interval(&m(1e10, 8e10, 95.0, 2.8), &mut a).unwrap();
        }
        assert!(a.core_freq_cap() < c.core_freq_max);
        assert!(a.cap_long() < Watts(125.0));
        // Class flip.
        d.on_interval(&m(3e11, 5e10, 120.0, 2.8), &mut a).unwrap();
        assert_eq!(d.last_freq_action(), FreqAction::Reset);
        assert_eq!(a.core_freq_cap(), c.core_freq_max);
        assert_eq!(a.cap_long(), Watts(125.0));
        assert_eq!(a.uncore_now, c.uncore_max);
    }

    #[test]
    fn frequency_never_leaves_ladder_bounds() {
        let c = cfg(20.0);
        let mut d = DufpF::new(c.clone());
        let mut a = MemActuators::new(c.clone());
        for _ in 0..60 {
            d.on_interval(&m(1e10, 8e10, 90.0, 2.8), &mut a).unwrap();
            assert!(a.core_freq_cap() >= c.core_freq_min);
            assert!(a.core_freq_cap() <= c.core_freq_max);
        }
        assert_eq!(a.core_freq_cap(), c.core_freq_min);
    }
}
