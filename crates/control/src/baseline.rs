//! Baseline controllers: the default configuration and static power caps.

use crate::actuators::Actuators;
use crate::state::ControllerState;
use crate::Controller;
use dufp_counters::IntervalMetrics;
use dufp_types::{Result, Seconds, Watts};

/// Leaves the platform exactly as it is — the "default" series in every
/// figure (performance governor, hardware UFS, PL1/PL2 at defaults).
#[derive(Debug, Default)]
pub struct NoOp;

impl Controller for NoOp {
    fn name(&self) -> &'static str {
        "default"
    }

    fn on_interval(&mut self, _m: &IntervalMetrics, _act: &mut dyn Actuators) -> Result<()> {
        Ok(())
    }

    fn state(&self) -> ControllerState {
        ControllerState::NoOp
    }

    fn restore(&mut self, state: &ControllerState) -> Result<()> {
        match state {
            ControllerState::NoOp => Ok(()),
            other => Err(other.mismatch("default")),
        }
    }
}

/// Applies a fixed power cap, either for the whole run or only inside a
/// time window — the §II-A motivation experiments (Fig. 1): whole-run
/// 110 W / 100 W caps, and the same caps applied only to CG's first,
/// highly-memory phase.
#[derive(Debug)]
pub struct StaticCap {
    cap: Watts,
    /// `(start, end)` — apply the cap only within this window; reset after.
    window: Option<(Seconds, Seconds)>,
    applied: bool,
    reset_done: bool,
}

impl StaticCap {
    /// Caps the whole run at `cap` (both constraints).
    pub fn whole_run(cap: Watts) -> Self {
        StaticCap {
            cap,
            window: None,
            applied: false,
            reset_done: false,
        }
    }

    /// Caps only `[start, end)`; the cap resets at `end` ("after this phase
    /// completed, we just reset the power cap to the default value").
    pub fn windowed(cap: Watts, start: Seconds, end: Seconds) -> Self {
        StaticCap {
            cap,
            window: Some((start, end)),
            applied: false,
            reset_done: false,
        }
    }
}

impl Controller for StaticCap {
    fn name(&self) -> &'static str {
        "static-cap"
    }

    fn on_interval(&mut self, m: &IntervalMetrics, act: &mut dyn Actuators) -> Result<()> {
        match self.window {
            None => {
                if !self.applied {
                    act.set_cap_both(self.cap)?;
                    self.applied = true;
                }
            }
            Some((start, end)) => {
                let t = m.at.as_seconds();
                if !self.applied && t >= start && t < end {
                    act.set_cap_both(self.cap)?;
                    self.applied = true;
                }
                if self.applied && !self.reset_done && t >= end {
                    act.reset_cap()?;
                    self.reset_done = true;
                }
            }
        }
        Ok(())
    }

    fn state(&self) -> ControllerState {
        ControllerState::StaticCap {
            applied: self.applied,
            reset_done: self.reset_done,
        }
    }

    fn restore(&mut self, state: &ControllerState) -> Result<()> {
        match state {
            ControllerState::StaticCap {
                applied,
                reset_done,
            } => {
                self.applied = *applied;
                self.reset_done = *reset_done;
                Ok(())
            }
            other => Err(other.mismatch("static-cap")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuators::test_support::MemActuators;
    use crate::config::ControlConfig;
    use dufp_types::{ArchSpec, BytesPerSec, FlopsPerSec, Hertz, Instant, OpIntensity, Ratio};

    fn cfg() -> ControlConfig {
        ControlConfig::from_arch(&ArchSpec::yeti(), Ratio::from_percent(5.0)).unwrap()
    }

    fn at(seconds: f64) -> IntervalMetrics {
        IntervalMetrics {
            at: Instant((seconds * 1e6) as u64),
            interval: Seconds(0.2),
            flops: FlopsPerSec(1e10),
            bandwidth: BytesPerSec(1e10),
            oi: OpIntensity(1.0),
            pkg_power: Watts(100.0),
            dram_power: Watts(20.0),
            core_freq: Hertz::from_ghz(2.8),
        }
    }

    #[test]
    fn noop_touches_nothing() {
        let c = cfg();
        let mut a = MemActuators::new(c);
        NoOp.on_interval(&at(0.2), &mut a).unwrap();
        assert!(a.log.is_empty());
    }

    #[test]
    fn whole_run_cap_applies_once() {
        let c = cfg();
        let mut a = MemActuators::new(c);
        let mut s = StaticCap::whole_run(Watts(110.0));
        s.on_interval(&at(0.2), &mut a).unwrap();
        s.on_interval(&at(0.4), &mut a).unwrap();
        assert_eq!(a.cap_long(), Watts(110.0));
        assert_eq!(a.cap_short(), Watts(110.0));
        assert_eq!(
            a.log.iter().filter(|l| l.starts_with("cap_both")).count(),
            1
        );
    }

    #[test]
    fn windowed_cap_applies_and_resets() {
        let c = cfg();
        let mut a = MemActuators::new(c);
        let mut s = StaticCap::windowed(Watts(100.0), Seconds(1.0), Seconds(3.0));
        s.on_interval(&at(0.2), &mut a).unwrap();
        assert_eq!(a.cap_long(), Watts(125.0), "before window");
        s.on_interval(&at(1.2), &mut a).unwrap();
        assert_eq!(a.cap_long(), Watts(100.0), "inside window");
        s.on_interval(&at(2.0), &mut a).unwrap();
        assert_eq!(a.cap_long(), Watts(100.0));
        s.on_interval(&at(3.2), &mut a).unwrap();
        assert_eq!(a.cap_long(), Watts(125.0), "after window");
        assert_eq!(a.cap_short(), Watts(150.0));
    }
}
