//! DUFP — dynamic uncore frequency scaling **plus** dynamic power capping
//! (the paper's contribution, §III and Fig. 2).
//!
//! The uncore side is DUF verbatim ([`crate::duf::UncoreLogic`]); this
//! module adds the cap state machine:
//!
//! * **Phase change** → reset the cap (both constraints to their
//!   defaults); then coupling 2: read the uncore back and retry the reset
//!   if the lingering cap kept it below the maximum.
//! * **Overshoot** (§IV-D) → if measured package power exceeds the
//!   programmed long-term cap by more than a margin (a fresh cap hasn't
//!   bitten yet), reset the cap.
//! * **Post-reset trim** → on the interval after a reset, if the measured
//!   power already fits under the long-term cap, pull the short-term
//!   constraint down to the long-term value.
//! * **Highly compute-intensive phases** (`oi > 100`) → any FLOPS/s *or*
//!   bandwidth drop beyond the tolerance resets the cap outright (these
//!   phases are the ones power capping hurts most).
//! * **Highly memory-intensive phases** (`oi < 0.02`) → keep decreasing
//!   toward the 65 W floor regardless of FLOPS/s.
//! * **Otherwise** → the DUF-style three-way split on the FLOPS/s drop:
//!   beyond tolerance → increase one step (a full reset once the long-term
//!   constraint would return to its default); at the boundary → hold;
//!   else → decrease one step, writing *both* constraints.
//! * **Coupling 1** → if the uncore was raised last interval and that did
//!   not improve FLOPS/s, raise the cap too (the cap, not the uncore, was
//!   the real bottleneck).

use crate::actuators::Actuators;
use crate::config::ControlConfig;
use crate::duf::{relative_drop, uncore_trace_reason, UncoreAction, UncoreLogic};
use crate::phase::{PhaseEvent, PhaseTracker};
use crate::state::ControllerState;
use crate::trace::TelState;
use crate::Controller;
use dufp_counters::IntervalMetrics;
use dufp_telemetry::{Actuator, Reason, SocketTelemetry};
use dufp_types::{Result, Watts};
use serde::{Deserialize, Serialize};

/// What the cap logic did this interval (trace/test visibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CapAction {
    /// No decision yet.
    None,
    /// Stepped both constraints down.
    Decreased,
    /// Stepped the cap up.
    Increased,
    /// Restored both constraints to defaults.
    Reset,
    /// Held steady.
    Hold,
}

/// The DUFP controller.
#[derive(Debug)]
pub struct Dufp {
    cfg: ControlConfig,
    tracker: PhaseTracker,
    uncore: UncoreLogic,
    last_cap_action: CapAction,
    prev_flops: Option<f64>,
    prev_uncore_action: UncoreAction,
    /// Cap level a violation forced us back up to; probing below it is
    /// blocked until [`ControlConfig::reprobe_intervals`] pass.
    cap_probe_floor: Option<f64>,
    intervals_since_cap_violation: u32,
    /// Cumulative FLOPs observed (for the §V-G cumulative guard).
    cumulative_flops: f64,
    /// Cumulative FLOPs a run at each phase's maximum would have retired.
    cumulative_reference: f64,
    tel: TelState,
}

impl Dufp {
    /// New DUFP instance.
    pub fn new(cfg: ControlConfig) -> Self {
        Dufp {
            uncore: UncoreLogic::new(cfg.clone()),
            cfg,
            tracker: PhaseTracker::new(),
            last_cap_action: CapAction::None,
            prev_flops: None,
            prev_uncore_action: UncoreAction::None,
            cap_probe_floor: None,
            intervals_since_cap_violation: 0,
            cumulative_flops: 0.0,
            cumulative_reference: 0.0,
            tel: TelState::default(),
        }
    }

    /// Attaches a decision-trace recorder (builder style).
    pub fn with_telemetry(mut self, tel: SocketTelemetry) -> Self {
        self.tel.tel = tel;
        self
    }

    /// The cumulative progress deficit, `1 − observed / reference`, used by
    /// the §V-G guard. Zero until enough reference accumulates.
    pub fn cumulative_deficit(&self) -> f64 {
        if self.cumulative_reference > 0.0 {
            (1.0 - self.cumulative_flops / self.cumulative_reference).max(0.0)
        } else {
            0.0
        }
    }

    /// The most recent cap action.
    pub fn last_cap_action(&self) -> CapAction {
        self.last_cap_action
    }

    /// The most recent uncore action.
    pub fn last_uncore_action(&self) -> UncoreAction {
        self.uncore.last_action
    }

    /// Resets the cap and re-checks the uncore (coupling 2).
    fn reset_both_coupling(&mut self, act: &mut dyn Actuators) -> Result<()> {
        act.reset_cap()?;
        // "whenever we reset both values, DUFP checks if the uncore
        // frequency is at the maximum. If not, it tries to reset it once
        // again." (§III, coupling 2)
        if self.cfg.coupling2 && act.read_uncore()? < self.cfg.uncore_max {
            act.reset_uncore()?;
        }
        Ok(())
    }

    fn cap_decrease(&mut self, act: &mut dyn Actuators) -> Result<CapAction> {
        let cur = act.cap_long();
        if cur <= self.cfg.cap_floor {
            return Ok(CapAction::Hold);
        }
        let next = (cur - self.cfg.cap_step).max(self.cfg.cap_floor);
        let blocked = self
            .cap_probe_floor
            .is_some_and(|fl| next.value() < fl - 0.1)
            && self.intervals_since_cap_violation < self.cfg.reprobe_intervals;
        if blocked {
            return Ok(CapAction::Hold);
        }
        if self
            .cap_probe_floor
            .is_some_and(|fl| next.value() < fl - 0.1)
        {
            // Re-probe window reached: feel for the boundary again.
            self.cap_probe_floor = None;
        }
        act.set_cap_both(next)?;
        Ok(CapAction::Decreased)
    }

    fn cap_increase(&mut self, act: &mut dyn Actuators) -> Result<CapAction> {
        let (default_long, _) = act.cap_defaults();
        let next = act.cap_long() + self.cfg.cap_step;
        self.intervals_since_cap_violation = 0;
        self.cap_probe_floor = Some(next.value().min(default_long.value()));
        if next >= default_long {
            // "if the value reached by the long term constraint is equal to
            // its default value, the power cap is reset" (§III).
            act.reset_cap()?;
            Ok(CapAction::Reset)
        } else {
            act.set_cap_both(next)?;
            Ok(CapAction::Increased)
        }
    }
}

impl Controller for Dufp {
    fn name(&self) -> &'static str {
        "DUFP"
    }

    fn on_interval(&mut self, m: &IntervalMetrics, act: &mut dyn Actuators) -> Result<()> {
        let uncore_before = act.uncore();
        let cap_long_before = act.cap_long();
        let cap_short_before = act.cap_short();
        let event = self.tracker.observe(m);
        if event == PhaseEvent::Changed {
            self.tel.phase_seq += 1;
        }
        // §V-G cumulative guard bookkeeping (cheap even when disabled).
        self.cumulative_flops += m.flops.value() * m.interval.value();
        self.cumulative_reference += self.tracker.max_flops * m.interval.value();
        let uncore_action_before = self.uncore.last_action;
        // Attribution: when the observed core frequency sits below the
        // all-core maximum, RAPL is actively throttling to honor the cap —
        // a FLOPS/s dip is then on the cap, not the uncore, and the uncore
        // must not react. (DVFS-ladder quantization keeps the measured
        // power a few watts *below* the cap while throttling, so comparing
        // power against the cap would miss it.)
        let cap_binding = act.cap_long() < act.cap_defaults().0
            && m.core_freq.value() < self.cfg.core_freq_max.value() * 0.98;
        // Also suppress for one interval after the cap moved back up: the
        // interval straddling the raise still carries throttled FLOPS.
        let cap_recovering = matches!(
            self.last_cap_action,
            CapAction::Reset | CapAction::Increased
        );
        self.uncore
            .decide(event, &self.tracker, m, act, cap_binding || cap_recovering)?;

        // Each branch pairs its action with the trace reason for it; the
        // reason only reaches the recorder when the cap actually moved.
        let (cap_action, cap_reason) = 'cap: {
            match event {
                PhaseEvent::First => (CapAction::None, Reason::Probe),
                PhaseEvent::Changed => {
                    self.reset_both_coupling(act)?;
                    self.cap_probe_floor = None;
                    self.intervals_since_cap_violation = 0;
                    (CapAction::Reset, Reason::PhaseReset)
                }
                PhaseEvent::Continued => {
                    self.intervals_since_cap_violation =
                        self.intervals_since_cap_violation.saturating_add(1);
                    let s = self.cfg.slowdown.value();
                    // §V-G: reserve part of the slowdown budget for hidden,
                    // counter-invisible slowdown (LAMMPS' aliased bursts): once
                    // the *cumulative* FLOPS deficit eats 75 % of the
                    // tolerance, stop capping deeper and step back up.
                    let guard_threshold = (s * 0.75).max(self.cfg.epsilon.value());
                    if self.cfg.cumulative_guard
                        && self.cumulative_deficit() > guard_threshold
                        && act.cap_long() < act.cap_defaults().0
                    {
                        let action = self.cap_increase(act)?;
                        break 'cap (action, Reason::CumulativeGuard);
                    }
                    let e = self.cfg.epsilon.value();
                    let drop_f = relative_drop(m.flops.value(), self.tracker.max_flops);
                    let drop_b = relative_drop(m.bandwidth.value(), self.tracker.max_bandwidth);
                    let oi = self.tracker.last_oi;

                    // §IV-D: a just-written cap needs time to bite; if measured
                    // power still exceeds the programmed cap, reset it.
                    if self.cfg.overshoot_reset
                        && m.pkg_power > act.cap_long() + self.cfg.overshoot_margin
                        && act.cap_long() < act.cap_defaults().0
                    {
                        act.reset_cap()?;
                        (CapAction::Reset, Reason::Overshoot)
                    } else if self.last_cap_action == CapAction::Reset
                        && m.pkg_power < act.cap_long()
                        && act.cap_short() > act.cap_long()
                    {
                        // Post-reset bookkeeping: power already under the cap →
                        // pull the short-term constraint down to the long-term
                        // value (§III, last paragraph). This is the interval's
                        // whole cap action.
                        act.set_cap_short(act.cap_long())?;
                        (CapAction::Hold, Reason::PostResetTrim)
                    } else {
                        // Coupling 1: the uncore went up last interval but
                        // FLOPS/s did not improve → the cap was the bottleneck.
                        // Applies "even if the FLOPS/s are still within the
                        // tolerated slowdown" (§III) — i.e. only there; outright
                        // violations go through the regular paths below.
                        let within = drop_f <= if s > 0.0 { s } else { e };
                        let uncore_increase_failed = self.cfg.coupling1
                            && uncore_action_before == UncoreAction::Increased
                            && within
                            && self
                                .prev_flops
                                .is_some_and(|p| m.flops.value() <= p * (1.0 + e));

                        // Reverse attribution: if the *uncore* stepped down
                        // last interval (its periodic probe below the recorded
                        // boundary), a FLOPS/s dip this interval is the
                        // uncore's doing — the uncore logic will raise it back
                        // itself; the cap must not react.
                        let uncore_probed = uncore_action_before == UncoreAction::Decreased;

                        if uncore_increase_failed && act.cap_long() < act.cap_defaults().0 {
                            (self.cap_increase(act)?, Reason::CrossCoupling)
                        } else if oi > self.cfg.oi_highly_compute {
                            // Highly compute-intensive: reset on any violation
                            // of FLOPS/s or bandwidth, else keep decreasing.
                            // Only the cap resets here — the uncore keeps its
                            // own state (decisions are taken separately, §III).
                            let threshold = if s > 0.0 { s } else { e };
                            if drop_f > threshold || drop_b > threshold {
                                let why = if drop_f > threshold {
                                    Reason::SlowdownViolation
                                } else {
                                    Reason::BandwidthViolation
                                };
                                if uncore_probed {
                                    (CapAction::Hold, why)
                                } else if act.cap_long() < act.cap_defaults().0 {
                                    act.reset_cap()?;
                                    (CapAction::Reset, why)
                                } else {
                                    (CapAction::Hold, why)
                                }
                            } else if s > 0.0 && drop_f >= s - e {
                                (CapAction::Hold, Reason::Probe)
                            } else {
                                (self.cap_decrease(act)?, Reason::Probe)
                            }
                        } else if oi < self.cfg.oi_highly_memory {
                            // Highly memory-intensive: free to cap to the floor.
                            (self.cap_decrease(act)?, Reason::Probe)
                        } else if drop_f > if s > 0.0 { s } else { e } {
                            if uncore_probed {
                                (CapAction::Hold, Reason::SlowdownViolation)
                            } else if act.cap_long() < act.cap_defaults().0 {
                                (self.cap_increase(act)?, Reason::SlowdownViolation)
                            } else {
                                (CapAction::Hold, Reason::SlowdownViolation)
                            }
                        } else if s > 0.0 && drop_f >= s - e {
                            (CapAction::Hold, Reason::Probe)
                        } else {
                            (self.cap_decrease(act)?, Reason::Probe)
                        }
                    }
                }
            }
        };

        if self.tel.is_enabled() {
            if let Some(why) =
                uncore_trace_reason(self.uncore.last_action, m, &self.tracker, &self.cfg)
            {
                self.tel.emit(
                    Some(&self.tracker),
                    m,
                    Actuator::Uncore,
                    uncore_before.value(),
                    act.uncore().value(),
                    why,
                );
            }
            let long_now = act.cap_long();
            let short_now = act.cap_short();
            self.tel.emit(
                Some(&self.tracker),
                m,
                Actuator::PowerCap,
                cap_long_before.value(),
                long_now.value(),
                cap_reason,
            );
            // The short constraint gets its own event only when it moved
            // alone (the post-reset trim); joint writes are one decision.
            if long_now.value() == cap_long_before.value() {
                self.tel.emit(
                    Some(&self.tracker),
                    m,
                    Actuator::PowerCapShort,
                    cap_short_before.value(),
                    short_now.value(),
                    cap_reason,
                );
            }
        }
        self.tel.tick += 1;

        self.last_cap_action = cap_action;
        self.prev_uncore_action = uncore_action_before;
        self.prev_flops = Some(m.flops.value());
        Ok(())
    }

    fn state(&self) -> ControllerState {
        ControllerState::Dufp {
            tracker: self.tracker.clone(),
            uncore: self.uncore.state(),
            last_cap_action: self.last_cap_action,
            prev_flops: self.prev_flops,
            prev_uncore_action: self.prev_uncore_action,
            cap_probe_floor: self.cap_probe_floor,
            intervals_since_cap_violation: self.intervals_since_cap_violation,
            cumulative_flops: self.cumulative_flops,
            cumulative_reference: self.cumulative_reference,
            tel: self.tel.counters(),
        }
    }

    fn restore(&mut self, state: &ControllerState) -> Result<()> {
        match state {
            ControllerState::Dufp {
                tracker,
                uncore,
                last_cap_action,
                prev_flops,
                prev_uncore_action,
                cap_probe_floor,
                intervals_since_cap_violation,
                cumulative_flops,
                cumulative_reference,
                tel,
            } => {
                self.tracker = tracker.clone();
                self.uncore.restore(uncore);
                self.last_cap_action = *last_cap_action;
                self.prev_flops = *prev_flops;
                self.prev_uncore_action = *prev_uncore_action;
                self.cap_probe_floor = *cap_probe_floor;
                self.intervals_since_cap_violation = *intervals_since_cap_violation;
                self.cumulative_flops = *cumulative_flops;
                self.cumulative_reference = *cumulative_reference;
                self.tel.restore_counters(tel);
                Ok(())
            }
            other => Err(other.mismatch("DUFP")),
        }
    }
}

/// Convenience: the default cap value DUFP would restore (`PL1`).
pub fn default_cap(act: &dyn Actuators) -> Watts {
    act.cap_defaults().0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuators::test_support::MemActuators;
    use dufp_types::{
        ArchSpec, BytesPerSec, FlopsPerSec, Hertz, Instant, OpIntensity, Ratio, Seconds,
    };

    fn cfg(slowdown_pct: f64) -> ControlConfig {
        ControlConfig::from_arch(&ArchSpec::yeti(), Ratio::from_percent(slowdown_pct)).unwrap()
    }

    fn m(flops: f64, bw: f64, power: f64) -> IntervalMetrics {
        IntervalMetrics {
            at: Instant(0),
            interval: Seconds(0.2),
            flops: FlopsPerSec(flops),
            bandwidth: BytesPerSec(bw),
            oi: OpIntensity(if bw > 0.0 { flops / bw } else { f64::INFINITY }),
            pkg_power: Watts(power),
            dram_power: Watts(20.0),
            core_freq: Hertz::from_ghz(2.8),
        }
    }

    /// Mixed-intensity metrics: oi = 2 (not highly anything).
    fn mixed(flops: f64, power: f64) -> IntervalMetrics {
        m(flops, flops / 2.0, power)
    }

    /// Highly-memory metrics: oi = 0.01.
    fn hmem(bw: f64, power: f64) -> IntervalMetrics {
        m(bw * 0.01, bw, power)
    }

    /// Highly-compute metrics: oi = 200.
    fn hcpu(flops: f64, power: f64) -> IntervalMetrics {
        m(flops, flops / 200.0, power)
    }

    #[test]
    fn steady_phase_steps_cap_down_both_constraints() {
        let c = cfg(5.0);
        let mut d = Dufp::new(c.clone());
        let mut a = MemActuators::new(c.clone());
        d.on_interval(&mixed(1e11, 110.0), &mut a).unwrap(); // prime
        d.on_interval(&mixed(1e11, 110.0), &mut a).unwrap();
        assert_eq!(d.last_cap_action(), CapAction::Decreased);
        assert_eq!(a.cap_long(), Watts(120.0));
        assert_eq!(a.cap_short(), Watts(120.0), "decrease writes both");
        d.on_interval(&mixed(1e11, 110.0), &mut a).unwrap();
        assert_eq!(a.cap_long(), Watts(115.0));
    }

    #[test]
    fn cap_never_goes_below_floor() {
        let c = cfg(20.0);
        let mut d = Dufp::new(c.clone());
        let mut a = MemActuators::new(c.clone());
        for _ in 0..40 {
            d.on_interval(&hmem(9e10, 60.0), &mut a).unwrap();
            assert!(a.cap_long() >= c.cap_floor);
        }
        assert_eq!(a.cap_long(), c.cap_floor);
        assert_eq!(d.last_cap_action(), CapAction::Hold);
    }

    #[test]
    fn highly_memory_phase_decreases_despite_flops_drop() {
        // oi < 0.02: "power capping can be decreased with no impact on
        // performance" — the FLOPS/s check is bypassed.
        let c = cfg(0.0);
        let mut d = Dufp::new(c.clone());
        let mut a = MemActuators::new(c.clone());
        d.on_interval(&hmem(9e10, 80.0), &mut a).unwrap();
        // 10 % flops drop at 0 % tolerance would normally trigger increase.
        d.on_interval(&hmem(8.1e10, 78.0), &mut a).unwrap();
        assert_eq!(d.last_cap_action(), CapAction::Decreased);
    }

    #[test]
    fn violation_increases_then_resets_at_default() {
        let c = cfg(5.0);
        let mut d = Dufp::new(c.clone());
        let mut a = MemActuators::new(c.clone());
        d.on_interval(&mixed(1e11, 110.0), &mut a).unwrap();
        // Two decreases: 125 → 120 → 115.
        d.on_interval(&mixed(1e11, 110.0), &mut a).unwrap();
        d.on_interval(&mixed(1e11, 110.0), &mut a).unwrap();
        assert_eq!(a.cap_long(), Watts(115.0));
        // 10 % drop → first violating interval is attributed to the uncore
        // (it probed down last interval): the cap holds while the uncore
        // recovers.
        d.on_interval(&mixed(0.9e11, 100.0), &mut a).unwrap();
        assert_eq!(d.last_cap_action(), CapAction::Hold);
        // Still violating → now the cap reacts: increase 115 → 120.
        d.on_interval(&mixed(0.9e11, 100.0), &mut a).unwrap();
        assert_eq!(d.last_cap_action(), CapAction::Increased);
        assert_eq!(a.cap_long(), Watts(120.0));
        assert_eq!(a.cap_short(), Watts(120.0));
        // Another violation: 120 + 5 = 125 = default → full reset.
        d.on_interval(&mixed(0.9e11, 100.0), &mut a).unwrap();
        assert_eq!(d.last_cap_action(), CapAction::Reset);
        assert_eq!(a.cap_long(), Watts(125.0));
        assert_eq!(a.cap_short(), Watts(150.0), "reset restores PL2 default");
    }

    #[test]
    fn highly_compute_violation_resets_outright() {
        let c = cfg(5.0);
        let mut d = Dufp::new(c.clone());
        let mut a = MemActuators::new(c.clone());
        d.on_interval(&hcpu(4e11, 100.0), &mut a).unwrap();
        for _ in 0..4 {
            d.on_interval(&hcpu(4e11, 100.0), &mut a).unwrap();
        }
        assert_eq!(a.cap_long(), Watts(105.0));
        // 8 % drop > 5 % tolerance. The first violating interval is
        // attributed to the uncore's own probe; the second resets the cap
        // outright (no stepwise increase for oi > 100).
        d.on_interval(&hcpu(3.68e11, 100.0), &mut a).unwrap();
        assert_eq!(d.last_cap_action(), CapAction::Hold);
        d.on_interval(&hcpu(3.68e11, 100.0), &mut a).unwrap();
        assert_eq!(d.last_cap_action(), CapAction::Reset);
        assert_eq!(a.cap_long(), Watts(125.0));
    }

    #[test]
    fn highly_compute_bandwidth_drop_resets() {
        // §III: for oi > 100 the slowdown also applies to bandwidth.
        let c = cfg(5.0);
        let mut d = Dufp::new(c.clone());
        let mut a = MemActuators::new(c.clone());
        d.on_interval(&hcpu(4e11, 120.0), &mut a).unwrap();
        d.on_interval(&hcpu(4e11, 115.0), &mut a).unwrap();
        assert_eq!(a.cap_long(), Watts(120.0));
        // FLOPS steady but bandwidth collapses 10 %: craft oi still > 100.
        let mut bad = m(4e11, (4e11 / 200.0) * 0.9, 110.0);
        bad.oi = OpIntensity(222.0);
        d.on_interval(&bad, &mut a).unwrap(); // attributed to uncore probe
        d.on_interval(&bad, &mut a).unwrap();
        assert_eq!(d.last_cap_action(), CapAction::Reset);
    }

    #[test]
    fn phase_change_resets_cap_and_uncore() {
        let c = cfg(10.0);
        let mut d = Dufp::new(c.clone());
        let mut a = MemActuators::new(c.clone());
        d.on_interval(&m(1e10, 8e10, 110.0), &mut a).unwrap(); // memory
        d.on_interval(&m(1e10, 8e10, 110.0), &mut a).unwrap(); // decrease
        d.on_interval(&m(1e10, 8e10, 110.0), &mut a).unwrap();
        assert!(a.cap_long() < Watts(125.0));
        assert!(a.uncore() < c.uncore_max);
        // Class flip → both reset.
        d.on_interval(&m(3e11, 5e10, 120.0), &mut a).unwrap();
        assert_eq!(d.last_cap_action(), CapAction::Reset);
        assert_eq!(a.cap_long(), Watts(125.0));
        assert_eq!(a.uncore(), c.uncore_max);
    }

    #[test]
    fn coupling2_retries_uncore_reset_when_readback_lags() {
        let c = cfg(10.0);
        let mut d = Dufp::new(c.clone());
        let mut a = MemActuators::new(c.clone());
        d.on_interval(&m(1e10, 8e10, 110.0), &mut a).unwrap();
        d.on_interval(&m(1e10, 8e10, 110.0), &mut a).unwrap();
        // Make the hardware report a lingering low uncore on read-back.
        a.uncore_readback_override = Some(Hertz::from_ghz(1.8));
        d.on_interval(&m(3e11, 5e10, 120.0), &mut a).unwrap(); // phase change
                                                               // The retry must have issued a second uncore reset.
        let resets = a.log.iter().filter(|l| *l == "uncore=reset").count();
        assert!(resets >= 2, "log: {:?}", a.log);
    }

    #[test]
    fn overshoot_resets_cap() {
        let c = cfg(10.0);
        let mut d = Dufp::new(c.clone());
        let mut a = MemActuators::new(c.clone());
        d.on_interval(&mixed(1e11, 110.0), &mut a).unwrap();
        d.on_interval(&mixed(1e11, 110.0), &mut a).unwrap(); // 120 W cap
        assert_eq!(a.cap_long(), Watts(120.0));
        // Measured power 126 W > 120 + 3 margin → §IV-D reset.
        d.on_interval(&mixed(1e11, 126.0), &mut a).unwrap();
        assert_eq!(d.last_cap_action(), CapAction::Reset);
        assert_eq!(a.cap_long(), Watts(125.0));
    }

    #[test]
    fn post_reset_trims_short_term_constraint() {
        let c = cfg(10.0);
        let mut d = Dufp::new(c.clone());
        let mut a = MemActuators::new(c.clone());
        d.on_interval(&mixed(1e11, 110.0), &mut a).unwrap();
        d.on_interval(&mixed(1e11, 110.0), &mut a).unwrap();
        d.on_interval(&mixed(1e11, 126.0), &mut a).unwrap(); // overshoot → reset
        assert_eq!(a.cap_short(), Watts(150.0));
        // Next interval: power (110) < PL1 (125) → short := long.
        d.on_interval(&mixed(1e11, 110.0), &mut a).unwrap();
        assert_eq!(a.cap_short(), Watts(125.0));
    }

    #[test]
    fn coupling1_raises_cap_when_uncore_increase_did_not_help() {
        let c = cfg(10.0);
        let mut d = Dufp::new(c.clone());
        let mut a = MemActuators::new(c.clone());
        // Memory-ish phase so the uncore logic is in charge of bandwidth.
        let base = m(1e10, 8e10, 110.0);
        d.on_interval(&base, &mut a).unwrap();
        // Several decreases of both actuators.
        for _ in 0..3 {
            d.on_interval(&base, &mut a).unwrap();
        }
        let cap_before = a.cap_long();
        // Bandwidth dips 12 % → uncore logic increases (violation), cap
        // logic sees flops fine (within slowdown)… uncore raised.
        d.on_interval(&m(1e10, 7.0e10, 105.0), &mut a).unwrap();
        assert_eq!(d.last_uncore_action(), UncoreAction::Increased);
        // Next interval FLOPS did not improve → coupling 1 raises the cap.
        d.on_interval(&m(1e10, 7.0e10, 105.0), &mut a).unwrap();
        assert!(
            a.cap_long() > cap_before - Watts(5.1),
            "cap must move up (or reset), log: {:?}",
            a.log
        );
        assert!(matches!(
            d.last_cap_action(),
            CapAction::Increased | CapAction::Reset
        ));
    }

    #[test]
    fn cumulative_guard_freezes_descent_on_sustained_drain() {
        // Per-interval FLOPS sit inside the decrease region (8.5 % drop at
        // 10 % tolerance), so the vanilla controller caps all the way to
        // the floor. The guard sees the *cumulative* deficit cross 75 % of
        // the tolerance and backs off, leaving budget for slowdown the
        // counters cannot see (§V-G, LAMMPS).
        let mut c = cfg(10.0);
        c.cumulative_guard = true;
        let mut guarded = Dufp::new(c.clone());
        let mut a_guarded = MemActuators::new(c.clone());
        let vanilla_cfg = cfg(10.0);
        let mut vanilla = Dufp::new(vanilla_cfg.clone());
        let mut a_vanilla = MemActuators::new(vanilla_cfg);

        // Measured power (60 W) stays under every cap the controllers set,
        // so the §IV-D overshoot reset stays out of the picture.
        let mut stream = vec![1.0, 1.0];
        stream.extend(std::iter::repeat_n(0.915, 28));
        for d in stream {
            let m = mixed(1e11 * d, 60.0);
            guarded.on_interval(&m, &mut a_guarded).unwrap();
            vanilla.on_interval(&m, &mut a_vanilla).unwrap();
        }
        assert!(
            guarded.cumulative_deficit() > 0.075,
            "deficit {:.4}",
            guarded.cumulative_deficit()
        );
        assert_eq!(
            a_vanilla.cap_long(),
            Watts(65.0),
            "vanilla runs to the floor"
        );
        assert!(
            a_guarded.cap_long() > a_vanilla.cap_long() + Watts(10.0),
            "guarded cap {:?} must hold back",
            a_guarded.cap_long()
        );
    }

    #[test]
    fn at_boundary_holds_cap() {
        let c = cfg(5.0);
        let mut d = Dufp::new(c.clone());
        let mut a = MemActuators::new(c.clone());
        d.on_interval(&mixed(1e11, 110.0), &mut a).unwrap();
        // Exactly 5 % down: inside the ±1 % band → hold.
        d.on_interval(&mixed(0.95e11, 105.0), &mut a).unwrap();
        assert_eq!(d.last_cap_action(), CapAction::Hold);
        assert_eq!(a.cap_long(), Watts(125.0));
    }
}
