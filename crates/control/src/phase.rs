//! Phase detection and per-phase performance tracking.
//!
//! The paper's phase model (§III): an interval is *memory-intensive* when
//! its operational intensity is below 1 and *CPU-intensive* otherwise; a
//! *phase change* is either a flip between those classes or the FLOPS/s
//! doubling within the same class. On a phase change both actuators reset
//! and the per-phase maxima restart from the current interval.

use dufp_counters::IntervalMetrics;
use serde::{Deserialize, Serialize};

/// Coarse behaviour class of an interval (§III: "we only consider the
/// ratio between FLOPS/s and memory").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseClass {
    /// Operational intensity below 1.
    Memory,
    /// Operational intensity of 1 or above (including ∞ when the interval
    /// moved no bytes).
    Cpu,
}

impl PhaseClass {
    /// Classifies an operational intensity value.
    pub fn of(oi: f64) -> Self {
        if oi < 1.0 {
            PhaseClass::Memory
        } else {
            PhaseClass::Cpu
        }
    }
}

/// Result of feeding one interval to the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseEvent {
    /// First interval ever observed.
    First,
    /// Same phase continues.
    Continued,
    /// A new phase began (class flip or FLOPS/s doubling).
    Changed,
}

/// Tracks the current phase and its performance maxima.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTracker {
    class: Option<PhaseClass>,
    /// Highest FLOPS/s seen in the current phase.
    pub max_flops: f64,
    /// Highest bandwidth seen in the current phase.
    pub max_bandwidth: f64,
    /// Operational intensity of the latest interval.
    pub last_oi: f64,
}

impl PhaseTracker {
    /// A tracker that has seen nothing yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current phase class, if any interval has been observed.
    pub fn class(&self) -> Option<PhaseClass> {
        self.class
    }

    /// Feeds one interval; updates maxima and reports what happened.
    pub fn observe(&mut self, m: &IntervalMetrics) -> PhaseEvent {
        let oi = m.oi.value();
        let flops = m.flops.value();
        let bw = m.bandwidth.value();
        self.last_oi = oi;
        let class = PhaseClass::of(oi);

        let event = match self.class {
            None => PhaseEvent::First,
            Some(prev) if prev != class => PhaseEvent::Changed,
            Some(_) if self.max_flops > 0.0 && flops >= 2.0 * self.max_flops => PhaseEvent::Changed,
            Some(_) => PhaseEvent::Continued,
        };

        match event {
            PhaseEvent::Continued => {
                self.max_flops = self.max_flops.max(flops);
                self.max_bandwidth = self.max_bandwidth.max(bw);
            }
            PhaseEvent::First | PhaseEvent::Changed => {
                self.class = Some(class);
                self.max_flops = flops;
                self.max_bandwidth = bw;
            }
        }
        event
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dufp_types::{BytesPerSec, FlopsPerSec, Hertz, Instant, OpIntensity, Seconds, Watts};

    pub(crate) fn metrics(flops: f64, bw: f64) -> IntervalMetrics {
        IntervalMetrics {
            at: Instant(0),
            interval: Seconds(0.2),
            flops: FlopsPerSec(flops),
            bandwidth: BytesPerSec(bw),
            oi: OpIntensity(if bw > 0.0 { flops / bw } else { f64::INFINITY }),
            pkg_power: Watts(100.0),
            dram_power: Watts(20.0),
            core_freq: Hertz::from_ghz(2.8),
        }
    }

    #[test]
    fn classes_split_at_oi_one() {
        assert_eq!(PhaseClass::of(0.99), PhaseClass::Memory);
        assert_eq!(PhaseClass::of(1.0), PhaseClass::Cpu);
        assert_eq!(PhaseClass::of(f64::INFINITY), PhaseClass::Cpu);
    }

    #[test]
    fn first_then_continue() {
        let mut t = PhaseTracker::new();
        assert_eq!(t.observe(&metrics(1e9, 1e10)), PhaseEvent::First);
        assert_eq!(t.observe(&metrics(1.1e9, 1e10)), PhaseEvent::Continued);
        assert_eq!(t.max_flops, 1.1e9);
    }

    #[test]
    fn class_flip_is_a_phase_change() {
        let mut t = PhaseTracker::new();
        t.observe(&metrics(1e9, 1e10)); // oi 0.1, Memory
        assert_eq!(t.observe(&metrics(5e10, 1e10)), PhaseEvent::Changed); // oi 5
        assert_eq!(t.class(), Some(PhaseClass::Cpu));
        // Maxima restart from the new phase.
        assert_eq!(t.max_flops, 5e10);
    }

    #[test]
    fn flops_doubling_within_class_is_a_phase_change() {
        let mut t = PhaseTracker::new();
        t.observe(&metrics(1e9, 1e10)); // Memory
        t.observe(&metrics(1.2e9, 1.1e10)); // still Memory, max 1.2e9
        assert_eq!(t.observe(&metrics(2.5e9, 2.6e10)), PhaseEvent::Changed);
        assert_eq!(t.max_flops, 2.5e9);
    }

    #[test]
    fn sub_doubling_rise_is_not_a_phase_change() {
        let mut t = PhaseTracker::new();
        t.observe(&metrics(1e9, 1e10));
        assert_eq!(t.observe(&metrics(1.9e9, 2e10)), PhaseEvent::Continued);
        assert_eq!(t.max_flops, 1.9e9);
    }

    #[test]
    fn flops_drop_is_not_a_phase_change() {
        // The paper's detector only fires on rises (doubling); the maxima
        // must keep remembering the phase's best.
        let mut t = PhaseTracker::new();
        t.observe(&metrics(1e9, 1e10));
        assert_eq!(t.observe(&metrics(0.5e9, 0.5e10)), PhaseEvent::Continued);
        assert_eq!(t.max_flops, 1e9);
    }

    #[test]
    fn zero_flops_start_does_not_trip_doubling() {
        let mut t = PhaseTracker::new();
        t.observe(&metrics(0.0, 1e10));
        assert_eq!(t.observe(&metrics(1e8, 1e10)), PhaseEvent::Continued);
    }
}
