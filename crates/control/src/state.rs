//! Serializable controller state for checkpoint/resume.
//!
//! Every [`crate::Controller`] can snapshot its full decision state into a
//! [`ControllerState`] and later restore from it; the runner stores these
//! snapshots in periodic checkpoints so a crashed experiment resumes with
//! the controllers exactly where they left off — same phase maxima, same
//! probe floors, same couplings — which is what makes the resumed decision
//! trajectory bit-identical to an uninterrupted run.
//!
//! The enum is deliberately data-only (no trait objects, no `Box`): it
//! round-trips through JSON with the vendored serde and a restore into the
//! wrong controller kind fails with a typed error instead of silently
//! reinterpreting fields.

use crate::dnpc::DnpcAction;
use crate::duf::UncoreAction;
use crate::dufp::CapAction;
use crate::dufpf::FreqAction;
use crate::phase::PhaseTracker;
use serde::{Deserialize, Serialize};

/// The per-controller telemetry counters ([`crate::trace::TelState`]'s
/// durable part — the recorder handle itself is reattached on resume).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelCounters {
    /// Monitoring intervals seen so far.
    pub tick: u64,
    /// Phase changes seen so far.
    pub phase_seq: u64,
}

/// Snapshot of the shared DUF uncore decision engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UncoreLogicState {
    /// The action taken on the most recent interval.
    pub last_action: UncoreAction,
    /// Probe floor a violation established, if any.
    pub probe_floor: Option<f64>,
    /// Intervals since the last violation (re-probe clock).
    pub intervals_since_violation: u32,
}

/// A controller's full decision state, one variant per controller kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControllerState {
    /// [`crate::NoOp`] carries no state.
    NoOp,
    /// [`crate::StaticCap`] application latches.
    StaticCap {
        /// Whether the cap has been applied.
        applied: bool,
        /// Whether the windowed reset already happened.
        reset_done: bool,
    },
    /// [`crate::Duf`]: phase tracker + uncore engine.
    Duf {
        /// Shared phase tracker.
        tracker: PhaseTracker,
        /// Uncore decision engine.
        uncore: UncoreLogicState,
        /// Telemetry counters.
        tel: TelCounters,
    },
    /// [`crate::Dufp`]: DUF state plus the cap state machine.
    Dufp {
        /// Shared phase tracker.
        tracker: PhaseTracker,
        /// Uncore decision engine.
        uncore: UncoreLogicState,
        /// Most recent cap action.
        last_cap_action: CapAction,
        /// FLOPS/s of the previous interval (coupling 1).
        prev_flops: Option<f64>,
        /// Uncore action two intervals back (coupling 1).
        prev_uncore_action: UncoreAction,
        /// Cap probe floor, if a violation established one.
        cap_probe_floor: Option<f64>,
        /// Intervals since the last cap violation.
        intervals_since_cap_violation: u32,
        /// Cumulative FLOPs observed (§V-G guard).
        cumulative_flops: f64,
        /// Cumulative FLOPs of the per-phase-maximum reference run.
        cumulative_reference: f64,
        /// Telemetry counters.
        tel: TelCounters,
    },
    /// [`crate::DufpF`]: DUF state plus the direct-frequency ladder.
    DufpF {
        /// Shared phase tracker.
        tracker: PhaseTracker,
        /// Uncore decision engine.
        uncore: UncoreLogicState,
        /// Most recent frequency action.
        last_freq_action: FreqAction,
        /// Frequency probe floor, if any.
        probe_floor: Option<f64>,
        /// Intervals since the last frequency violation.
        intervals_since_violation: u32,
        /// Telemetry counters.
        tel: TelCounters,
    },
    /// [`crate::Dnpc`]: the frequency-linear baseline.
    Dnpc {
        /// Most recent action.
        last_action: DnpcAction,
        /// Telemetry counters.
        tel: TelCounters,
    },
}

impl ControllerState {
    /// The controller kind this snapshot belongs to (diagnostics).
    pub fn kind(&self) -> &'static str {
        match self {
            ControllerState::NoOp => "default",
            ControllerState::StaticCap { .. } => "static-cap",
            ControllerState::Duf { .. } => "DUF",
            ControllerState::Dufp { .. } => "DUFP",
            ControllerState::DufpF { .. } => "DUFP-F",
            ControllerState::Dnpc { .. } => "DNPC",
        }
    }

    /// The typed error for restoring into the wrong controller kind.
    pub(crate) fn mismatch(&self, expected: &'static str) -> dufp_types::Error {
        dufp_types::Error::invalid(
            "controller state",
            format!("cannot restore a {} snapshot into {expected}", self.kind()),
        )
    }
}
