//! DNPC-style dynamic power capping (related-work baseline, §VI).
//!
//! DNPC (Sharma et al., IEEE CLUSTER 2021) dynamically adapts the package
//! power cap to a user-defined performance-degradation limit, but its
//! degradation model is *frequency-linear*: it assumes performance scales
//! with core frequency and estimates next-period degradation as
//! `1 − f/f_max`. The paper's critique (§VI): "This is not the case
//! especially when targeting memory-intensive or vectorized applications.
//! DUFP reads the flops to detect if there was a performance change."
//!
//! This reimplementation exists as a comparator so the critique is
//! measurable: on memory-bound codes DNPC *over*-estimates degradation
//! (the cores idle at low frequency without hurting progress), backs the
//! cap off early, and leaves savings on the table that DUFP collects. The
//! `baseline_dnpc` bench binary reproduces that comparison.

use crate::actuators::Actuators;
use crate::config::ControlConfig;
use crate::state::ControllerState;
use crate::trace::TelState;
use crate::Controller;
use dufp_counters::IntervalMetrics;
use dufp_telemetry::{Actuator, Reason, SocketTelemetry};
use dufp_types::Result;
use serde::{Deserialize, Serialize};

/// The DNPC-style controller: cap only, frequency-linear degradation model.
#[derive(Debug)]
pub struct Dnpc {
    cfg: ControlConfig,
    last_action: DnpcAction,
    tel: TelState,
}

/// What DNPC did this interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnpcAction {
    /// No decision yet.
    None,
    /// Cap stepped down.
    Decreased,
    /// Cap stepped up (or reset at the default).
    Increased,
    /// Estimated degradation at the limit.
    Hold,
}

impl Dnpc {
    /// New instance honoring `cfg`'s tolerated slowdown, cap step/floor.
    pub fn new(cfg: ControlConfig) -> Self {
        Dnpc {
            cfg,
            last_action: DnpcAction::None,
            tel: TelState::default(),
        }
    }

    /// Attaches a decision-trace recorder (builder style).
    pub fn with_telemetry(mut self, tel: SocketTelemetry) -> Self {
        self.tel.tel = tel;
        self
    }

    /// The most recent action.
    pub fn last_action(&self) -> DnpcAction {
        self.last_action
    }

    /// DNPC's frequency-linear degradation estimate for an interval.
    pub fn estimated_degradation(&self, m: &IntervalMetrics) -> f64 {
        (1.0 - m.core_freq.value() / self.cfg.core_freq_max.value()).max(0.0)
    }
}

impl Controller for Dnpc {
    fn name(&self) -> &'static str {
        "DNPC"
    }

    fn on_interval(&mut self, m: &IntervalMetrics, act: &mut dyn Actuators) -> Result<()> {
        let cap_before = act.cap_long();
        let s = self.cfg.slowdown.value();
        let e = self.cfg.epsilon.value();
        let est = self.estimated_degradation(m);

        self.last_action = if est > s + e {
            // Model says we are over budget: raise the cap.
            let (default_long, _) = act.cap_defaults();
            if act.cap_long() < default_long {
                let next = act.cap_long() + self.cfg.cap_step;
                if next >= default_long {
                    act.reset_cap()?;
                } else {
                    act.set_cap_both(next)?;
                }
                DnpcAction::Increased
            } else {
                DnpcAction::Hold
            }
        } else if est >= (s - e).max(0.0) && s > 0.0 {
            DnpcAction::Hold
        } else {
            // Model says there is headroom: lower the cap.
            let cur = act.cap_long();
            if cur > self.cfg.cap_floor {
                act.set_cap_both((cur - self.cfg.cap_step).max(self.cfg.cap_floor))?;
                DnpcAction::Decreased
            } else {
                DnpcAction::Hold
            }
        };

        if self.tel.is_enabled() {
            // Every DNPC move comes from the frequency-linear model; raises
            // are the model declaring the budget exceeded, drops are probes
            // into the headroom it predicts.
            let why = match self.last_action {
                DnpcAction::Increased => Reason::ModelEstimate,
                DnpcAction::Decreased => Reason::Probe,
                DnpcAction::None | DnpcAction::Hold => Reason::Probe,
            };
            self.tel.emit(
                None,
                m,
                Actuator::PowerCap,
                cap_before.value(),
                act.cap_long().value(),
                why,
            );
        }
        self.tel.tick += 1;
        Ok(())
    }

    fn state(&self) -> ControllerState {
        ControllerState::Dnpc {
            last_action: self.last_action,
            tel: self.tel.counters(),
        }
    }

    fn restore(&mut self, state: &ControllerState) -> Result<()> {
        match state {
            ControllerState::Dnpc { last_action, tel } => {
                self.last_action = *last_action;
                self.tel.restore_counters(tel);
                Ok(())
            }
            other => Err(other.mismatch("DNPC")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuators::test_support::MemActuators;
    use dufp_types::{
        ArchSpec, BytesPerSec, FlopsPerSec, Hertz, Instant, OpIntensity, Ratio, Seconds, Watts,
    };

    fn cfg(pct: f64) -> ControlConfig {
        ControlConfig::from_arch(&ArchSpec::yeti(), Ratio::from_percent(pct)).unwrap()
    }

    fn m(freq_ghz: f64) -> IntervalMetrics {
        IntervalMetrics {
            at: Instant(0),
            interval: Seconds(0.2),
            flops: FlopsPerSec(1e11),
            bandwidth: BytesPerSec(5e10),
            oi: OpIntensity(2.0),
            pkg_power: Watts(110.0),
            dram_power: Watts(25.0),
            core_freq: Hertz::from_ghz(freq_ghz),
        }
    }

    #[test]
    fn full_frequency_means_headroom_and_decrease() {
        let c = cfg(10.0);
        let mut d = Dnpc::new(c.clone());
        let mut a = MemActuators::new(c);
        d.on_interval(&m(2.8), &mut a).unwrap();
        assert_eq!(d.last_action(), DnpcAction::Decreased);
        assert_eq!(a.cap_long(), Watts(120.0));
    }

    #[test]
    fn deep_throttle_raises_cap_even_if_flops_are_fine() {
        // The flaw the paper points out: frequency down 20 % on a
        // memory-bound phase (FLOPS unaffected) still reads as a 20 %
        // degradation to DNPC.
        let c = cfg(10.0);
        let mut d = Dnpc::new(c.clone());
        let mut a = MemActuators::new(c);
        d.on_interval(&m(2.8), &mut a).unwrap(); // 125 → 120
        d.on_interval(&m(2.8), &mut a).unwrap(); // 120 → 115
        assert_eq!(a.cap_long(), Watts(115.0));
        d.on_interval(&m(2.24), &mut a).unwrap(); // est 20 % > 11 %
        assert_eq!(d.last_action(), DnpcAction::Increased);
        assert_eq!(a.cap_long(), Watts(120.0));
    }

    #[test]
    fn estimate_is_frequency_linear() {
        let d = Dnpc::new(cfg(10.0));
        assert!((d.estimated_degradation(&m(2.8)) - 0.0).abs() < 1e-9);
        assert!((d.estimated_degradation(&m(2.52)) - 0.1).abs() < 1e-9);
        assert!((d.estimated_degradation(&m(1.4)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn holds_inside_the_band_and_floors_out() {
        let c = cfg(10.0);
        let mut d = Dnpc::new(c.clone());
        let mut a = MemActuators::new(c.clone());
        // est exactly 10 %: hold.
        d.on_interval(&m(2.52), &mut a).unwrap();
        assert_eq!(d.last_action(), DnpcAction::Hold);
        // Decrease to the floor and stay there.
        for _ in 0..30 {
            d.on_interval(&m(2.8), &mut a).unwrap();
        }
        assert_eq!(a.cap_long(), c.cap_floor);
        assert_eq!(d.last_action(), DnpcAction::Hold);
    }

    #[test]
    fn increase_saturates_with_reset_at_default() {
        let c = cfg(5.0);
        let mut d = Dnpc::new(c.clone());
        let mut a = MemActuators::new(c);
        d.on_interval(&m(2.8), &mut a).unwrap(); // → 120
        d.on_interval(&m(1.4), &mut a).unwrap(); // est 50 % → 125 = reset
        assert_eq!(a.cap_long(), Watts(125.0));
        assert_eq!(a.cap_short(), Watts(150.0));
        // Already at default: hold.
        d.on_interval(&m(1.4), &mut a).unwrap();
        assert_eq!(d.last_action(), DnpcAction::Hold);
    }
}
