//! The DUF and DUFP runtime controllers.
//!
//! One controller instance runs per socket (exactly like the paper's tool,
//! §III). Every monitoring interval (200 ms) it receives the derived
//! [`dufp_counters::IntervalMetrics`] and decides how to move two
//! actuators: the pinned uncore frequency and the RAPL package power cap.
//!
//! * [`config`] — tolerated slowdown, interval, step sizes, floors.
//! * [`phase`] — the shared phase tracker: classifies intervals as
//!   memory-/CPU-intensive by operational intensity, detects phase changes
//!   (intensity class flips or FLOPS/s doubling), tracks the per-phase
//!   FLOPS/s and bandwidth maxima every decision compares against.
//! * [`actuators`] — the actuator abstraction plus the hardware
//!   implementation over [`dufp_msr::MsrIo`] + [`dufp_rapl::PowerCapper`].
//! * [`duf`] — the prior tool: uncore frequency only (the paper's baseline).
//! * [`dufp`] — the paper's contribution: DUF's uncore algorithm plus
//!   dynamic power capping with the Fig. 2 decision rules, the two
//!   uncore/cap couplings, the asymmetric long/short-term constraint
//!   handling and the §IV-D overshoot reset.
//! * [`baseline`] — `NoOp` (default configuration) and `StaticCap`
//!   (whole-run or windowed fixed caps, used by the Fig. 1 motivation).
//! * [`dnpc`] — the DNPC related-work baseline (§VI): cap-only control
//!   with a frequency-linear degradation model, implemented so the paper's
//!   critique of it is measurable.
//! * [`dufpf`] — DUFP-F, the §VII future-work extension: core frequency is
//!   managed directly through `IA32_PERF_CTL` and the cap merely trails
//!   the measured power.
//!
//! Every controller accepts a `with_telemetry` recorder
//! ([`dufp_telemetry::SocketTelemetry`]); when attached, each actuator
//! move is emitted as a typed [`dufp_telemetry::DecisionEvent`] carrying
//! the reason for the move (slowdown violation, phase reset, overshoot,
//! cross-coupling, ...). Without it the controllers record nothing and the
//! instrumentation costs one branch per interval.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actuators;
pub mod baseline;
pub mod config;
pub mod dnpc;
pub mod duf;
pub mod dufp;
pub mod dufpf;
pub mod phase;
pub mod resilient;
pub mod state;
mod trace;

pub use actuators::{Actuators, HwActuators};
pub use baseline::{NoOp, StaticCap};
pub use config::ControlConfig;
pub use dnpc::Dnpc;
pub use duf::Duf;
pub use dufp::Dufp;
pub use dufpf::DufpF;
pub use phase::{PhaseClass, PhaseEvent, PhaseTracker};
pub use resilient::{
    classify, DegradationLevel, ErrorClass, KnobSnapshot, ResilienceState, ResilientActuators,
    RetryPolicy, SafeStateGuard,
};
pub use state::{ControllerState, TelCounters, UncoreLogicState};

use dufp_counters::IntervalMetrics;
use dufp_types::Result;

/// A per-socket runtime controller.
pub trait Controller: Send {
    /// Controller name for reports ("default", "DUF", "DUFP", ...).
    fn name(&self) -> &'static str;

    /// One monitoring-interval decision step.
    fn on_interval(&mut self, metrics: &IntervalMetrics, act: &mut dyn Actuators) -> Result<()>;

    /// Serializable snapshot of the full decision state, stored in
    /// checkpoints so a crashed run can resume mid-experiment.
    fn state(&self) -> ControllerState;

    /// Restores a snapshot taken from the same controller kind; a
    /// mismatched snapshot fails with a typed error.
    fn restore(&mut self, state: &ControllerState) -> Result<()>;
}
