//! Actuator abstraction and the hardware implementation.

use crate::config::ControlConfig;
use dufp_msr::registers::{PerfCtl, UncoreRatioLimit, IA32_PERF_CTL, MSR_UNCORE_RATIO_LIMIT};
use dufp_msr::MsrIo;
use dufp_rapl::{Constraint, PowerCapper};
use dufp_types::{Hertz, Result, SocketId, Watts};

/// The two knobs a controller can move on its socket.
///
/// Setters are *write-through*: they program the hardware and update the
/// cached view the getters return. `read_uncore` re-reads the register —
/// DUFP needs that for coupling 2 (§III): after a joint reset the applied
/// uncore frequency may still differ from the maximum because the cap's
/// effect lingers, and DUFP retries the reset when the read-back disagrees.
pub trait Actuators {
    /// Pins the uncore frequency (both band bounds) to `f`.
    fn set_uncore(&mut self, f: Hertz) -> Result<()>;

    /// Restores the default uncore band (hardware UFS active).
    fn reset_uncore(&mut self) -> Result<()>;

    /// The last uncore frequency this controller pinned; the band maximum
    /// if unpinned.
    fn uncore(&self) -> Hertz;

    /// Reads the uncore setting back from the hardware.
    fn read_uncore(&mut self) -> Result<Hertz>;

    /// Sets both RAPL constraints to `w` (DUFP's decrease path).
    fn set_cap_both(&mut self, w: Watts) -> Result<()>;

    /// Sets only the long-term constraint.
    fn set_cap_long(&mut self, w: Watts) -> Result<()>;

    /// Sets only the short-term constraint.
    fn set_cap_short(&mut self, w: Watts) -> Result<()>;

    /// Restores both constraints to their platform defaults.
    fn reset_cap(&mut self) -> Result<()>;

    /// Currently programmed long-term limit.
    fn cap_long(&self) -> Watts;

    /// Currently programmed short-term limit.
    fn cap_short(&self) -> Watts;

    /// Platform-default `(long_term, short_term)` limits.
    fn cap_defaults(&self) -> (Watts, Watts);

    /// Caps the core frequency directly via the P-state request
    /// (`IA32_PERF_CTL`) — the third knob, used by the DUFP-F extension
    /// (the paper's §VII future work).
    fn set_core_freq_cap(&mut self, f: Hertz) -> Result<()>;

    /// Restores the P-state request to the architectural maximum.
    fn reset_core_freq_cap(&mut self) -> Result<()>;

    /// The currently requested core-frequency ceiling.
    fn core_freq_cap(&self) -> Hertz;
}

/// Hardware actuators for one socket: uncore via the MSR, cap via a
/// [`PowerCapper`].
pub struct HwActuators<M, C> {
    msr: M,
    capper: C,
    socket: SocketId,
    lead_cpu: usize,
    cfg: ControlConfig,
    cached_uncore: Hertz,
    pinned: bool,
    cached_long: Watts,
    cached_short: Watts,
    defaults: (Watts, Watts),
    cached_freq_cap: Hertz,
}

impl<M: MsrIo, C: PowerCapper> HwActuators<M, C> {
    /// Creates actuators for `socket`; `lead_cpu` is any CPU on that
    /// socket (MSR access point).
    pub fn new(
        msr: M,
        capper: C,
        socket: SocketId,
        lead_cpu: usize,
        cfg: ControlConfig,
    ) -> Result<Self> {
        let defaults = capper.defaults(socket)?;
        let cached_long = capper.limit(socket, Constraint::LongTerm)?;
        let cached_short = capper.limit(socket, Constraint::ShortTerm)?;
        let raw = UncoreRatioLimit::decode(msr.read(lead_cpu, MSR_UNCORE_RATIO_LIMIT)?);
        let (_, hi) = raw.band();
        let cached_freq_cap = cfg.core_freq_max;
        Ok(HwActuators {
            msr,
            capper,
            socket,
            lead_cpu,
            cfg,
            cached_uncore: hi,
            pinned: false,
            cached_long,
            cached_short,
            defaults,
            cached_freq_cap,
        })
    }

    /// The socket these actuators drive.
    pub fn socket(&self) -> SocketId {
        self.socket
    }

    /// Whether the uncore band is currently pinned (vs. hardware UFS).
    pub fn uncore_pinned(&self) -> bool {
        self.pinned
    }

    /// The core-frequency ceiling this instance last requested (for
    /// checkpoints; see [`HwActuators::restore_cached`]).
    pub fn cached_freq_cap(&self) -> Hertz {
        self.cached_freq_cap
    }

    /// Restores the cached register views from a checkpoint. A fresh
    /// construction reads the *default* register state, not the state the
    /// checkpointed run had driven the hardware to, so every cached value
    /// a controller's getters can observe — uncore frequency and pin
    /// flag, both cap constraints, the core-frequency ceiling — must come
    /// from the checkpoint. Platform defaults need no restore: they are
    /// invariant across the run.
    pub fn restore_cached(
        &mut self,
        pinned: bool,
        uncore: Hertz,
        long: Watts,
        short: Watts,
        freq_cap: Hertz,
    ) {
        self.pinned = pinned;
        self.cached_uncore = uncore;
        self.cached_long = long;
        self.cached_short = short;
        self.cached_freq_cap = freq_cap;
    }
}

impl<M: MsrIo, C: PowerCapper> Actuators for HwActuators<M, C> {
    fn set_uncore(&mut self, f: Hertz) -> Result<()> {
        let f = Hertz(
            f.value()
                .clamp(self.cfg.uncore_min.value(), self.cfg.uncore_max.value()),
        );
        self.msr.write(
            self.lead_cpu,
            MSR_UNCORE_RATIO_LIMIT,
            UncoreRatioLimit::pinned(f).encode(),
        )?;
        self.cached_uncore = f;
        self.pinned = true;
        Ok(())
    }

    fn reset_uncore(&mut self) -> Result<()> {
        let raw = UncoreRatioLimit {
            max_ratio: self.cfg.uncore_max.as_ratio_100mhz(),
            min_ratio: self.cfg.uncore_min.as_ratio_100mhz(),
        };
        self.msr
            .write(self.lead_cpu, MSR_UNCORE_RATIO_LIMIT, raw.encode())?;
        self.cached_uncore = self.cfg.uncore_max;
        self.pinned = false;
        Ok(())
    }

    fn uncore(&self) -> Hertz {
        self.cached_uncore
    }

    fn read_uncore(&mut self) -> Result<Hertz> {
        let raw = UncoreRatioLimit::decode(self.msr.read(self.lead_cpu, MSR_UNCORE_RATIO_LIMIT)?);
        let (_, hi) = raw.band();
        self.cached_uncore = hi;
        Ok(hi)
    }

    fn set_cap_both(&mut self, w: Watts) -> Result<()> {
        let w = w.max(self.cfg.cap_floor);
        self.capper.set_both(self.socket, w)?;
        // Read back: a backend may clamp (e.g. a cluster budget ceiling).
        self.cached_long = self.capper.limit(self.socket, Constraint::LongTerm)?;
        self.cached_short = self.capper.limit(self.socket, Constraint::ShortTerm)?;
        Ok(())
    }

    fn set_cap_long(&mut self, w: Watts) -> Result<()> {
        self.capper
            .set_limit(self.socket, Constraint::LongTerm, w)?;
        self.cached_long = self.capper.limit(self.socket, Constraint::LongTerm)?;
        Ok(())
    }

    fn set_cap_short(&mut self, w: Watts) -> Result<()> {
        self.capper
            .set_limit(self.socket, Constraint::ShortTerm, w)?;
        self.cached_short = self.capper.limit(self.socket, Constraint::ShortTerm)?;
        Ok(())
    }

    fn reset_cap(&mut self) -> Result<()> {
        // Defaults may move under a cluster budget allocator; refresh them
        // on the reset path so "reset" always means the *current* defaults.
        self.defaults = self.capper.defaults(self.socket)?;
        self.capper.reset(self.socket)?;
        self.cached_long = self.capper.limit(self.socket, Constraint::LongTerm)?;
        self.cached_short = self.capper.limit(self.socket, Constraint::ShortTerm)?;
        Ok(())
    }

    fn cap_long(&self) -> Watts {
        self.cached_long
    }

    fn cap_short(&self) -> Watts {
        self.cached_short
    }

    fn cap_defaults(&self) -> (Watts, Watts) {
        self.defaults
    }

    fn set_core_freq_cap(&mut self, f: Hertz) -> Result<()> {
        let f = Hertz(f.value().clamp(
            self.cfg.core_freq_min.value(),
            self.cfg.core_freq_max.value(),
        ));
        self.msr
            .write(self.lead_cpu, IA32_PERF_CTL, PerfCtl::capped_at(f).encode())?;
        self.cached_freq_cap = f;
        Ok(())
    }

    fn reset_core_freq_cap(&mut self) -> Result<()> {
        self.set_core_freq_cap(self.cfg.core_freq_max)
    }

    fn core_freq_cap(&self) -> Hertz {
        self.cached_freq_cap
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// A pure in-memory actuator set recording every action, for unit
    /// tests of the controller state machines.
    #[derive(Debug, Clone)]
    pub struct MemActuators {
        pub cfg: ControlConfig,
        pub uncore_now: Hertz,
        pub hardware_uncore: Hertz,
        pub long: Watts,
        pub short: Watts,
        pub defaults: (Watts, Watts),
        pub freq_cap: Hertz,
        pub log: Vec<String>,
        /// When set, `read_uncore` reports this instead of the cached value
        /// (models the lingering-cap effect of coupling 2).
        pub uncore_readback_override: Option<Hertz>,
    }

    impl MemActuators {
        pub fn new(cfg: ControlConfig) -> Self {
            let defaults = (Watts(125.0), Watts(150.0));
            MemActuators {
                uncore_now: cfg.uncore_max,
                hardware_uncore: cfg.uncore_max,
                long: defaults.0,
                short: defaults.1,
                defaults,
                freq_cap: cfg.core_freq_max,
                cfg,
                log: Vec::new(),
                uncore_readback_override: None,
            }
        }
    }

    impl Actuators for MemActuators {
        fn set_uncore(&mut self, f: Hertz) -> Result<()> {
            self.uncore_now = f;
            self.hardware_uncore = f;
            self.log.push(format!("uncore={:.1}", f.as_ghz()));
            Ok(())
        }
        fn reset_uncore(&mut self) -> Result<()> {
            self.uncore_now = self.cfg.uncore_max;
            self.hardware_uncore = self.cfg.uncore_max;
            self.log.push("uncore=reset".into());
            Ok(())
        }
        fn uncore(&self) -> Hertz {
            self.uncore_now
        }
        fn read_uncore(&mut self) -> Result<Hertz> {
            let v = self
                .uncore_readback_override
                .unwrap_or(self.hardware_uncore);
            self.uncore_now = v;
            Ok(v)
        }
        fn set_cap_both(&mut self, w: Watts) -> Result<()> {
            let w = w.max(self.cfg.cap_floor);
            self.long = w;
            self.short = w;
            self.log.push(format!("cap_both={:.0}", w.value()));
            Ok(())
        }
        fn set_cap_long(&mut self, w: Watts) -> Result<()> {
            self.long = w;
            self.log.push(format!("cap_long={:.0}", w.value()));
            Ok(())
        }
        fn set_cap_short(&mut self, w: Watts) -> Result<()> {
            self.short = w;
            self.log.push(format!("cap_short={:.0}", w.value()));
            Ok(())
        }
        fn reset_cap(&mut self) -> Result<()> {
            self.long = self.defaults.0;
            self.short = self.defaults.1;
            self.log.push("cap=reset".into());
            Ok(())
        }
        fn cap_long(&self) -> Watts {
            self.long
        }
        fn cap_short(&self) -> Watts {
            self.short
        }
        fn cap_defaults(&self) -> (Watts, Watts) {
            self.defaults
        }
        fn set_core_freq_cap(&mut self, f: Hertz) -> Result<()> {
            self.freq_cap = Hertz(f.value().clamp(
                self.cfg.core_freq_min.value(),
                self.cfg.core_freq_max.value(),
            ));
            self.log
                .push(format!("freq_cap={:.1}", self.freq_cap.as_ghz()));
            Ok(())
        }
        fn reset_core_freq_cap(&mut self) -> Result<()> {
            self.freq_cap = self.cfg.core_freq_max;
            self.log.push("freq_cap=reset".into());
            Ok(())
        }
        fn core_freq_cap(&self) -> Hertz {
            self.freq_cap
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dufp_msr::registers::{
        PkgPowerLimit, RaplPowerUnit, MSR_PKG_POWER_LIMIT, MSR_RAPL_POWER_UNIT,
        SKYLAKE_SP_POWER_UNIT_RAW,
    };
    use dufp_msr::FakeMsr;
    use dufp_rapl::MsrRapl;
    use dufp_types::{ArchSpec, Ratio, Seconds};
    use std::sync::Arc;

    fn rig() -> HwActuators<Arc<FakeMsr>, MsrRapl<Arc<FakeMsr>>> {
        let msr = Arc::new(FakeMsr::new(32));
        msr.seed(MSR_RAPL_POWER_UNIT, SKYLAKE_SP_POWER_UNIT_RAW);
        let units = RaplPowerUnit::skylake_sp();
        let reg = PkgPowerLimit::defaults(Watts(125.0), Seconds(1.0), Watts(150.0), Seconds(0.01));
        msr.seed(MSR_PKG_POWER_LIMIT, reg.encode(&units).unwrap());
        let arch = ArchSpec::yeti();
        let default_band = UncoreRatioLimit {
            max_ratio: arch.uncore_freq_max.as_ratio_100mhz(),
            min_ratio: arch.uncore_freq_min.as_ratio_100mhz(),
        };
        msr.seed(MSR_UNCORE_RATIO_LIMIT, default_band.encode());
        let capper = MsrRapl::new(Arc::clone(&msr), 2, 16).unwrap();
        let cfg = ControlConfig::from_arch(&arch, Ratio::from_percent(5.0)).unwrap();
        HwActuators::new(msr, capper, SocketId(1), 16, cfg).unwrap()
    }

    #[test]
    fn uncore_pin_writes_through_and_caches() {
        let mut a = rig();
        assert_eq!(a.uncore(), Hertz::from_ghz(2.4));
        a.set_uncore(Hertz::from_ghz(1.7)).unwrap();
        assert_eq!(a.uncore(), Hertz::from_ghz(1.7));
        assert_eq!(a.read_uncore().unwrap(), Hertz::from_ghz(1.7));
        a.reset_uncore().unwrap();
        assert_eq!(a.uncore(), Hertz::from_ghz(2.4));
    }

    #[test]
    fn uncore_pin_clamps_to_ladder_range() {
        let mut a = rig();
        a.set_uncore(Hertz::from_ghz(9.0)).unwrap();
        assert_eq!(a.uncore(), Hertz::from_ghz(2.4));
        a.set_uncore(Hertz::from_ghz(0.1)).unwrap();
        assert_eq!(a.uncore(), Hertz::from_ghz(1.2));
    }

    #[test]
    fn cap_both_floors_at_65w() {
        let mut a = rig();
        a.set_cap_both(Watts(40.0)).unwrap();
        assert_eq!(a.cap_long(), Watts(65.0));
        assert_eq!(a.cap_short(), Watts(65.0));
    }

    #[test]
    fn cap_reset_restores_defaults() {
        let mut a = rig();
        a.set_cap_both(Watts(90.0)).unwrap();
        a.reset_cap().unwrap();
        assert_eq!(a.cap_long(), Watts(125.0));
        assert_eq!(a.cap_short(), Watts(150.0));
        assert_eq!(a.cap_defaults(), (Watts(125.0), Watts(150.0)));
    }

    #[test]
    fn short_and_long_move_independently() {
        let mut a = rig();
        a.set_cap_long(Watts(110.0)).unwrap();
        a.set_cap_short(Watts(120.0)).unwrap();
        assert_eq!(a.cap_long(), Watts(110.0));
        assert_eq!(a.cap_short(), Watts(120.0));
    }
}
