//! Trace-driven datacenter scenario engine.
//!
//! The paper evaluates its controllers one machine and one application at
//! a time. This crate asks the fleet-scale question the roadmap's
//! "datacenter scenarios" item poses: *how much energy do uncore scaling
//! and dynamic power capping save across a heterogeneous, co-tenant fleet
//! under realistic, time-varying load — and at what SLO cost?*
//!
//! Three pieces compose, each a pure function of its seed:
//!
//! * [`arrival`] — request-arrival models (diurnal curves, Poisson
//!   bursts, flash crowds) that modulate every node's offered load over
//!   virtual time,
//! * [`spec`] — typed, validated scenario specifications: machine
//!   classes (including GPU-style nodes whose uncore transfer function is
//!   nearly flat), nodes, co-tenant mixes and a global power budget, all
//!   parsed from a TOML subset with line/field-level errors,
//! * [`engine`] — the virtual-clock fleet run: per-node
//!   [`dufp_sim::SharedSocketSim`] co-tenant physics, a real
//!   [`dufp_net::FleetCore`] allocator redistributing the global budget
//!   each epoch, and a fleet-wide energy-saved vs. SLO-violation
//!   scorecard that is byte-identical for equal seeds.

#![warn(missing_docs)]

pub mod arrival;
pub mod engine;
pub mod spec;

pub use arrival::{intensity_band, ArrivalKind, ArrivalSpec, LoadProfile, MAX_INTENSITY};
pub use engine::{
    run_one, run_rows, to_jsonl_bytes, NodeScore, PolicyChoice, RunResult, ScorecardRow,
    TenantScore,
};
pub use spec::{MachineClass, MachineKind, NodeSpec, ScenarioSpec, EXAMPLE_TOML};
