//! The scenario engine: a virtual-clock fleet run producing a scorecard.
//!
//! One run wires three existing layers together without any transport:
//!
//! * each node is a [`dufp_sim::SharedSocketSim`] built from its machine
//!   class, co-scheduling its tenants' weight-scaled phase tables,
//! * the arrival model ([`crate::LoadProfile`]) modulates every node's
//!   offered load over virtual time,
//! * a [`dufp_net::FleetCore`] plays coordinator on the same virtual
//!   clock: nodes report demand each allocator epoch, the core runs its
//!   real allocator policy ([`dufp_net::PolicyKind`]) against the global
//!   budget and its grants move the nodes' RAPL ceilings.
//!
//! Everything is a pure function of `(spec, seed, policy)`: the scorecard
//! JSON — and the decision trace — are byte-identical across reruns and
//! across `--jobs 1` vs `--jobs N`.

use crate::arrival::{intensity_band, LoadProfile};
use crate::spec::ScenarioSpec;
use dufp_net::{CoordinatorConfig, FleetCore, Frame, GrantKind, PolicyKind};
use dufp_sim::SharedSocketSim;
use dufp_telemetry::{Actuator, DecisionEvent, Reason, Telemetry};
use dufp_types::{Error, Result, Seconds, Watts};
use dufp_workloads::cache;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// Physics sub-steps per control interval (finer than the 200 ms control
/// cadence so cap-enforcer dynamics stay smooth).
const SUBSTEPS: u32 = 5;

/// Which fleet budget regime a scenario run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyChoice {
    /// No coordinator: every node runs at PL1 (the comparison baseline).
    Uncapped,
    /// [`PolicyKind::StaticSplit`] under the global budget.
    StaticSplit,
    /// [`PolicyKind::DemandBased`] under the global budget.
    DemandBased,
}

impl PolicyChoice {
    /// Scorecard label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyChoice::Uncapped => "uncapped",
            PolicyChoice::StaticSplit => "static-split",
            PolicyChoice::DemandBased => "demand-based",
        }
    }

    /// The allocator policy to run, `None` for the uncapped baseline.
    pub fn kind(self) -> Option<PolicyKind> {
        match self {
            PolicyChoice::Uncapped => None,
            PolicyChoice::StaticSplit => Some(PolicyKind::StaticSplit),
            PolicyChoice::DemandBased => Some(PolicyKind::DemandBased),
        }
    }

    /// Parses a CLI label.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "uncapped" => Ok(PolicyChoice::Uncapped),
            "static-split" | "static" => Ok(PolicyChoice::StaticSplit),
            "demand-based" | "demand" => Ok(PolicyChoice::DemandBased),
            other => Err(Error::invalid(
                "policy",
                format!(
                    "unknown policy {other:?} (expected uncapped, static-split or demand-based)"
                ),
            )),
        }
    }
}

/// Per-tenant slice of a node's scorecard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantScore {
    /// Tenant (application) name.
    pub tenant: String,
    /// Package energy attributed to this tenant (J).
    pub energy_j: f64,
    /// FLOPs served.
    pub flops: f64,
    /// Work units offered by the arrival process.
    pub offered_units: f64,
    /// Work units served.
    pub served_units: f64,
    /// Tenant-intervals over the backlog threshold.
    pub slo_violations: u64,
}

/// Per-node slice of the scorecard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeScore {
    /// Node id from the spec.
    pub node: String,
    /// Machine-class id the node instantiates.
    pub machine: String,
    /// Package energy over the run (J).
    pub energy_j: f64,
    /// DRAM energy over the run (J, measurement-only).
    pub dram_energy_j: f64,
    /// Mean package power (W).
    pub avg_power_w: f64,
    /// Sum of the node's tenants' violations.
    pub slo_violations: u64,
    /// Per-tenant accounting.
    pub tenants: Vec<TenantScore>,
}

/// The fleet-wide outcome of one `(spec, seed, policy)` run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScorecardRow {
    /// Scenario name.
    pub scenario: String,
    /// Allocator policy label (`uncapped`, `static-split`, `demand-based`).
    pub policy: String,
    /// Seed the run replayed.
    pub seed: u64,
    /// Global fleet budget (W).
    pub budget_w: f64,
    /// Virtual duration (s).
    pub duration_s: f64,
    /// Control intervals executed.
    pub intervals: u64,
    /// Fleet package energy (J).
    pub fleet_energy_j: f64,
    /// Package energy of the uncapped baseline run (J).
    pub baseline_energy_j: f64,
    /// Energy saved vs. the uncapped baseline (%; positive = saved).
    pub energy_saved_pct: f64,
    /// Tenant-intervals over the backlog threshold.
    pub slo_violations: u64,
    /// Total tenant-intervals (the denominator).
    pub slo_total: u64,
    /// `slo_violations / slo_total` (%).
    pub slo_violation_pct: f64,
    /// The baseline's violation count (capping is judged on the delta).
    pub baseline_slo_violations: u64,
    /// Budget-grant raises delivered.
    pub grants: u64,
    /// Budget-grant shrinks delivered.
    pub shrinks: u64,
    /// True iff every step's per-tenant energy summed exactly to the
    /// socket energy (bit-exact attribution invariant).
    pub conservation_ok: bool,
    /// Per-node breakdown.
    pub nodes: Vec<NodeScore>,
}

/// A finished run: the scorecard plus its decision trace.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The scorecard (baseline fields are filled by [`run_rows`]).
    pub row: ScorecardRow,
    /// Decision events in emission order (intensity shifts, SLO
    /// violations, budget grants).
    pub events: Vec<DecisionEvent>,
}

/// Runs one `(spec, seed, policy)` scenario to completion.
///
/// The spec must already be validated ([`ScenarioSpec::validate`]); this
/// revalidates defensively so a hand-built spec cannot bypass the typed
/// field errors.
pub fn run_one(spec: &ScenarioSpec, seed: u64, policy: PolicyChoice) -> Result<RunResult> {
    spec.validate()?;
    let tel = Telemetry::enabled();
    let dt = spec.interval_ms as f64 / 1000.0;
    let intervals = (spec.duration_s / dt).ceil() as u64;
    let sub_dt = Seconds(dt / f64::from(SUBSTEPS));

    // Build the fleet: one shared socket per node, tenants weight-scaled.
    let mut sims: Vec<SharedSocketSim> = Vec::with_capacity(spec.nodes.len());
    let mut machines: Vec<String> = Vec::with_capacity(spec.nodes.len());
    for node in &spec.nodes {
        let class = spec
            .class_of(node)
            .expect("validated spec resolves machines");
        let ctx = class.materialize_ctx();
        let weights = ScenarioSpec::weights_of(node);
        let mut tenants = Vec::with_capacity(node.tenants.len());
        for (app, w) in node.tenants.iter().zip(&weights) {
            let table = cache::shared_by_name(app, &ctx)?;
            tenants.push((app.clone(), Arc::new(table.scaled(*w)?)));
        }
        sims.push(SharedSocketSim::new(class.shared_cfg(), tenants)?);
        machines.push(class.id.clone());
    }

    // The coordinator, when the policy caps at all. Nodes start at their
    // class floor (an agent enforces its floor until the first grant).
    let mut core = match policy.kind() {
        None => None,
        Some(kind) => {
            let mut cfg = CoordinatorConfig::new("scenario:virtual", Watts(spec.budget_w))
                .with_epoch(Duration::from_millis(
                    spec.interval_ms * u64::from(spec.epoch_intervals),
                ));
            cfg.policy = kind;
            cfg.floor = Watts(
                sims.iter()
                    .map(|s| s.cfg().cap_floor.value())
                    .fold(f64::INFINITY, f64::min),
            );
            cfg.node_max = Watts(sims.iter().map(|s| s.cfg().pl1.value()).fold(0.0, f64::max));
            cfg.validate()?;
            let mut core = FleetCore::new(&cfg, Telemetry::disabled());
            for (i, (node, sim)) in spec.nodes.iter().zip(&mut sims).enumerate() {
                let floor = sim.cfg().cap_floor;
                let pl1 = sim.cfg().pl1;
                let slot = core.admit(node.id.clone(), node.tenants.join("+"), floor, pl1, 0)?;
                debug_assert_eq!(slot, i, "slots are admission-ordered");
                sim.set_ceiling(floor);
            }
            Some(core)
        }
    };

    let profile = LoadProfile::new(&spec.arrival, seed, spec.duration_s);
    let mut bands: Vec<u8> = vec![u8::MAX; spec.nodes.len()];
    let mut epoch_energy: Vec<f64> = vec![0.0; spec.nodes.len()];
    let mut node_energy: Vec<f64> = vec![0.0; spec.nodes.len()];
    let mut node_dram: Vec<f64> = vec![0.0; spec.nodes.len()];
    let mut tenant_viol: Vec<Vec<u64>> = spec
        .nodes
        .iter()
        .map(|n| vec![0u64; n.tenants.len()])
        .collect();
    let mut grants = 0u64;
    let mut shrinks = 0u64;
    let mut conservation_ok = true;

    for tick in 0..intervals {
        let t = tick as f64 * dt;
        let now_ms = tick * spec.interval_ms;

        // Arrival model → per-node offered load (+ IntensityShift events).
        for (i, sim) in sims.iter_mut().enumerate() {
            let v = profile.intensity(t, i as f64 * spec.arrival.node_stagger_s);
            let band = intensity_band(v);
            if bands[i] != band {
                if bands[i] != u8::MAX {
                    tel.record_decision(event(
                        tick,
                        now_ms,
                        i,
                        Actuator::Budget,
                        f64::from(bands[i]),
                        f64::from(band),
                        Reason::IntensityShift,
                    ));
                }
                bands[i] = band;
            }
            for j in 0..sim.tenant_count() {
                sim.set_intensity(j, v);
            }
            tel.gauge(&format!("scenario.node{i}.intensity")).set(v);
        }

        // Physics. `step_fast` self-gates: it fast-forwards through cached
        // idle fixed points and falls back to the full (oracle) step the
        // moment any tenant has backlog or offered load, so the scenario
        // trace is bit-identical to per-step evaluation either way.
        for (i, sim) in sims.iter_mut().enumerate() {
            for _ in 0..SUBSTEPS {
                let step = sim.step_fast(sub_dt);
                let attributed: f64 = step.tenant_energy_j.iter().sum();
                conservation_ok &= attributed == step.pkg_energy_j;
                node_energy[i] += step.pkg_energy_j;
                node_dram[i] += step.dram_energy_j;
                epoch_energy[i] += step.pkg_energy_j;
            }
        }

        // SLO bookkeeping.
        for (i, sim) in sims.iter().enumerate() {
            for (j, viol) in tenant_viol[i].iter_mut().enumerate() {
                let backlog = sim.backlog_seconds(j);
                tel.gauge(&format!("scenario.node{i}.tenant{j}.backlog_s"))
                    .set(backlog);
                tel.gauge(&format!("scenario.node{i}.tenant{j}.energy_j"))
                    .set(sim.account(j).energy_j);
                if backlog > spec.slo_backlog_s {
                    *viol += 1;
                    tel.record_decision(event(
                        tick,
                        now_ms,
                        i,
                        Actuator::Budget,
                        backlog,
                        spec.slo_backlog_s,
                        Reason::SloViolation,
                    ));
                }
            }
        }

        // Allocator epoch: demand reports in, budget grants out.
        if let Some(core) = core.as_mut() {
            if (tick + 1) % u64::from(spec.epoch_intervals) == 0 {
                let epoch_s = dt * f64::from(spec.epoch_intervals);
                for (i, sim) in sims.iter().enumerate() {
                    let avg = Watts(epoch_energy[i] / epoch_s);
                    core.on_report(i, tick, sim.ceiling(), avg, sim.has_backlog(), now_ms);
                    epoch_energy[i] = 0.0;
                }
                let step = core.epoch_once(now_ms);
                for (slot, frame) in step.grants {
                    if let Frame::BudgetGrant { ceiling, kind, .. } = frame {
                        let old = sims[slot].ceiling();
                        sims[slot].set_ceiling(ceiling);
                        match kind {
                            GrantKind::Raise => grants += 1,
                            GrantKind::Shrink => shrinks += 1,
                        }
                        tel.record_decision(event(
                            tick,
                            now_ms,
                            slot,
                            Actuator::Budget,
                            old.value(),
                            ceiling.value(),
                            Reason::BudgetGrant,
                        ));
                    }
                }
            }
        }
    }

    // Assemble the scorecard.
    let mut nodes = Vec::with_capacity(spec.nodes.len());
    for (i, (node, sim)) in spec.nodes.iter().zip(&sims).enumerate() {
        let mut tenants = Vec::with_capacity(node.tenants.len());
        for (j, app) in node.tenants.iter().enumerate() {
            let acct = sim.account(j);
            tenants.push(TenantScore {
                tenant: app.clone(),
                energy_j: acct.energy_j,
                flops: acct.flops,
                offered_units: acct.offered_units,
                served_units: acct.served_units,
                slo_violations: tenant_viol[i][j],
            });
        }
        nodes.push(NodeScore {
            node: node.id.clone(),
            machine: machines[i].clone(),
            energy_j: node_energy[i],
            dram_energy_j: node_dram[i],
            avg_power_w: node_energy[i] / spec.duration_s.max(1e-9),
            slo_violations: tenant_viol[i].iter().sum(),
            tenants,
        });
    }
    let fleet_energy_j: f64 = node_energy.iter().sum();
    let slo_violations: u64 = nodes.iter().map(|n| n.slo_violations).sum();
    let slo_total = intervals * spec.tenant_count() as u64;
    let row = ScorecardRow {
        scenario: spec.name.clone(),
        policy: policy.label().to_string(),
        seed,
        budget_w: spec.budget_w,
        duration_s: spec.duration_s,
        intervals,
        fleet_energy_j,
        baseline_energy_j: fleet_energy_j,
        energy_saved_pct: 0.0,
        slo_violations,
        slo_total,
        slo_violation_pct: 100.0 * slo_violations as f64 / (slo_total as f64).max(1.0),
        baseline_slo_violations: slo_violations,
        grants,
        shrinks,
        conservation_ok,
        nodes,
    };
    Ok(RunResult {
        row,
        events: tel.drain_events(),
    })
}

fn event(
    tick: u64,
    now_ms: u64,
    node: usize,
    actuator: Actuator,
    old: f64,
    new: f64,
    reason: Reason,
) -> DecisionEvent {
    DecisionEvent {
        tick,
        at_us: now_ms * 1000,
        socket: node as u16,
        phase: 0,
        oi_class: None,
        flops_ratio: None,
        actuator,
        old,
        new,
        reason,
    }
}

/// Runs the uncapped baseline plus every requested policy, in a bounded
/// rayon pool, and returns scorecard rows in the requested order with the
/// baseline comparison filled in. Deterministic: rows are merged by index,
/// so `jobs = 1` and `jobs = N` produce byte-identical output.
pub fn run_rows(
    spec: &ScenarioSpec,
    seed: u64,
    policies: &[PolicyChoice],
    jobs: usize,
) -> Result<Vec<ScorecardRow>> {
    if jobs == 0 {
        return Err(Error::invalid("jobs", "must be >= 1"));
    }
    if policies.is_empty() {
        return Err(Error::invalid("policies", "need at least one policy"));
    }
    spec.validate()?;

    // The baseline runs first, serially: every row is scored against it.
    let baseline = run_one(spec, seed, PolicyChoice::Uncapped)?;

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(jobs)
        .build()
        .map_err(|e| Error::invalid("jobs", e.to_string()))?;
    let indexed: Vec<(usize, PolicyChoice)> = policies.iter().copied().enumerate().collect();
    let mut results: Vec<(usize, ScorecardRow)> = pool.install(|| {
        use rayon::prelude::*;
        indexed
            .into_par_iter()
            .map(|(idx, policy)| {
                let row = if policy == PolicyChoice::Uncapped {
                    baseline.row.clone()
                } else {
                    run_one(spec, seed, policy)?.row
                };
                Ok((idx, row))
            })
            .collect::<Result<Vec<_>>>()
    })?;
    results.sort_by_key(|(idx, _)| *idx);

    let mut rows = Vec::with_capacity(results.len());
    for (idx, mut row) in results {
        debug_assert_eq!(idx, rows.len(), "index-ordered merge");
        row.baseline_energy_j = baseline.row.fleet_energy_j;
        row.baseline_slo_violations = baseline.row.slo_violations;
        row.energy_saved_pct = if baseline.row.fleet_energy_j > 0.0 {
            100.0 * (baseline.row.fleet_energy_j - row.fleet_energy_j) / baseline.row.fleet_energy_j
        } else {
            0.0
        };
        rows.push(row);
    }
    Ok(rows)
}

/// Serializes rows as JSON Lines — the byte-identity unit the CLI, the
/// golden test and CI's double-run `cmp` all compare.
pub fn to_jsonl_bytes(rows: &[ScorecardRow]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    for row in rows {
        let line =
            serde_json::to_string(row).map_err(|e| Error::invalid("scorecard", e.to_string()))?;
        out.extend_from_slice(line.as_bytes());
        out.push(b'\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini() -> ScenarioSpec {
        ScenarioSpec::mini()
    }

    #[test]
    fn run_one_is_finite_and_conserves() {
        let r = run_one(&mini(), 42, PolicyChoice::DemandBased).unwrap();
        assert!(r.row.fleet_energy_j.is_finite() && r.row.fleet_energy_j > 0.0);
        assert!(r.row.conservation_ok, "exact attribution must hold");
        assert_eq!(r.row.intervals, 120);
        assert_eq!(r.row.slo_total, 120 * 3);
        assert!(!r.events.is_empty(), "intensity shifts must be traced");
    }

    #[test]
    fn capped_policies_save_energy_vs_baseline() {
        let rows = run_rows(
            &mini(),
            7,
            &[PolicyChoice::Uncapped, PolicyChoice::DemandBased],
            1,
        )
        .unwrap();
        assert_eq!(rows[0].policy, "uncapped");
        assert_eq!(rows[0].energy_saved_pct, 0.0);
        assert!(
            rows[1].energy_saved_pct > 0.0,
            "budget {} W must save energy: {:?}",
            rows[1].budget_w,
            rows[1].energy_saved_pct
        );
    }

    #[test]
    fn rows_are_byte_identical_across_jobs() {
        let policies = [
            PolicyChoice::Uncapped,
            PolicyChoice::StaticSplit,
            PolicyChoice::DemandBased,
        ];
        let a = to_jsonl_bytes(&run_rows(&mini(), 3, &policies, 1).unwrap()).unwrap();
        let b = to_jsonl_bytes(&run_rows(&mini(), 3, &policies, 4).unwrap()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let p = [PolicyChoice::DemandBased];
        let a = to_jsonl_bytes(&run_rows(&mini(), 1, &p, 1).unwrap()).unwrap();
        let b = to_jsonl_bytes(&run_rows(&mini(), 2, &p, 1).unwrap()).unwrap();
        assert_ne!(a, b, "bursty arrivals must make seeds observable");
    }

    #[test]
    fn grants_flow_under_capped_policies() {
        let r = run_one(&mini(), 11, PolicyChoice::DemandBased).unwrap();
        assert!(r.row.grants > 0, "the allocator must grant at least once");
        assert!(r
            .events
            .iter()
            .any(|e| e.reason == Reason::BudgetGrant && e.actuator == Actuator::Budget));
    }

    #[test]
    fn zero_jobs_rejected() {
        assert!(run_rows(&mini(), 1, &[PolicyChoice::Uncapped], 0).is_err());
    }
}
