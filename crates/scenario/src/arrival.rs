//! Request-arrival models: how offered load moves over virtual time.
//!
//! A [`LoadProfile`] is a *pure function of (spec, seed, t)*: the Poisson
//! burst schedule is precomputed from a SplitMix64 stream at construction,
//! so replaying the same seed gives bit-equal intensity trajectories — the
//! foundation of the scenario engine's byte-identical scorecards.
//!
//! Three ingredients compose additively, then clamp to `[0, MAX]`:
//!
//! * a **base curve** — flat, or a diurnal cosine between `trough` and
//!   `peak` (per-node phase offsets model geo-staggered fleets),
//! * **Poisson bursts** — fleet-wide load spikes with exponential
//!   inter-arrival times at `bursts_per_hour`,
//! * a **flash crowd** — one scheduled spike decaying exponentially
//!   (a product launch, a breaking-news moment).

use serde::{Deserialize, Serialize};

/// Hard ceiling on composed intensity: 8× the design-point load.
pub const MAX_INTENSITY: f64 = 8.0;

/// Which base curve the profile follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalKind {
    /// Flat offered load at [`ArrivalSpec::base`].
    Constant,
    /// Cosine day/night curve between `trough` and `peak`.
    Diurnal,
}

/// Declarative arrival-model parameters (the `[arrival]` spec section).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalSpec {
    /// Base curve shape.
    pub kind: ArrivalKind,
    /// Flat intensity for [`ArrivalKind::Constant`].
    pub base: f64,
    /// Diurnal period in virtual seconds (a compressed "day").
    pub period_s: f64,
    /// Diurnal peak intensity (1.0 = design-point load).
    pub peak: f64,
    /// Diurnal trough intensity.
    pub trough: f64,
    /// Mean Poisson burst rate (0 disables bursts).
    pub bursts_per_hour: f64,
    /// Additive intensity during a burst.
    pub burst_intensity: f64,
    /// Burst duration in seconds.
    pub burst_duration_s: f64,
    /// Flash-crowd onset time (None disables it).
    pub flash_at_s: Option<f64>,
    /// Flash-crowd peak additive intensity.
    pub flash_magnitude: f64,
    /// Flash-crowd exponential decay constant.
    pub flash_decay_s: f64,
    /// Per-node diurnal phase offset (node `i` is shifted by
    /// `i × node_stagger_s`), modelling geo-distributed fleets.
    pub node_stagger_s: f64,
}

impl Default for ArrivalSpec {
    fn default() -> Self {
        ArrivalSpec {
            kind: ArrivalKind::Diurnal,
            base: 0.6,
            period_s: 60.0,
            peak: 1.0,
            trough: 0.3,
            bursts_per_hour: 0.0,
            burst_intensity: 0.5,
            burst_duration_s: 3.0,
            flash_at_s: None,
            flash_magnitude: 1.0,
            flash_decay_s: 10.0,
            node_stagger_s: 0.0,
        }
    }
}

/// SplitMix64 — the same tiny deterministic stream the chaos harness
/// seeds its scenarios with.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A materialized, replayable intensity function.
#[derive(Debug, Clone)]
pub struct LoadProfile {
    spec: ArrivalSpec,
    /// Precomputed fleet-wide burst windows `(start, end)`.
    bursts: Vec<(f64, f64)>,
}

impl LoadProfile {
    /// Builds the profile for a run of `horizon_s` virtual seconds. The
    /// burst schedule is drawn once from `seed` by inverse-CDF sampling of
    /// exponential inter-arrival gaps.
    pub fn new(spec: &ArrivalSpec, seed: u64, horizon_s: f64) -> Self {
        let mut bursts = Vec::new();
        let rate_per_s = spec.bursts_per_hour / 3600.0;
        if rate_per_s > 0.0 && spec.burst_duration_s > 0.0 {
            let mut rng = seed ^ 0xA5A5_5A5A_C3C3_3C3C;
            let mut t = 0.0;
            while t < horizon_s && bursts.len() < 4096 {
                let u = unit_f64(&mut rng).max(1e-12);
                t += -u.ln() / rate_per_s;
                if t < horizon_s {
                    bursts.push((t, t + spec.burst_duration_s));
                }
            }
        }
        LoadProfile {
            spec: spec.clone(),
            bursts,
        }
    }

    /// Intensity at virtual time `t_s` for a node whose diurnal phase is
    /// shifted by `node_offset_s`. Pure and total: any finite `t_s` maps
    /// to `[0, MAX_INTENSITY]`.
    pub fn intensity(&self, t_s: f64, node_offset_s: f64) -> f64 {
        let s = &self.spec;
        let mut v = match s.kind {
            ArrivalKind::Constant => s.base,
            ArrivalKind::Diurnal => {
                let phase = std::f64::consts::TAU * (t_s + node_offset_s) / s.period_s.max(1e-9);
                s.trough + (s.peak - s.trough) * 0.5 * (1.0 - phase.cos())
            }
        };
        // Bursts and flash crowds are fleet-wide events on absolute time.
        if self.bursts.iter().any(|&(a, b)| t_s >= a && t_s < b) {
            v += s.burst_intensity;
        }
        if let Some(at) = s.flash_at_s {
            if t_s >= at {
                v += s.flash_magnitude * (-(t_s - at) / s.flash_decay_s.max(1e-9)).exp();
            }
        }
        v.clamp(0.0, MAX_INTENSITY)
    }

    /// Number of scheduled burst windows (for reports).
    pub fn burst_count(&self) -> usize {
        self.bursts.len()
    }
}

/// Quarter-intensity band ordinal, the unit [`IntensityShift`] events are
/// reported in (0 = idle, 4 = design-point, 8 = 2× design-point).
///
/// [`IntensityShift`]: dufp_telemetry::Reason::IntensityShift
pub fn intensity_band(intensity: f64) -> u8 {
    (intensity.clamp(0.0, MAX_INTENSITY) * 4.0).floor() as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile_is_flat() {
        let spec = ArrivalSpec {
            kind: ArrivalKind::Constant,
            base: 0.7,
            bursts_per_hour: 0.0,
            flash_at_s: None,
            ..ArrivalSpec::default()
        };
        let p = LoadProfile::new(&spec, 1, 100.0);
        for t in 0..100 {
            assert_eq!(p.intensity(t as f64, 0.0), 0.7);
        }
    }

    #[test]
    fn diurnal_hits_trough_and_peak() {
        let spec = ArrivalSpec::default();
        let p = LoadProfile::new(&spec, 1, 100.0);
        assert!((p.intensity(0.0, 0.0) - spec.trough).abs() < 1e-9);
        assert!((p.intensity(spec.period_s / 2.0, 0.0) - spec.peak).abs() < 1e-9);
    }

    #[test]
    fn stagger_shifts_the_curve() {
        let spec = ArrivalSpec::default();
        let p = LoadProfile::new(&spec, 1, 100.0);
        let half = spec.period_s / 2.0;
        assert!((p.intensity(0.0, half) - spec.peak).abs() < 1e-9);
    }

    #[test]
    fn burst_schedule_is_seed_deterministic_and_seed_sensitive() {
        let spec = ArrivalSpec {
            bursts_per_hour: 600.0,
            ..ArrivalSpec::default()
        };
        let a = LoadProfile::new(&spec, 7, 600.0);
        let b = LoadProfile::new(&spec, 7, 600.0);
        let c = LoadProfile::new(&spec, 8, 600.0);
        assert_eq!(a.bursts, b.bursts);
        assert!(a.burst_count() > 0);
        assert_ne!(a.bursts, c.bursts);
    }

    #[test]
    fn flash_crowd_decays() {
        let spec = ArrivalSpec {
            kind: ArrivalKind::Constant,
            base: 0.2,
            flash_at_s: Some(10.0),
            flash_magnitude: 1.0,
            flash_decay_s: 5.0,
            ..ArrivalSpec::default()
        };
        let p = LoadProfile::new(&spec, 1, 100.0);
        assert_eq!(p.intensity(9.9, 0.0), 0.2);
        assert!((p.intensity(10.0, 0.0) - 1.2).abs() < 1e-9);
        assert!(p.intensity(30.0, 0.0) < 0.25);
    }

    #[test]
    fn intensity_always_in_range() {
        let spec = ArrivalSpec {
            peak: 100.0,
            flash_at_s: Some(0.0),
            flash_magnitude: 100.0,
            ..ArrivalSpec::default()
        };
        let p = LoadProfile::new(&spec, 3, 100.0);
        for t in 0..1000 {
            let v = p.intensity(t as f64 * 0.1, 0.0);
            assert!((0.0..=MAX_INTENSITY).contains(&v));
        }
    }

    #[test]
    fn bands_quantize_quarters() {
        assert_eq!(intensity_band(0.0), 0);
        assert_eq!(intensity_band(0.26), 1);
        assert_eq!(intensity_band(1.0), 4);
        assert_eq!(intensity_band(2.1), 8);
    }
}
