//! Typed, validated scenario specifications and their TOML-subset parser.
//!
//! A scenario spec is the one file that describes a whole datacenter
//! experiment: the global budget, the arrival model, the machine classes
//! (including GPU-style nodes with their own uncore transfer functions)
//! and the node → tenant topology. Like the PR-5 sweep-grid parser, the
//! parser is a hand-rolled TOML subset that reports *line numbers* for
//! syntax errors and *field paths* for semantic ones — a spec typo fails
//! in milliseconds with a pointed message, not twenty virtual minutes into
//! a fleet run.
//!
//! Supported syntax: `[scenario]`, `[arrival]`, `[machine.<id>]` and
//! `[node.<id>]` sections of `key = value` lines, where values are
//! double-quoted strings, numbers, string arrays or number arrays.
//! Comments (`#`) and blank lines are ignored.

use crate::arrival::{ArrivalKind, ArrivalSpec};
use dufp_sim::SharedSocketCfg;
use dufp_types::{ArchSpec, BytesPerSec, Error, FlopsPerSec, Hertz, Result, Seconds, Watts};
use dufp_workloads::MaterializeCtx;
use serde::{Deserialize, Serialize};

/// Hardware personality of a machine class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MachineKind {
    /// The paper's Xeon Gold 6130 package (Table I).
    Yeti,
    /// A small synthetic CPU node (fast tests).
    Tiny,
    /// A GPU-style node: HBM-class bandwidth behind a nearly *flat*
    /// uncore transfer function — lowering the uncore barely costs
    /// bandwidth, so uncore scaling behaves completely differently than
    /// on the CPU classes (arxiv 2502.03796's core observation).
    GpuHbm,
}

impl MachineKind {
    fn parse(s: &str) -> std::result::Result<Self, String> {
        match s {
            "yeti" => Ok(MachineKind::Yeti),
            "tiny" => Ok(MachineKind::Tiny),
            "gpu-hbm" | "gpu" => Ok(MachineKind::GpuHbm),
            other => Err(format!(
                "unknown machine kind {other:?} (expected yeti, tiny or gpu-hbm)"
            )),
        }
    }

    /// Label used in scorecards.
    pub fn label(self) -> &'static str {
        match self {
            MachineKind::Yeti => "yeti",
            MachineKind::Tiny => "tiny",
            MachineKind::GpuHbm => "gpu-hbm",
        }
    }
}

/// A synthetic GPU-style node description: one big package, many small
/// compute units, HBM-class bandwidth, a high power envelope.
fn gpu_hbm_arch() -> ArchSpec {
    ArchSpec {
        name: "gpu-hbm (synthetic)".to_owned(),
        microarch: "HBM accelerator".to_owned(),
        sockets: 1,
        cores_per_socket: 32,
        core_freq_min: Hertz::from_ghz(0.8),
        core_freq_base: Hertz::from_ghz(1.4),
        core_freq_max: Hertz::from_ghz(1.8),
        core_freq_step: Hertz::from_mhz(100.0),
        uncore_freq_min: Hertz::from_ghz(0.8),
        uncore_freq_max: Hertz::from_ghz(1.6),
        uncore_freq_step: Hertz::from_mhz(100.0),
        pl1_default: Watts(250.0),
        pl2_default: Watts(300.0),
        pl1_window: Seconds(1.0),
        pl2_window: Seconds(0.01),
        cap_step: Watts(10.0),
        cap_floor: Watts(100.0),
        peak_bandwidth: BytesPerSec::from_gib(800.0),
        peak_flops: FlopsPerSec::from_gflops(7000.0),
    }
}

/// One machine class: a kind plus optional per-spec physics overrides.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineClass {
    /// Spec-local identifier nodes refer to.
    pub id: String,
    /// Hardware personality.
    pub kind: MachineKind,
    /// Override: bandwidth knee frequency (GHz).
    pub uncore_knee_ghz: Option<f64>,
    /// Override: sub-knee bandwidth scaling exponent.
    pub uncore_exponent: Option<f64>,
    /// Override: peak bandwidth (GiB/s).
    pub peak_bw_gib: Option<f64>,
    /// Override: default long-term power limit (W).
    pub pl1_w: Option<f64>,
    /// Override: lowest enforceable ceiling (W).
    pub cap_floor_w: Option<f64>,
}

impl MachineClass {
    fn new(id: &str, kind: MachineKind) -> Self {
        MachineClass {
            id: id.to_string(),
            kind,
            uncore_knee_ghz: None,
            uncore_exponent: None,
            peak_bw_gib: None,
            pl1_w: None,
            cap_floor_w: None,
        }
    }

    /// The architecture this class simulates, overrides applied.
    pub fn arch(&self) -> ArchSpec {
        let mut arch = match self.kind {
            MachineKind::Yeti => ArchSpec::yeti(),
            MachineKind::Tiny => ArchSpec::tiny(),
            MachineKind::GpuHbm => gpu_hbm_arch(),
        };
        if let Some(bw) = self.peak_bw_gib {
            arch.peak_bandwidth = BytesPerSec::from_gib(bw);
        }
        if let Some(pl1) = self.pl1_w {
            arch.pl1_default = Watts(pl1);
            arch.pl2_default = Watts(pl1 * 1.2);
        }
        if let Some(floor) = self.cap_floor_w {
            arch.cap_floor = Watts(floor);
        }
        arch
    }

    /// The shared-socket physics for this class: the per-kind uncore
    /// transfer function, then any spec overrides on top.
    pub fn shared_cfg(&self) -> SharedSocketCfg {
        let arch = self.arch();
        let mut cfg = SharedSocketCfg::from_arch(&arch);
        match self.kind {
            MachineKind::Yeti => {
                cfg.bandwidth = dufp_model::BandwidthModel::xeon_gold_6130();
                if let Some(bw) = self.peak_bw_gib {
                    cfg.bandwidth.peak = BytesPerSec::from_gib(bw);
                }
            }
            MachineKind::Tiny => {
                cfg.bandwidth.knee_freq = Hertz::from_ghz(1.6);
                cfg.bandwidth.uncore_exponent = 2.0;
                cfg.bandwidth.cap_knee = Watts(35.0);
            }
            MachineKind::GpuHbm => {
                // HBM: bandwidth is nearly insensitive to the uncore-like
                // domain, and only very deep caps starve it.
                cfg.bandwidth.knee_freq = Hertz::from_ghz(1.0);
                cfg.bandwidth.uncore_exponent = 1.1;
                cfg.bandwidth.cap_knee = Watts(180.0);
                cfg.bandwidth.cap_slope_per_watt = 0.008;
                cfg.bandwidth.cap_floor_factor = 0.5;
                cfg.power.base = Watts(45.0);
                cfg.power.core_cdyn = 2.0;
                cfg.power.uncore_leak_per_volt = 10.0;
                cfg.power.uncore_cdyn = 30.0;
            }
        }
        if let Some(knee) = self.uncore_knee_ghz {
            cfg.bandwidth.knee_freq = Hertz::from_ghz(knee);
        }
        if let Some(exp) = self.uncore_exponent {
            cfg.bandwidth.uncore_exponent = exp;
        }
        cfg
    }

    /// Materialization context for this class's phase tables.
    pub fn materialize_ctx(&self) -> MaterializeCtx {
        let cfg = self.shared_cfg();
        let arch = self.arch();
        MaterializeCtx {
            cores: cfg.cores,
            core_freq_max: cfg.core_freq_max,
            peak_bandwidth: cfg.bandwidth.peak,
            peak_flops: arch.peak_flops,
        }
    }
}

/// One node: a machine class plus its co-scheduled tenants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Node name (unique per spec).
    pub id: String,
    /// Machine-class id this node instantiates.
    pub machine: String,
    /// Tenant applications co-scheduled on the shared socket.
    pub tenants: Vec<String>,
    /// Per-tenant weight (scales the phase table); defaults to
    /// `1/len(tenants)` so a co-tenant mix nominally fits the socket.
    pub weights: Vec<f64>,
}

/// A complete, validated scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (lands in every scorecard row).
    pub name: String,
    /// Virtual duration in seconds.
    pub duration_s: f64,
    /// Control interval in milliseconds.
    pub interval_ms: u64,
    /// Allocator epoch length in control intervals.
    pub epoch_intervals: u32,
    /// Global fleet power budget (package domains).
    pub budget_w: f64,
    /// Backlog threshold, in seconds of design-point work, past which a
    /// tenant-interval counts as an SLO violation.
    pub slo_backlog_s: f64,
    /// Arrival model.
    pub arrival: ArrivalSpec,
    /// Machine classes, in declaration order.
    pub machines: Vec<MachineClass>,
    /// Nodes, in declaration order.
    pub nodes: Vec<NodeSpec>,
}

/// The runnable example spec the README documents and CI exercises: a
/// diurnal + burst + flash-crowd day over a heterogeneous fleet of two
/// co-tenant CPU nodes and one GPU-style node.
pub const EXAMPLE_TOML: &str = r#"# A compressed datacenter "day": 60 virtual seconds of diurnal load with
# Poisson bursts and one flash crowd, over a heterogeneous 3-node fleet
# sharing a 380 W global budget.

[scenario]
name = "diurnal-hetero"
duration_s = 60
interval_ms = 200
epoch_intervals = 5
budget_w = 380
slo_backlog_s = 2.0

[arrival]
model = "diurnal"
period_s = 60
peak = 1.0
trough = 0.3
bursts_per_hour = 240
burst_intensity = 0.4
burst_duration_s = 2.5
flash_at_s = 40
flash_magnitude = 0.8
flash_decay_s = 6
node_stagger_s = 8

[machine.cpu]
kind = "yeti"

[machine.gpu]
kind = "gpu-hbm"

[node.web0]
machine = "cpu"
tenants = ["CG", "EP"]
weights = [0.55, 0.45]

[node.web1]
machine = "cpu"
tenants = ["MG", "LU"]
weights = [0.5, 0.5]

[node.accel0]
machine = "gpu"
tenants = ["HPL"]
weights = [0.8]
"#;

impl ScenarioSpec {
    /// Parses and validates a spec from its TOML text.
    pub fn from_toml(text: &str) -> Result<Self> {
        let spec = parse_spec(text)?;
        spec.validate()?;
        Ok(spec)
    }

    /// The example spec (parsed; infallible by test).
    pub fn example() -> Self {
        Self::from_toml(EXAMPLE_TOML).expect("example spec must parse")
    }

    /// A minimal fast scenario for tests and benches: one co-tenant tiny
    /// CPU node and one GPU-style node under a diurnal curve.
    pub fn mini() -> Self {
        ScenarioSpec {
            name: "mini".into(),
            duration_s: 24.0,
            interval_ms: 200,
            epoch_intervals: 5,
            budget_w: 220.0,
            slo_backlog_s: 2.0,
            arrival: ArrivalSpec {
                kind: ArrivalKind::Diurnal,
                period_s: 24.0,
                peak: 1.0,
                trough: 0.35,
                bursts_per_hour: 450.0,
                burst_intensity: 0.3,
                burst_duration_s: 1.5,
                flash_at_s: Some(16.0),
                flash_magnitude: 0.6,
                flash_decay_s: 3.0,
                node_stagger_s: 6.0,
                ..ArrivalSpec::default()
            },
            machines: vec![
                MachineClass::new("cpu", MachineKind::Tiny),
                MachineClass::new("gpu", MachineKind::GpuHbm),
            ],
            nodes: vec![
                NodeSpec {
                    id: "n0".into(),
                    machine: "cpu".into(),
                    tenants: vec!["CG".into(), "EP".into()],
                    weights: vec![0.6, 0.4],
                },
                NodeSpec {
                    id: "n1".into(),
                    machine: "gpu".into(),
                    tenants: vec!["HPL".into()],
                    weights: vec![0.8],
                },
            ],
        }
    }

    /// Total tenants across the fleet.
    pub fn tenant_count(&self) -> usize {
        self.nodes.iter().map(|n| n.tenants.len()).sum()
    }

    /// Resolves a node's machine class.
    pub fn class_of(&self, node: &NodeSpec) -> Option<&MachineClass> {
        self.machines.iter().find(|m| m.id == node.machine)
    }

    /// Semantic validation with field-path errors (`scenario.budget_w`,
    /// `node.web0.tenants`, …), the same typed-error discipline
    /// `SimConfig::validate` and `ClusterConfig::validate` follow.
    pub fn validate(&self) -> Result<()> {
        fn fail(path: impl Into<String>, why: impl std::fmt::Display) -> Result<()> {
            let path = path.into();
            Err(Error::invalid("scenario", format!("{path}: {why}")))
        }
        if self.name.is_empty() {
            return fail("scenario.name", "must not be empty");
        }
        if !self.duration_s.is_finite() || self.duration_s <= 0.0 {
            return fail(
                "scenario.duration_s",
                format!("must be finite and > 0 (got {})", self.duration_s),
            );
        }
        if self.interval_ms < 10 {
            return fail(
                "scenario.interval_ms",
                format!("must be >= 10 ms (got {})", self.interval_ms),
            );
        }
        if self.epoch_intervals == 0 {
            return fail("scenario.epoch_intervals", "must be >= 1");
        }
        if !self.budget_w.is_finite() || self.budget_w <= 0.0 {
            return fail(
                "scenario.budget_w",
                format!("must be finite and > 0 (got {})", self.budget_w),
            );
        }
        if !self.slo_backlog_s.is_finite() || self.slo_backlog_s <= 0.0 {
            return fail(
                "scenario.slo_backlog_s",
                format!("must be finite and > 0 (got {})", self.slo_backlog_s),
            );
        }

        let a = &self.arrival;
        for (field, v) in [
            ("arrival.base", a.base),
            ("arrival.peak", a.peak),
            ("arrival.trough", a.trough),
            ("arrival.bursts_per_hour", a.bursts_per_hour),
            ("arrival.burst_intensity", a.burst_intensity),
            ("arrival.flash_magnitude", a.flash_magnitude),
            ("arrival.node_stagger_s", a.node_stagger_s),
        ] {
            if !v.is_finite() || v < 0.0 {
                return fail(
                    field,
                    format!("arrival rates must be finite and non-negative (got {v})"),
                );
            }
        }
        if !a.period_s.is_finite() || a.period_s <= 0.0 {
            return fail(
                "arrival.period_s",
                format!("must be finite and > 0 (got {})", a.period_s),
            );
        }
        if a.peak < a.trough {
            return fail(
                "arrival.peak",
                format!("peak {} must be >= trough {}", a.peak, a.trough),
            );
        }
        if a.bursts_per_hour > 0.0 && (!a.burst_duration_s.is_finite() || a.burst_duration_s <= 0.0)
        {
            return fail(
                "arrival.burst_duration_s",
                format!(
                    "must be finite and > 0 when bursts are enabled (got {})",
                    a.burst_duration_s
                ),
            );
        }
        if let Some(at) = a.flash_at_s {
            if !at.is_finite() || at < 0.0 {
                return fail(
                    "arrival.flash_at_s",
                    format!("must be finite and non-negative (got {at})"),
                );
            }
            if !a.flash_decay_s.is_finite() || a.flash_decay_s <= 0.0 {
                return fail(
                    "arrival.flash_decay_s",
                    format!("must be finite and > 0 (got {})", a.flash_decay_s),
                );
            }
        }

        if self.machines.is_empty() {
            return fail("machine", "at least one machine class is required");
        }
        for (i, m) in self.machines.iter().enumerate() {
            let path = format!("machine.{}", m.id);
            if self.machines[..i].iter().any(|o| o.id == m.id) {
                return fail(path, "duplicate machine id");
            }
            for (field, v) in [
                ("uncore_knee_ghz", m.uncore_knee_ghz),
                ("uncore_exponent", m.uncore_exponent),
                ("peak_bw_gib", m.peak_bw_gib),
                ("pl1_w", m.pl1_w),
                ("cap_floor_w", m.cap_floor_w),
            ] {
                if let Some(v) = v {
                    if !v.is_finite() || v <= 0.0 {
                        return fail(
                            format!("{path}.{field}"),
                            format!("must be finite and > 0 (got {v})"),
                        );
                    }
                }
            }
            if let (Some(floor), Some(pl1)) = (m.cap_floor_w, m.pl1_w) {
                if floor > pl1 {
                    return fail(
                        format!("{path}.cap_floor_w"),
                        format!("floor {floor} W exceeds pl1 {pl1} W"),
                    );
                }
            }
        }

        if self.nodes.is_empty() {
            return fail("node", "at least one node is required");
        }
        for (i, n) in self.nodes.iter().enumerate() {
            let path = format!("node.{}", n.id);
            if self.nodes[..i].iter().any(|o| o.id == n.id) {
                return fail(path, "duplicate node id");
            }
            let Some(class) = self.class_of(n) else {
                return fail(
                    format!("{path}.machine"),
                    format!(
                        "machine id {:?} does not resolve (declared: {})",
                        n.machine,
                        self.machines
                            .iter()
                            .map(|m| m.id.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                );
            };
            if n.tenants.is_empty() {
                return fail(format!("{path}.tenants"), "empty tenant mix");
            }
            if !n.weights.is_empty() && n.weights.len() != n.tenants.len() {
                return fail(
                    format!("{path}.weights"),
                    format!(
                        "{} weights for {} tenants",
                        n.weights.len(),
                        n.tenants.len()
                    ),
                );
            }
            for w in &n.weights {
                if !w.is_finite() || *w <= 0.0 {
                    return fail(
                        format!("{path}.weights"),
                        format!("weights must be finite and > 0 (got {w})"),
                    );
                }
            }
            let ctx = class.materialize_ctx();
            for app in &n.tenants {
                if let Err(e) = dufp_workloads::apps::by_name(app, &ctx) {
                    return fail(format!("{path}.tenants"), format!("app {app:?}: {e}"));
                }
            }
        }
        Ok(())
    }

    /// A node's tenant weights with the default (`1/len`) applied.
    pub fn weights_of(node: &NodeSpec) -> Vec<f64> {
        if node.weights.is_empty() {
            vec![1.0 / node.tenants.len() as f64; node.tenants.len()]
        } else {
            node.weights.clone()
        }
    }
}

/// Which section of the file a line belongs to.
#[derive(Debug, Clone, PartialEq)]
enum Section {
    None,
    Scenario,
    Arrival,
    Machine(usize),
    Node(usize),
}

fn parse_spec(text: &str) -> Result<ScenarioSpec> {
    let bad = |line: usize, why: String| Error::invalid("scenario", format!("line {line}: {why}"));

    let mut spec = ScenarioSpec {
        name: String::new(),
        duration_s: 60.0,
        interval_ms: 200,
        epoch_intervals: 5,
        budget_w: f64::NAN,
        slo_backlog_s: 2.0,
        arrival: ArrivalSpec::default(),
        machines: Vec::new(),
        nodes: Vec::new(),
    };
    let mut section = Section::None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }

        if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let header = header.trim();
            section = match header {
                "scenario" => Section::Scenario,
                "arrival" => Section::Arrival,
                _ => {
                    if let Some(id) = header.strip_prefix("machine.") {
                        if id.is_empty() {
                            return Err(bad(lineno, "machine section needs an id".into()));
                        }
                        spec.machines.push(MachineClass::new(id, MachineKind::Yeti));
                        Section::Machine(spec.machines.len() - 1)
                    } else if let Some(id) = header.strip_prefix("node.") {
                        if id.is_empty() {
                            return Err(bad(lineno, "node section needs an id".into()));
                        }
                        spec.nodes.push(NodeSpec {
                            id: id.to_string(),
                            machine: String::new(),
                            tenants: Vec::new(),
                            weights: Vec::new(),
                        });
                        Section::Node(spec.nodes.len() - 1)
                    } else {
                        return Err(bad(
                            lineno,
                            format!(
                                "unknown section [{header}] (expected [scenario], [arrival], [machine.<id>] or [node.<id>])"
                            ),
                        ));
                    }
                }
            };
            continue;
        }

        let Some((key, value)) = line.split_once('=') else {
            return Err(bad(lineno, format!("expected key = value, got {line:?}")));
        };
        let key = key.trim();
        let value = value.trim();
        let num = |v: &str| -> std::result::Result<f64, String> {
            v.parse::<f64>().map_err(|_| format!("bad number {v}"))
        };

        let result: std::result::Result<(), String> = match &section {
            Section::None => Err(format!("key {key} before any [section] header")),
            Section::Scenario => match key {
                "name" => parse_string(value).map(|v| spec.name = v),
                "duration_s" => num(value).map(|v| spec.duration_s = v),
                "interval_ms" => num(value).map(|v| spec.interval_ms = v as u64),
                "epoch_intervals" => num(value).map(|v| spec.epoch_intervals = v as u32),
                "budget_w" => num(value).map(|v| spec.budget_w = v),
                "slo_backlog_s" => num(value).map(|v| spec.slo_backlog_s = v),
                other => Err(format!("unknown [scenario] key {other}")),
            },
            Section::Arrival => match key {
                "model" => parse_string(value).and_then(|v| match v.as_str() {
                    "constant" => {
                        spec.arrival.kind = ArrivalKind::Constant;
                        Ok(())
                    }
                    "diurnal" => {
                        spec.arrival.kind = ArrivalKind::Diurnal;
                        Ok(())
                    }
                    other => Err(format!(
                        "unknown arrival model {other:?} (expected constant or diurnal)"
                    )),
                }),
                "base" => num(value).map(|v| spec.arrival.base = v),
                "period_s" => num(value).map(|v| spec.arrival.period_s = v),
                "peak" => num(value).map(|v| spec.arrival.peak = v),
                "trough" => num(value).map(|v| spec.arrival.trough = v),
                "bursts_per_hour" => num(value).map(|v| spec.arrival.bursts_per_hour = v),
                "burst_intensity" => num(value).map(|v| spec.arrival.burst_intensity = v),
                "burst_duration_s" => num(value).map(|v| spec.arrival.burst_duration_s = v),
                "flash_at_s" => num(value).map(|v| spec.arrival.flash_at_s = Some(v)),
                "flash_magnitude" => num(value).map(|v| spec.arrival.flash_magnitude = v),
                "flash_decay_s" => num(value).map(|v| spec.arrival.flash_decay_s = v),
                "node_stagger_s" => num(value).map(|v| spec.arrival.node_stagger_s = v),
                other => Err(format!("unknown [arrival] key {other}")),
            },
            Section::Machine(i) => {
                let m = &mut spec.machines[*i];
                match key {
                    "kind" => parse_string(value)
                        .and_then(|v| MachineKind::parse(&v))
                        .map(|k| m.kind = k),
                    "uncore_knee_ghz" => num(value).map(|v| m.uncore_knee_ghz = Some(v)),
                    "uncore_exponent" => num(value).map(|v| m.uncore_exponent = Some(v)),
                    "peak_bw_gib" => num(value).map(|v| m.peak_bw_gib = Some(v)),
                    "pl1_w" => num(value).map(|v| m.pl1_w = Some(v)),
                    "cap_floor_w" => num(value).map(|v| m.cap_floor_w = Some(v)),
                    other => Err(format!("unknown [machine] key {other}")),
                }
            }
            Section::Node(i) => {
                let n = &mut spec.nodes[*i];
                match key {
                    "machine" => parse_string(value).map(|v| n.machine = v),
                    "tenants" => parse_string_array(value).map(|v| n.tenants = v),
                    "weights" => parse_number_array(value).map(|v| n.weights = v),
                    other => Err(format!("unknown [node] key {other}")),
                }
            }
        };
        result.map_err(|why| bad(lineno, why))?;
    }

    if spec.name.is_empty() {
        return Err(Error::invalid(
            "scenario",
            "scenario.name: missing (add name = \"...\" under [scenario])",
        ));
    }
    if !spec.budget_w.is_finite() {
        return Err(Error::invalid(
            "scenario",
            "scenario.budget_w: missing (add budget_w = <watts> under [scenario])",
        ));
    }
    Ok(spec)
}

fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(v: &str) -> std::result::Result<String, String> {
    let inner = v
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected a double-quoted string, got {v}"))?;
    if inner.contains('"') {
        return Err(format!("embedded quotes are not supported: {v}"));
    }
    Ok(inner.to_string())
}

fn parse_string_array(v: &str) -> std::result::Result<Vec<String>, String> {
    array_elements(v)?.iter().map(|e| parse_string(e)).collect()
}

fn parse_number_array(v: &str) -> std::result::Result<Vec<f64>, String> {
    array_elements(v)?
        .iter()
        .map(|e| e.parse::<f64>().map_err(|_| format!("bad number {e}")))
        .collect()
}

fn array_elements(v: &str) -> std::result::Result<Vec<String>, String> {
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected a [ ... ] array, got {v}"))?;
    let trimmed = inner.trim();
    if trimmed.is_empty() {
        return Ok(Vec::new());
    }
    Ok(trimmed.split(',').map(|e| e.trim().to_string()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detail(err: Error) -> String {
        match err {
            Error::InvalidValue { detail, .. } => detail,
            other => panic!("expected InvalidValue, got {other:?}"),
        }
    }

    #[test]
    fn example_spec_parses_and_validates() {
        let spec = ScenarioSpec::example();
        assert_eq!(spec.name, "diurnal-hetero");
        assert_eq!(spec.machines.len(), 2);
        assert_eq!(spec.nodes.len(), 3);
        assert_eq!(spec.tenant_count(), 5);
        assert_eq!(spec.nodes[2].machine, "gpu");
    }

    #[test]
    fn mini_spec_validates() {
        ScenarioSpec::mini().validate().unwrap();
    }

    #[test]
    fn syntax_errors_name_the_line() {
        let err = ScenarioSpec::from_toml("[scenario]\nname? yes\n").unwrap_err();
        assert!(detail(err).contains("line 2"), "must cite the line");
        let err = ScenarioSpec::from_toml("[what]\n").unwrap_err();
        assert!(detail(err).contains("line 1"));
        let err = ScenarioSpec::from_toml("name = \"x\"\n").unwrap_err();
        assert!(detail(err).contains("before any [section]"));
    }

    #[test]
    fn negative_arrival_rate_rejected_with_field_path() {
        let mut spec = ScenarioSpec::mini();
        spec.arrival.bursts_per_hour = -3.0;
        let d = detail(spec.validate().unwrap_err());
        assert!(d.contains("arrival.bursts_per_hour"), "{d}");
        assert!(d.contains("non-negative"), "{d}");
    }

    #[test]
    fn non_finite_arrival_rate_rejected() {
        for v in [f64::NAN, f64::INFINITY] {
            let mut spec = ScenarioSpec::mini();
            spec.arrival.peak = v;
            let d = detail(spec.validate().unwrap_err());
            assert!(d.contains("arrival.peak"), "{d}");
        }
    }

    #[test]
    fn empty_tenant_mix_rejected() {
        let mut spec = ScenarioSpec::mini();
        spec.nodes[0].tenants.clear();
        spec.nodes[0].weights.clear();
        let d = detail(spec.validate().unwrap_err());
        assert!(d.contains("node.n0.tenants"), "{d}");
        assert!(d.contains("empty tenant mix"), "{d}");
    }

    #[test]
    fn unresolved_machine_id_rejected() {
        let mut spec = ScenarioSpec::mini();
        spec.nodes[1].machine = "tpu".into();
        let d = detail(spec.validate().unwrap_err());
        assert!(d.contains("node.n1.machine"), "{d}");
        assert!(d.contains("does not resolve"), "{d}");
        assert!(d.contains("cpu, gpu"), "must list declared ids: {d}");
    }

    #[test]
    fn unknown_app_rejected() {
        let mut spec = ScenarioSpec::mini();
        spec.nodes[0].tenants[0] = "NOPE".into();
        let d = detail(spec.validate().unwrap_err());
        assert!(d.contains("node.n0.tenants"), "{d}");
    }

    #[test]
    fn weight_arity_and_sign_checked() {
        let mut spec = ScenarioSpec::mini();
        spec.nodes[0].weights = vec![1.0];
        let d = detail(spec.validate().unwrap_err());
        assert!(d.contains("node.n0.weights"), "{d}");

        let mut spec = ScenarioSpec::mini();
        spec.nodes[0].weights = vec![0.5, -0.5];
        let d = detail(spec.validate().unwrap_err());
        assert!(d.contains("finite and > 0"), "{d}");
    }

    #[test]
    fn budget_must_be_finite_positive() {
        for v in [0.0, -10.0, f64::NAN] {
            let mut spec = ScenarioSpec::mini();
            spec.budget_w = v;
            let d = detail(spec.validate().unwrap_err());
            assert!(d.contains("scenario.budget_w"), "{d}");
        }
    }

    #[test]
    fn missing_budget_reported_at_parse() {
        let d = detail(ScenarioSpec::from_toml("[scenario]\nname = \"x\"\n").unwrap_err());
        assert!(d.contains("budget_w"), "{d}");
    }

    #[test]
    fn gpu_class_has_flatter_uncore_transfer_than_cpu() {
        let spec = ScenarioSpec::mini();
        let cpu = spec.machines[0].shared_cfg();
        let gpu = spec.machines[1].shared_cfg();
        assert!(gpu.bandwidth.uncore_exponent < cpu.bandwidth.uncore_exponent);
        assert!(gpu.bandwidth.peak.value() > cpu.bandwidth.peak.value());
        // Halving the uncore costs the GPU class far less of its peak.
        let cpu_half = cpu
            .bandwidth
            .uncore_factor(Hertz(cpu.bandwidth.knee_freq.value() / 2.0));
        let gpu_half = gpu
            .bandwidth
            .uncore_factor(Hertz(gpu.bandwidth.knee_freq.value() / 2.0));
        assert!(gpu_half > cpu_half);
    }

    #[test]
    fn machine_overrides_apply() {
        let mut spec = ScenarioSpec::mini();
        spec.machines[0].uncore_exponent = Some(1.5);
        spec.machines[0].peak_bw_gib = Some(50.0);
        let cfg = spec.machines[0].shared_cfg();
        assert_eq!(cfg.bandwidth.uncore_exponent, 1.5);
        assert!((cfg.bandwidth.peak.value() - BytesPerSec::from_gib(50.0).value()).abs() < 1.0);
    }

    #[test]
    fn default_weights_split_evenly() {
        let node = NodeSpec {
            id: "n".into(),
            machine: "m".into(),
            tenants: vec!["CG".into(), "EP".into()],
            weights: vec![],
        };
        assert_eq!(ScenarioSpec::weights_of(&node), vec![0.5, 0.5]);
    }
}
