//! Roofline phase-progress model.
//!
//! A workload phase is characterized by the floating-point work and memory
//! traffic needed per abstract *work unit*. Given the current compute
//! capability (set by core frequency) and achievable bandwidth (set by
//! uncore frequency and cap pressure), the phase progresses at a rate
//! limited by the slower of the two, with a tunable partial-overlap term
//! that softens the roofline ridge:
//!
//! ```text
//! T_compute = flops_per_unit / compute_rate(f)
//! T_memory  = bytes_per_unit / bandwidth
//! rate      = 1 / (max(T_c, T_m) + overlap_penalty · min(T_c, T_m))
//! ```
//!
//! Observed FLOPS/s is then `rate · flops_per_unit` and observed bandwidth
//! `rate · bytes_per_unit` — precisely the two signals DUFP samples.

use dufp_types::{BytesPerSec, FlopsPerSec, Hertz, OpIntensity};
use serde::{Deserialize, Serialize};

/// The paper's empirical phase taxonomy (§III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseKind {
    /// `oi < 0.02` — cap may be dropped to the floor for free.
    HighlyMemoryIntensive,
    /// `0.02 ≤ oi < 1` — memory intensive.
    MemoryIntensive,
    /// `1 ≤ oi ≤ 100` — mixed.
    Mixed,
    /// `oi > 100` — reset the cap on any violation; also guard bandwidth.
    HighlyComputeIntensive,
}

impl PhaseKind {
    /// Classifies an operational intensity per the paper's thresholds.
    pub fn classify(oi: OpIntensity) -> Self {
        let v = oi.value();
        if v < 0.02 {
            PhaseKind::HighlyMemoryIntensive
        } else if v < 1.0 {
            PhaseKind::MemoryIntensive
        } else if v <= 100.0 {
            PhaseKind::Mixed
        } else {
            PhaseKind::HighlyComputeIntensive
        }
    }

    /// True for both memory-intensive classes.
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            PhaseKind::HighlyMemoryIntensive | PhaseKind::MemoryIntensive
        )
    }
}

/// Static compute/memory demands of one phase, per abstract work unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseRates {
    /// Floating-point operations per work unit.
    pub flops_per_unit: f64,
    /// Bytes of memory traffic per work unit.
    pub bytes_per_unit: f64,
    /// FLOPs each core retires per cycle in this phase (vectorization and
    /// ILP quality; ≤ the machine's architectural peak).
    pub flops_per_core_cycle: f64,
    /// How poorly compute and memory overlap: `0` = perfect roofline,
    /// `1` = fully serialized.
    pub overlap_penalty: f64,
}

/// Evaluates phase progress on a socket with `cores` active cores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflineModel {
    /// Active core count contributing compute capability.
    pub cores: u16,
}

/// Progress and the observable signals it generates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseProgress {
    /// Work units completed per second.
    pub units_per_sec: f64,
    /// Resulting FLOPS/s signal.
    pub flops: FlopsPerSec,
    /// Resulting memory-traffic signal.
    pub bandwidth: BytesPerSec,
}

impl RooflineModel {
    /// Computes the progress rate of `phase` at core frequency `f` with
    /// `bw` of achievable memory bandwidth.
    pub fn progress(&self, phase: &PhaseRates, f: Hertz, bw: BytesPerSec) -> PhaseProgress {
        let compute_rate = phase.flops_per_core_cycle * f64::from(self.cores) * f.value().max(1.0);
        let t_c = if phase.flops_per_unit > 0.0 {
            phase.flops_per_unit / compute_rate
        } else {
            0.0
        };
        let t_m = if phase.bytes_per_unit > 0.0 {
            phase.bytes_per_unit / bw.value().max(1.0)
        } else {
            0.0
        };
        let bound = t_c.max(t_m) + phase.overlap_penalty.clamp(0.0, 1.0) * t_c.min(t_m);
        let rate = if bound > 0.0 { 1.0 / bound } else { 0.0 };
        PhaseProgress {
            units_per_sec: rate,
            flops: FlopsPerSec(rate * phase.flops_per_unit),
            bandwidth: BytesPerSec(rate * phase.bytes_per_unit),
        }
    }

    /// The operational intensity this phase presents to the counters.
    pub fn intensity(phase: &PhaseRates) -> OpIntensity {
        if phase.bytes_per_unit > 0.0 {
            OpIntensity(phase.flops_per_unit / phase.bytes_per_unit)
        } else {
            OpIntensity(f64::INFINITY)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn compute_phase() -> PhaseRates {
        PhaseRates {
            flops_per_unit: 1.0e9,
            bytes_per_unit: 1.0e6, // oi = 1000
            flops_per_core_cycle: 2.0,
            overlap_penalty: 0.0,
        }
    }

    fn memory_phase() -> PhaseRates {
        PhaseRates {
            flops_per_unit: 1.0e6,
            bytes_per_unit: 1.0e9, // oi = 0.001
            flops_per_core_cycle: 2.0,
            overlap_penalty: 0.0,
        }
    }

    #[test]
    fn classification_matches_paper_thresholds() {
        assert_eq!(
            PhaseKind::classify(OpIntensity(0.001)),
            PhaseKind::HighlyMemoryIntensive
        );
        assert_eq!(
            PhaseKind::classify(OpIntensity(0.5)),
            PhaseKind::MemoryIntensive
        );
        assert_eq!(PhaseKind::classify(OpIntensity(10.0)), PhaseKind::Mixed);
        assert_eq!(
            PhaseKind::classify(OpIntensity(150.0)),
            PhaseKind::HighlyComputeIntensive
        );
        // Boundary values.
        assert_eq!(
            PhaseKind::classify(OpIntensity(0.02)),
            PhaseKind::MemoryIntensive
        );
        assert_eq!(PhaseKind::classify(OpIntensity(1.0)), PhaseKind::Mixed);
        assert_eq!(PhaseKind::classify(OpIntensity(100.0)), PhaseKind::Mixed);
    }

    #[test]
    fn compute_phase_scales_with_frequency() {
        let m = RooflineModel { cores: 16 };
        let bw = BytesPerSec::from_gib(100.0);
        let hi = m.progress(&compute_phase(), Hertz::from_ghz(2.8), bw);
        let lo = m.progress(&compute_phase(), Hertz::from_ghz(1.4), bw);
        let ratio = hi.flops.value() / lo.flops.value();
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn memory_phase_insensitive_to_core_frequency() {
        let m = RooflineModel { cores: 16 };
        let bw = BytesPerSec::from_gib(100.0);
        let hi = m.progress(&memory_phase(), Hertz::from_ghz(2.8), bw);
        let lo = m.progress(&memory_phase(), Hertz::from_ghz(1.0), bw);
        let ratio = hi.flops.value() / lo.flops.value();
        assert!(
            (ratio - 1.0).abs() < 0.01,
            "memory phase should not care about core f: {ratio}"
        );
    }

    #[test]
    fn memory_phase_scales_with_bandwidth() {
        let m = RooflineModel { cores: 16 };
        let hi = m.progress(
            &memory_phase(),
            Hertz::from_ghz(2.0),
            BytesPerSec::from_gib(100.0),
        );
        let lo = m.progress(
            &memory_phase(),
            Hertz::from_ghz(2.0),
            BytesPerSec::from_gib(50.0),
        );
        let ratio = hi.bandwidth.value() / lo.bandwidth.value();
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn overlap_penalty_slows_progress() {
        let m = RooflineModel { cores: 16 };
        let mut p = compute_phase();
        p.bytes_per_unit = 1.0e8;
        let free = m.progress(&p, Hertz::from_ghz(2.0), BytesPerSec::from_gib(50.0));
        p.overlap_penalty = 0.5;
        let penalized = m.progress(&p, Hertz::from_ghz(2.0), BytesPerSec::from_gib(50.0));
        assert!(penalized.units_per_sec < free.units_per_sec);
    }

    #[test]
    fn signals_are_consistent_with_rate() {
        let m = RooflineModel { cores: 16 };
        let p = memory_phase();
        let pr = m.progress(&p, Hertz::from_ghz(2.0), BytesPerSec::from_gib(80.0));
        assert!((pr.flops.value() - pr.units_per_sec * p.flops_per_unit).abs() < 1e-3);
        assert!((pr.bandwidth.value() - pr.units_per_sec * p.bytes_per_unit).abs() < 1e-3);
    }

    #[test]
    fn intensity_of_pure_compute_is_infinite() {
        let p = PhaseRates {
            flops_per_unit: 1.0,
            bytes_per_unit: 0.0,
            flops_per_core_cycle: 2.0,
            overlap_penalty: 0.0,
        };
        assert!(RooflineModel::intensity(&p).value().is_infinite());
    }

    proptest! {
        #[test]
        fn progress_monotone_in_frequency(
            f1 in 1.0f64..3.0, f2 in 1.0f64..3.0,
            flops in 1e6f64..1e10, bytes in 1e6f64..1e10,
        ) {
            let m = RooflineModel { cores: 16 };
            let p = PhaseRates {
                flops_per_unit: flops,
                bytes_per_unit: bytes,
                flops_per_core_cycle: 2.0,
                overlap_penalty: 0.1,
            };
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            let bw = BytesPerSec::from_gib(80.0);
            let r_lo = m.progress(&p, Hertz::from_ghz(lo), bw);
            let r_hi = m.progress(&p, Hertz::from_ghz(hi), bw);
            prop_assert!(r_lo.units_per_sec <= r_hi.units_per_sec * (1.0 + 1e-9));
        }

        #[test]
        fn progress_bounded_by_roofline(
            f in 1.0f64..3.0,
            flops in 1e6f64..1e10, bytes in 1e3f64..1e10,
        ) {
            let m = RooflineModel { cores: 16 };
            let p = PhaseRates {
                flops_per_unit: flops,
                bytes_per_unit: bytes,
                flops_per_core_cycle: 2.0,
                overlap_penalty: 0.3,
            };
            let bw = BytesPerSec::from_gib(80.0);
            let pr = m.progress(&p, Hertz::from_ghz(f), bw);
            let compute_cap = 2.0 * 16.0 * Hertz::from_ghz(f).value();
            prop_assert!(pr.flops.value() <= compute_cap * (1.0 + 1e-9));
            prop_assert!(pr.bandwidth.value() <= bw.value() * (1.0 + 1e-9));
        }
    }
}
