//! Achievable memory bandwidth as a function of uncore frequency and
//! power-cap pressure.
//!
//! Two effects matter to the controllers:
//!
//! 1. Bandwidth scales nearly linearly with uncore frequency until a knee
//!    (the mesh stops being the bottleneck), then saturates. This is why
//!    DUF can lower the uncore on compute phases for free but must stop at
//!    the knee on memory phases.
//! 2. Very deep power caps starve the memory subsystem and erode bandwidth
//!    even at a fixed uncore frequency — the paper's stated reason for the
//!    65 W cap floor (§IV-A).

use dufp_types::{BytesPerSec, Hertz, Watts};
use serde::{Deserialize, Serialize};

/// Bandwidth transfer function for one socket.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthModel {
    /// Peak bandwidth with the uncore at or above the knee.
    pub peak: BytesPerSec,
    /// Uncore frequency above which bandwidth no longer improves.
    pub knee_freq: Hertz,
    /// Exponent of the sub-knee scaling: 1 = linear, 2 = convex (latency
    /// effects compound the raw mesh-throughput loss).
    pub uncore_exponent: f64,
    /// Power cap below which bandwidth starts to degrade.
    pub cap_knee: Watts,
    /// Fractional bandwidth loss per watt below [`Self::cap_knee`].
    pub cap_slope_per_watt: f64,
    /// Lower bound on the cap-induced degradation factor.
    pub cap_floor_factor: f64,
}

impl BandwidthModel {
    /// Xeon Gold 6130 with six DDR4-2666 channels.
    pub fn xeon_gold_6130() -> Self {
        BandwidthModel {
            peak: BytesPerSec::from_gib(105.0),
            knee_freq: Hertz::from_ghz(2.0),
            uncore_exponent: 3.0,
            cap_knee: Watts(68.0),
            cap_slope_per_watt: 0.012,
            cap_floor_factor: 0.35,
        }
    }

    /// Fraction of peak bandwidth available at `uncore_freq` (cap ignored).
    pub fn uncore_factor(&self, uncore_freq: Hertz) -> f64 {
        (uncore_freq.value() / self.knee_freq.value())
            .clamp(0.0, 1.0)
            .powf(self.uncore_exponent.max(1e-9))
    }

    /// Degradation factor from power-cap starvation, `(0, 1]`.
    pub fn cap_factor(&self, cap: Watts) -> f64 {
        if cap >= self.cap_knee {
            1.0
        } else {
            (1.0 - self.cap_slope_per_watt * (self.cap_knee - cap).value())
                .max(self.cap_floor_factor)
        }
    }

    /// Achievable bandwidth at this operating point.
    pub fn achievable(&self, uncore_freq: Hertz, cap: Watts) -> BytesPerSec {
        self.peak * self.uncore_factor(uncore_freq) * self.cap_factor(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn saturates_above_knee() {
        let m = BandwidthModel::xeon_gold_6130();
        let at_knee = m.achievable(Hertz::from_ghz(2.0), Watts(125.0));
        let above = m.achievable(Hertz::from_ghz(2.4), Watts(125.0));
        assert_eq!(at_knee, above);
        assert_eq!(above, m.peak);
    }

    #[test]
    fn convex_below_knee() {
        // γ = 3: half the knee frequency gives an eighth of peak bandwidth.
        let m = BandwidthModel::xeon_gold_6130();
        let half = m.achievable(Hertz::from_ghz(1.0), Watts(125.0));
        assert!((half.value() / m.peak.value() - 0.125).abs() < 1e-9);
    }

    #[test]
    fn paper_cap_floor_is_nearly_free() {
        // 65 W — the paper's chosen floor — must cost almost no bandwidth,
        // while 45 W visibly hurts. That asymmetry is why 65 W was chosen.
        let m = BandwidthModel::xeon_gold_6130();
        assert!(m.cap_factor(Watts(65.0)) > 0.95);
        assert!(m.cap_factor(Watts(45.0)) < 0.80);
    }

    #[test]
    fn cap_factor_floors_out() {
        let m = BandwidthModel::xeon_gold_6130();
        assert_eq!(m.cap_factor(Watts(0.0)), m.cap_floor_factor);
    }

    proptest! {
        #[test]
        fn monotone_in_uncore(f1 in 0.5f64..3.0, f2 in 0.5f64..3.0) {
            let m = BandwidthModel::xeon_gold_6130();
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            prop_assert!(
                m.achievable(Hertz::from_ghz(lo), Watts(100.0)).value()
                    <= m.achievable(Hertz::from_ghz(hi), Watts(100.0)).value() + 1e-6
            );
        }

        #[test]
        fn monotone_in_cap(c1 in 20.0f64..150.0, c2 in 20.0f64..150.0) {
            let m = BandwidthModel::xeon_gold_6130();
            let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
            prop_assert!(
                m.achievable(Hertz::from_ghz(2.0), Watts(lo)).value()
                    <= m.achievable(Hertz::from_ghz(2.0), Watts(hi)).value() + 1e-6
            );
        }

        #[test]
        fn always_positive_and_bounded(f in 0.1f64..3.0, c in 0.0f64..200.0) {
            let m = BandwidthModel::xeon_gold_6130();
            let bw = m.achievable(Hertz::from_ghz(f), Watts(c));
            prop_assert!(bw.value() >= 0.0);
            prop_assert!(bw.value() <= m.peak.value() + 1e-6);
        }
    }
}
