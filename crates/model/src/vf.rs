//! Voltage/frequency operating curve.
//!
//! Intel parts raise core voltage roughly affinely with frequency across the
//! usable P-state range. Dynamic power then scales as `f · V(f)²`, which is
//! why RAPL throttling (which lowers `f` *and* rides the curve down in `V`)
//! saves disproportionately more power than performance is lost — the
//! mechanism behind the paper's Fig. 5.

use dufp_types::Hertz;
use serde::{Deserialize, Serialize};

/// Affine V/f curve: `V(f) = v0 + slope_per_ghz · f[GHz]`, clamped to
/// `[vmin, vmax]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VfCurve {
    /// Extrapolated voltage at 0 Hz (volts).
    pub v0: f64,
    /// Voltage increase per GHz (volts).
    pub slope_per_ghz: f64,
    /// Lower rail clamp (volts).
    pub vmin: f64,
    /// Upper rail clamp (volts).
    pub vmax: f64,
}

impl VfCurve {
    /// Skylake-SP core voltage curve: ≈0.73 V at 1.0 GHz rising to
    /// ≈1.05 V at the 2.8 GHz all-core turbo.
    pub fn skylake_core() -> Self {
        VfCurve {
            v0: 0.55,
            slope_per_ghz: 0.18,
            vmin: 0.60,
            vmax: 1.15,
        }
    }

    /// Skylake-SP uncore (mesh/LLC) voltage curve: shallower than the cores.
    pub fn skylake_uncore() -> Self {
        VfCurve {
            v0: 0.60,
            slope_per_ghz: 0.15,
            vmin: 0.62,
            vmax: 1.05,
        }
    }

    /// Operating voltage at frequency `f`.
    #[inline]
    pub fn voltage(&self, f: Hertz) -> f64 {
        (self.v0 + self.slope_per_ghz * f.as_ghz()).clamp(self.vmin, self.vmax)
    }

    /// The `f · V(f)²` dynamic-power factor, normalized to hertz·volt².
    #[inline]
    pub fn dynamic_factor(&self, f: Hertz) -> f64 {
        let v = self.voltage(f);
        f.value() * v * v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn skylake_core_anchor_points() {
        let c = VfCurve::skylake_core();
        assert!((c.voltage(Hertz::from_ghz(1.0)) - 0.73).abs() < 1e-9);
        assert!((c.voltage(Hertz::from_ghz(2.8)) - 1.054).abs() < 1e-9);
    }

    #[test]
    fn voltage_clamps_at_rails() {
        let c = VfCurve::skylake_core();
        assert_eq!(c.voltage(Hertz::ZERO), c.vmin);
        assert_eq!(c.voltage(Hertz::from_ghz(10.0)), c.vmax);
    }

    #[test]
    fn dynamic_factor_superlinear_in_f() {
        // Doubling f inside the affine region must more than double f·V².
        let c = VfCurve::skylake_core();
        let lo = c.dynamic_factor(Hertz::from_ghz(1.2));
        let hi = c.dynamic_factor(Hertz::from_ghz(2.4));
        assert!(hi > 2.0 * lo);
    }

    proptest! {
        #[test]
        fn voltage_monotone_nondecreasing(a in 0.0f64..5.0, b in 0.0f64..5.0) {
            let c = VfCurve::skylake_core();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(c.voltage(Hertz::from_ghz(lo)) <= c.voltage(Hertz::from_ghz(hi)) + 1e-12);
        }

        #[test]
        fn dynamic_factor_monotone(a in 0.1f64..5.0, b in 0.1f64..5.0) {
            let c = VfCurve::skylake_uncore();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(
                c.dynamic_factor(Hertz::from_ghz(lo)) <= c.dynamic_factor(Hertz::from_ghz(hi)) + 1e-6
            );
        }
    }
}
