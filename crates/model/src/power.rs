//! Package and DRAM power models.
//!
//! Package power decomposes into a constant infrastructure floor, core
//! leakage (voltage-dependent), core dynamic power (`n · C · f · V² ·
//! activity`), uncore leakage and uncore dynamic power. The uncore's dynamic
//! term is mostly frequency-driven and only weakly traffic-driven — on
//! Skylake-SP the mesh and LLC burn power at their clock regardless of
//! occupancy, which is exactly why uncore frequency scaling is such a rich
//! power knob for compute-bound codes like EP (the paper's best case,
//! −24.27 %).
//!
//! Default coefficients are calibrated for one 16-core Xeon Gold 6130 so
//! that a compute-bound phase at 2.8 GHz sits just above PL1 = 125 W (HPL
//! rides the cap), a memory-bound phase sits slightly below it, and a
//! min-frequency memory phase fits under the paper's 65 W cap floor.

use crate::vf::VfCurve;
use dufp_types::{BytesPerSec, Hertz, Watts};
use serde::{Deserialize, Serialize};

/// Instantaneous activity of a socket, produced by the workload engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SocketActivity {
    /// Fraction of core issue capacity in use, `[0, 1]`. Compute-bound
    /// phases ≈ 1, stalled memory-bound phases ≈ 0.2–0.6.
    pub core_util: f64,
    /// Fraction of peak memory bandwidth in use, `[0, 1]`.
    pub mem_util: f64,
    /// Number of active cores.
    pub active_cores: u16,
}

impl SocketActivity {
    /// A fully idle socket.
    pub fn idle() -> Self {
        SocketActivity {
            core_util: 0.0,
            mem_util: 0.0,
            active_cores: 0,
        }
    }
}

/// Per-component power decomposition, for traces and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Package infrastructure floor (PCU, IO, fabric always-on).
    pub base: Watts,
    /// Core leakage.
    pub core_leak: Watts,
    /// Core dynamic power.
    pub core_dyn: Watts,
    /// Uncore leakage.
    pub uncore_leak: Watts,
    /// Uncore dynamic power.
    pub uncore_dyn: Watts,
}

impl PowerBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> Watts {
        self.base + self.core_leak + self.core_dyn + self.uncore_leak + self.uncore_dyn
    }
}

/// The package power model and its coefficients.
///
/// ```
/// use dufp_model::{PowerModel, SocketActivity};
/// use dufp_types::Hertz;
///
/// let model = PowerModel::xeon_gold_6130();
/// let busy = SocketActivity { core_util: 0.95, mem_util: 0.05, active_cores: 16 };
/// let p = model.package_total(Hertz::from_ghz(2.8), Hertz::from_ghz(2.4), &busy);
/// assert!(p.value() > 100.0 && p.value() < 140.0); // rides PL1 = 125 W
///
/// // Lowering the uncore on a compute-bound phase is nearly free power:
/// let low = model.package_total(Hertz::from_ghz(2.8), Hertz::from_ghz(1.2), &busy);
/// assert!(p.value() - low.value() > 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Core V/f curve.
    pub core_vf: VfCurve,
    /// Uncore V/f curve.
    pub uncore_vf: VfCurve,
    /// Package infrastructure floor.
    pub base: Watts,
    /// Core leakage per core per volt.
    pub core_leak_per_volt: f64,
    /// Core dynamic coefficient, watts per (GHz · V²) per core at full
    /// activity.
    pub core_cdyn: f64,
    /// Residual activity of a clock-gated but powered core.
    pub core_activity_floor: f64,
    /// Uncore leakage per volt.
    pub uncore_leak_per_volt: f64,
    /// Uncore dynamic coefficient, watts per (GHz · V²).
    pub uncore_cdyn: f64,
    /// Fraction of uncore dynamic power burned regardless of traffic.
    pub uncore_activity_floor: f64,
    /// Total cores in the package (for leakage).
    pub cores: u16,
}

impl PowerModel {
    /// Coefficients for one 16-core Xeon Gold 6130 package.
    pub fn xeon_gold_6130() -> Self {
        PowerModel {
            core_vf: VfCurve::skylake_core(),
            uncore_vf: VfCurve::skylake_uncore(),
            base: Watts(20.0),
            core_leak_per_volt: 1.2,
            core_cdyn: 1.05,
            core_activity_floor: 0.15,
            uncore_leak_per_volt: 6.5,
            uncore_cdyn: 13.0,
            uncore_activity_floor: 0.9,
            cores: 16,
        }
    }

    /// Package power at the given operating point.
    pub fn package_power(
        &self,
        core_freq: Hertz,
        uncore_freq: Hertz,
        activity: &SocketActivity,
    ) -> PowerBreakdown {
        let v_core = self.core_vf.voltage(core_freq);
        let v_unc = self.uncore_vf.voltage(uncore_freq);

        let eff_act = self.core_activity_floor
            + (1.0 - self.core_activity_floor) * activity.core_util.clamp(0.0, 1.0);
        let unc_act = self.uncore_activity_floor
            + (1.0 - self.uncore_activity_floor) * activity.mem_util.clamp(0.0, 1.0);
        let active = f64::from(activity.active_cores.min(self.cores));

        PowerBreakdown {
            base: self.base,
            core_leak: Watts(f64::from(self.cores) * self.core_leak_per_volt * v_core),
            core_dyn: Watts(
                active * self.core_cdyn * core_freq.as_ghz() * v_core * v_core * eff_act,
            ),
            uncore_leak: Watts(self.uncore_leak_per_volt * v_unc),
            uncore_dyn: Watts(self.uncore_cdyn * uncore_freq.as_ghz() * v_unc * v_unc * unc_act),
        }
    }

    /// Convenience: total package power.
    pub fn package_total(
        &self,
        core_freq: Hertz,
        uncore_freq: Hertz,
        activity: &SocketActivity,
    ) -> Watts {
        self.package_power(core_freq, uncore_freq, activity).total()
    }

    /// The cap→frequency inversion RAPL firmware effectively performs:
    /// the highest DVFS ladder point (`min..=max` in `step`s) whose
    /// predicted package power fits `allowance`. Falls back to `min` when
    /// nothing fits (hardware cannot gate below the lowest P-state; the
    /// residual overshoot is starved away elsewhere).
    pub fn max_frequency_within(
        &self,
        min: Hertz,
        max: Hertz,
        step: Hertz,
        uncore_freq: Hertz,
        activity: &SocketActivity,
        allowance: Watts,
    ) -> Hertz {
        self.ladder_search(min, max, step, uncore_freq, activity, allowance)
            .freq
    }

    /// The same descending ladder walk as [`PowerModel::max_frequency_within`]
    /// (which delegates here — there is exactly one search implementation),
    /// but returning the predicted powers that bracket the chosen rung so a
    /// caller can memoize the result: see [`LadderPoint::stable_for`].
    pub fn ladder_search(
        &self,
        min: Hertz,
        max: Hertz,
        step: Hertz,
        uncore_freq: Hertz,
        activity: &SocketActivity,
        allowance: Watts,
    ) -> LadderPoint {
        let steps = ((max.value() - min.value()) / step.value())
            .round()
            .max(0.0) as i64;
        for i in (0..=steps).rev() {
            let f = Hertz(min.value() + i as f64 * step.value());
            let power_at = self.package_total(f, uncore_freq, activity);
            if power_at <= allowance {
                let power_above = (i < steps).then(|| {
                    let above = Hertz(min.value() + (i + 1) as f64 * step.value());
                    self.package_total(above, uncore_freq, activity)
                });
                return LadderPoint {
                    freq: f,
                    fits: true,
                    power_at,
                    power_above,
                };
            }
        }
        LadderPoint {
            freq: min,
            fits: false,
            power_at: self.package_total(min, uncore_freq, activity),
            power_above: None,
        }
    }
}

/// The rung [`PowerModel::ladder_search`] chose, plus the predicted powers
/// bounding the allowance interval over which the choice is stable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderPoint {
    /// The chosen frequency (the fallback `min` when nothing fits).
    pub freq: Hertz,
    /// Whether `freq`'s predicted power fit the allowance (`false` marks
    /// the nothing-fits fallback to `min`).
    pub fits: bool,
    /// Predicted package power at `freq`.
    pub power_at: Watts,
    /// Predicted package power one rung above `freq`; `None` when `freq`
    /// is already the top rung (or on the fallback path).
    pub power_above: Option<Watts>,
}

impl LadderPoint {
    /// True when re-running the search with `allowance` (same frequency
    /// range, uncore and activity) is guaranteed to return `freq` again,
    /// using the exact `<=` comparisons the search itself performs. Relies
    /// on package power being monotone in core frequency (the model is, by
    /// construction: voltage and every dynamic/leakage term are
    /// non-decreasing in `f`), so "this rung fits, the next one up does
    /// not" pins the descending walk's first hit.
    pub fn stable_for(&self, allowance: Watts) -> bool {
        if !self.fits {
            return !(self.power_at <= allowance);
        }
        self.power_at <= allowance && self.power_above.is_none_or(|p| !(p <= allowance))
    }
}

/// DRAM power per NUMA node: a static term plus an energy-per-byte term.
///
/// DRAM power capping is *not* available on the paper's platform (§II-B),
/// so this domain is measurement-only; it moves with achieved bandwidth,
/// which is how DUFP's slowdowns translate into the Fig. 4 DRAM savings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramPowerModel {
    /// Background power (refresh, PLLs) per node.
    pub background: Watts,
    /// Energy per byte transferred (joules/byte).
    pub energy_per_byte: f64,
}

impl DramPowerModel {
    /// 64 GiB DDR4-2666 node as on YETI.
    pub fn ddr4_64gib() -> Self {
        DramPowerModel {
            background: Watts(15.0),
            energy_per_byte: 0.15e-9,
        }
    }

    /// DRAM power while moving `bw` bytes/s.
    pub fn power(&self, bw: BytesPerSec) -> Watts {
        self.background + Watts(self.energy_per_byte * bw.value().max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn compute_bound() -> SocketActivity {
        SocketActivity {
            core_util: 0.95,
            mem_util: 0.05,
            active_cores: 16,
        }
    }

    fn memory_bound() -> SocketActivity {
        SocketActivity {
            core_util: 0.55,
            mem_util: 1.0,
            active_cores: 16,
        }
    }

    #[test]
    fn compute_bound_sits_near_pl1() {
        let m = PowerModel::xeon_gold_6130();
        let p = m.package_total(Hertz::from_ghz(2.8), Hertz::from_ghz(2.4), &compute_bound());
        assert!(
            (115.0..140.0).contains(&p.value()),
            "compute-bound default power {p} should ride PL1=125W"
        );
    }

    #[test]
    fn min_frequency_memory_phase_fits_under_cap_floor() {
        // The paper's 65 W floor must be reachable for highly-memory phases
        // with cores at fmin and the uncore near its bandwidth knee.
        let m = PowerModel::xeon_gold_6130();
        let act = SocketActivity {
            core_util: 0.2,
            mem_util: 1.0,
            active_cores: 16,
        };
        let p = m.package_total(Hertz::from_ghz(1.0), Hertz::from_ghz(2.0), &act);
        assert!(p.value() < 65.0, "got {p}");
    }

    #[test]
    fn uncore_scaling_saves_double_digit_watts_for_compute_phases() {
        // EP's mechanism: uncore 2.4 → 1.2 GHz with near-zero traffic.
        let m = PowerModel::xeon_gold_6130();
        let act = SocketActivity {
            core_util: 0.95,
            mem_util: 0.02,
            active_cores: 16,
        };
        let hi = m.package_total(Hertz::from_ghz(2.8), Hertz::from_ghz(2.4), &act);
        let lo = m.package_total(Hertz::from_ghz(2.8), Hertz::from_ghz(1.2), &act);
        let saved = hi - lo;
        assert!(
            (10.0..25.0).contains(&saved.value()),
            "uncore span saving {saved}"
        );
    }

    #[test]
    fn core_throttling_saves_superlinearly() {
        let m = PowerModel::xeon_gold_6130();
        let hi = m.package_total(Hertz::from_ghz(2.8), Hertz::from_ghz(2.4), &compute_bound());
        let lo = m.package_total(
            Hertz::from_ghz(2.24),
            Hertz::from_ghz(2.4),
            &compute_bound(),
        );
        // 20 % frequency cut must save clearly more than 20 % of the core
        // dynamic share (voltage rides down too).
        let b_hi = m.package_power(Hertz::from_ghz(2.8), Hertz::from_ghz(2.4), &compute_bound());
        let dyn_cut = (hi - lo).value() / b_hi.core_dyn.value();
        assert!(dyn_cut > 0.25, "dyn share cut {dyn_cut}");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = PowerModel::xeon_gold_6130();
        let b = m.package_power(Hertz::from_ghz(2.1), Hertz::from_ghz(1.8), &memory_bound());
        let sum = b.base + b.core_leak + b.core_dyn + b.uncore_leak + b.uncore_dyn;
        assert_eq!(b.total(), sum);
    }

    #[test]
    fn frequency_inversion_is_exact_and_safe() {
        let m = PowerModel::xeon_gold_6130();
        let act = compute_bound();
        let (lo, hi, step) = (
            Hertz::from_ghz(1.0),
            Hertz::from_ghz(2.8),
            Hertz::from_mhz(100.0),
        );
        // Unconstrained → the maximum.
        let f = m.max_frequency_within(lo, hi, step, Hertz::from_ghz(2.4), &act, Watts(500.0));
        assert_eq!(f, hi);
        // Impossible → the minimum.
        let f = m.max_frequency_within(lo, hi, step, Hertz::from_ghz(2.4), &act, Watts(1.0));
        assert_eq!(f, lo);
        // In between: the chosen point fits, the next step up does not.
        let allowance = Watts(100.0);
        let f = m.max_frequency_within(lo, hi, step, Hertz::from_ghz(2.4), &act, allowance);
        assert!(m.package_total(f, Hertz::from_ghz(2.4), &act) <= allowance);
        let above = Hertz(f.value() + step.value());
        assert!(m.package_total(above, Hertz::from_ghz(2.4), &act) > allowance);
    }

    proptest! {
        #[test]
        fn frequency_inversion_monotone_in_allowance(a in 20.0f64..200.0, b in 20.0f64..200.0) {
            let m = PowerModel::xeon_gold_6130();
            let act = SocketActivity { core_util: 0.8, mem_util: 0.3, active_cores: 16 };
            let (lo_w, hi_w) = if a <= b { (a, b) } else { (b, a) };
            let args = (
                Hertz::from_ghz(1.0),
                Hertz::from_ghz(2.8),
                Hertz::from_mhz(100.0),
                Hertz::from_ghz(2.0),
            );
            let f_lo = m.max_frequency_within(args.0, args.1, args.2, args.3, &act, Watts(lo_w));
            let f_hi = m.max_frequency_within(args.0, args.1, args.2, args.3, &act, Watts(hi_w));
            prop_assert!(f_lo <= f_hi);
        }

        #[test]
        fn ladder_point_stability_predicts_the_search(
            a1 in 20.0f64..200.0,
            a2 in 20.0f64..200.0,
            util in 0.0f64..1.0,
        ) {
            let m = PowerModel::xeon_gold_6130();
            let act = SocketActivity { core_util: util, mem_util: 0.3, active_cores: 16 };
            let args = (
                Hertz::from_ghz(1.0),
                Hertz::from_ghz(2.8),
                Hertz::from_mhz(100.0),
                Hertz::from_ghz(2.0),
            );
            let point = m.ladder_search(args.0, args.1, args.2, args.3, &act, Watts(a1));
            // The delegation is exact.
            prop_assert_eq!(
                point.freq,
                m.max_frequency_within(args.0, args.1, args.2, args.3, &act, Watts(a1))
            );
            // A point is always stable for the allowance that produced it.
            prop_assert!(point.stable_for(Watts(a1)));
            // Stability at any other allowance implies the search agrees.
            if point.stable_for(Watts(a2)) {
                prop_assert_eq!(
                    m.max_frequency_within(args.0, args.1, args.2, args.3, &act, Watts(a2)),
                    point.freq
                );
            }
        }
    }

    #[test]
    fn dram_power_tracks_bandwidth() {
        let d = DramPowerModel::ddr4_64gib();
        let idle = d.power(BytesPerSec::ZERO);
        let busy = d.power(BytesPerSec::from_gib(90.0));
        assert_eq!(idle, Watts(15.0));
        assert!((busy.value() - 29.49).abs() < 0.1, "busy = {busy}");
    }

    #[test]
    fn idle_socket_power_is_floor_plus_leakage() {
        let m = PowerModel::xeon_gold_6130();
        let p = m.package_power(
            Hertz::from_ghz(1.0),
            Hertz::from_ghz(1.2),
            &SocketActivity::idle(),
        );
        assert_eq!(p.core_dyn, Watts::ZERO);
        assert!(p.total().value() > 20.0 && p.total().value() < 60.0);
    }

    proptest! {
        #[test]
        fn power_monotone_in_core_freq(
            f1 in 1.0f64..2.8, f2 in 1.0f64..2.8,
            util in 0.0f64..1.0,
        ) {
            let m = PowerModel::xeon_gold_6130();
            let act = SocketActivity { core_util: util, mem_util: 0.5, active_cores: 16 };
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            let p_lo = m.package_total(Hertz::from_ghz(lo), Hertz::from_ghz(1.8), &act);
            let p_hi = m.package_total(Hertz::from_ghz(hi), Hertz::from_ghz(1.8), &act);
            prop_assert!(p_lo.value() <= p_hi.value() + 1e-9);
        }

        #[test]
        fn power_monotone_in_uncore_freq(
            u1 in 1.2f64..2.4, u2 in 1.2f64..2.4,
            mem in 0.0f64..1.0,
        ) {
            let m = PowerModel::xeon_gold_6130();
            let act = SocketActivity { core_util: 0.5, mem_util: mem, active_cores: 16 };
            let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
            let p_lo = m.package_total(Hertz::from_ghz(2.0), Hertz::from_ghz(lo), &act);
            let p_hi = m.package_total(Hertz::from_ghz(2.0), Hertz::from_ghz(hi), &act);
            prop_assert!(p_lo.value() <= p_hi.value() + 1e-9);
        }

        #[test]
        fn power_monotone_in_activity(a1 in 0.0f64..1.0, a2 in 0.0f64..1.0) {
            let m = PowerModel::xeon_gold_6130();
            let (lo, hi) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
            let mk = |u| SocketActivity { core_util: u, mem_util: u, active_cores: 16 };
            let p_lo = m.package_total(Hertz::from_ghz(2.0), Hertz::from_ghz(1.8), &mk(lo));
            let p_hi = m.package_total(Hertz::from_ghz(2.0), Hertz::from_ghz(1.8), &mk(hi));
            prop_assert!(p_lo.value() <= p_hi.value() + 1e-9);
        }

        #[test]
        fn activity_out_of_range_is_clamped(u in -3.0f64..4.0) {
            let m = PowerModel::xeon_gold_6130();
            let act = SocketActivity { core_util: u, mem_util: u, active_cores: 16 };
            let p = m.package_total(Hertz::from_ghz(2.0), Hertz::from_ghz(1.8), &act);
            let lo = m.package_total(
                Hertz::from_ghz(2.0), Hertz::from_ghz(1.8),
                &SocketActivity { core_util: 0.0, mem_util: 0.0, active_cores: 16 },
            );
            let hi = m.package_total(
                Hertz::from_ghz(2.0), Hertz::from_ghz(1.8),
                &SocketActivity { core_util: 1.0, mem_util: 1.0, active_cores: 16 },
            );
            prop_assert!(p.value() >= lo.value() - 1e-9 && p.value() <= hi.value() + 1e-9);
        }
    }
}
