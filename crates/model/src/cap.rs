//! RAPL power-cap enforcement model.
//!
//! Real RAPL keeps a *running average* of package power inside each
//! constraint's time window and throttles core frequency (DVFS) when the
//! average approaches the limit (§II-B of the paper). Two behaviours matter
//! to DUFP and are reproduced here:
//!
//! * **Burst headroom** — after a quiet spell the package may exceed PL1
//!   (up to PL2) for a short while: the long-window average has slack.
//! * **Settle latency** — a freshly written, lower limit takes a little
//!   while to bite; the measured power transiently exceeds the new cap.
//!   DUFP §IV-D detects exactly this and resets the cap when it happens.
//!
//! The enforcer exposes a single *power allowance*: the instantaneous
//! package power the firmware will currently tolerate. The simulator picks
//! the highest DVFS point whose predicted power fits the allowance.

use dufp_types::{Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Tuning of the enforcement dynamics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapEnforcerParams {
    /// First-order time constant with which a new limit takes effect.
    pub settle_tau: Seconds,
    /// How much of the long-window slack converts into burst allowance.
    pub burst_gain: f64,
}

impl Default for CapEnforcerParams {
    fn default() -> Self {
        CapEnforcerParams {
            settle_tau: Seconds(0.015),
            burst_gain: 0.5,
        }
    }
}

/// The per-`dt` gains of [`CapEnforcer::step`], precomputed once.
///
/// All of `step`'s dependence on `dt` (and on the enforcer's windows and
/// settle constant) lives in three scalars; with a fixed tick they are
/// bit-stable across ticks, so the fast-path simulator computes them once
/// per memoized stretch via [`CapEnforcer::gains`] and replays the cheap
/// remainder with [`CapEnforcer::step_with_gains`]. `step` itself
/// delegates through this type, which makes tick-engine and fast-path
/// arithmetic identical by construction, not by parallel maintenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapGains {
    /// Long-window EMA coefficient for this `dt`.
    pub a_long: f64,
    /// Short-window EMA coefficient for this `dt`.
    pub a_short: f64,
    /// First-order settle coefficient for this `dt`.
    pub k: f64,
}

/// Windowed-average power-limit enforcement for one package.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapEnforcer {
    params: CapEnforcerParams,
    pl1: Watts,
    pl1_window: Seconds,
    pl2: Watts,
    pl2_window: Seconds,
    ema_long: f64,
    ema_short: f64,
    allowance: f64,
}

impl CapEnforcer {
    /// Creates an enforcer with the given limits; averages start at the PL1
    /// level (no artificial cold-start burst).
    pub fn new(
        pl1: Watts,
        pl1_window: Seconds,
        pl2: Watts,
        pl2_window: Seconds,
        params: CapEnforcerParams,
    ) -> Self {
        CapEnforcer {
            params,
            pl1,
            pl1_window,
            pl2,
            pl2_window,
            ema_long: pl1.value(),
            ema_short: pl1.value(),
            allowance: pl1.value(),
        }
    }

    /// Replaces both limits (what a `MSR_PKG_POWER_LIMIT` write does). The
    /// running averages are *kept* — that is what makes a cap decrease
    /// settle gradually.
    pub fn set_limits(&mut self, pl1: Watts, pl2: Watts) {
        self.pl1 = pl1;
        self.pl2 = pl2;
    }

    /// Current long-term limit.
    pub fn pl1(&self) -> Watts {
        self.pl1
    }

    /// Current short-term limit.
    pub fn pl2(&self) -> Watts {
        self.pl2
    }

    /// Long-window average power currently tracked by the firmware.
    pub fn long_window_avg(&self) -> Watts {
        Watts(self.ema_long)
    }

    /// Advances the firmware state by `dt` with `measured` package power,
    /// returning the updated instantaneous power allowance.
    pub fn step(&mut self, dt: Seconds, measured: Watts) -> Watts {
        let gains = self.gains(dt);
        self.step_with_gains(measured, &gains)
    }

    /// The EMA and settle coefficients `step` would use for this `dt`.
    /// Valid until the windows or settle constant change (they only change
    /// by replacing the whole enforcer).
    pub fn gains(&self, dt: Seconds) -> CapGains {
        CapGains {
            a_long: (dt.value() / self.pl1_window.value().max(1e-6)).clamp(0.0, 1.0),
            a_short: (dt.value() / self.pl2_window.value().max(1e-6)).clamp(0.0, 1.0),
            k: 1.0 - (-dt.value() / self.params.settle_tau.value().max(1e-6)).exp(),
        }
    }

    /// The body of [`CapEnforcer::step`] with the `dt`-derived gains
    /// supplied by the caller — the fast-path hot loop, with `step`'s
    /// division/`exp` hoisted out. Passing `self.gains(dt)` makes this
    /// bit-identical to `step(dt, measured)`.
    pub fn step_with_gains(&mut self, measured: Watts, gains: &CapGains) -> Watts {
        self.ema_long += gains.a_long * (measured.value() - self.ema_long);
        self.ema_short += gains.a_short * (measured.value() - self.ema_short);

        let pl1_allow =
            self.pl1.value() + self.params.burst_gain * (self.pl1.value() - self.ema_long);
        let pl2_allow = self.pl2.value();
        let target = pl1_allow.min(pl2_allow).max(0.0);

        // First-order settle toward the target allowance.
        self.allowance += gains.k * (target - self.allowance);
        Watts(self.allowance)
    }

    /// The instantaneous allowance without advancing time.
    pub fn allowance(&self) -> Watts {
        Watts(self.allowance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn yeti_enforcer() -> CapEnforcer {
        CapEnforcer::new(
            Watts(125.0),
            Seconds(1.0),
            Watts(150.0),
            Seconds(0.01),
            CapEnforcerParams::default(),
        )
    }

    /// Runs the enforcer for `secs`, with the package always consuming
    /// exactly the allowance (a perfectly cap-riding workload).
    fn run_riding(e: &mut CapEnforcer, secs: f64) -> Watts {
        let dt = Seconds(0.001);
        let mut allow = e.allowance();
        let steps = (secs / dt.value()) as usize;
        for _ in 0..steps {
            allow = e.step(dt, allow);
        }
        allow
    }

    #[test]
    fn steady_state_rides_pl1() {
        let mut e = yeti_enforcer();
        let allow = run_riding(&mut e, 3.0);
        assert!(
            (allow.value() - 125.0).abs() < 1.0,
            "steady allowance {allow} should converge to PL1"
        );
    }

    #[test]
    fn quiet_spell_earns_burst_headroom_up_to_pl2() {
        let mut e = yeti_enforcer();
        // Idle at 40 W for 3 s: the long window drains.
        let dt = Seconds(0.001);
        for _ in 0..3000 {
            e.step(dt, Watts(40.0));
        }
        let allow = e.step(dt, Watts(40.0));
        assert!(allow.value() > 130.0, "post-idle burst {allow}");
        assert!(allow.value() <= 150.0 + 1e-9, "bounded by PL2");
    }

    #[test]
    fn lowering_cap_settles_gradually() {
        let mut e = yeti_enforcer();
        run_riding(&mut e, 2.0);
        e.set_limits(Watts(100.0), Watts(100.0));
        // Immediately after the write the allowance still exceeds the new
        // cap — the §IV-D transient DUFP must tolerate.
        let first = e.step(Seconds(0.001), Watts(125.0));
        assert!(first.value() > 100.0, "transient overshoot, got {first}");
        // But within ~10 settle constants it is enforced.
        let mut allow = first;
        for _ in 0..200 {
            allow = e.step(Seconds(0.001), allow);
        }
        assert!(
            allow.value() <= 101.0,
            "cap must bite after settling, got {allow}"
        );
    }

    #[test]
    fn raising_cap_restores_allowance() {
        let mut e = yeti_enforcer();
        e.set_limits(Watts(80.0), Watts(80.0));
        run_riding(&mut e, 2.0);
        e.set_limits(Watts(125.0), Watts(150.0));
        let allow = run_riding(&mut e, 2.0);
        assert!((allow.value() - 125.0).abs() < 2.0, "restored {allow}");
    }

    #[test]
    fn zero_cap_drives_allowance_to_zero() {
        let mut e = yeti_enforcer();
        e.set_limits(Watts(0.0), Watts(0.0));
        let allow = run_riding(&mut e, 1.0);
        assert!(allow.value() < 1.0, "got {allow}");
    }

    proptest! {
        #[test]
        fn allowance_bounded_and_settles_under_pl2(
            power in 0.0f64..300.0,
            pl1 in 40.0f64..125.0,
            steps in 1usize..500,
        ) {
            let mut e = yeti_enforcer();
            e.set_limits(Watts(pl1), Watts(pl1 + 25.0));
            let mut allow = Watts(0.0);
            for _ in 0..steps {
                allow = e.step(Seconds(0.001), Watts(power));
            }
            // During the settle transient the allowance may still reflect
            // the previous (higher) limits, but never more than the larger
            // of the old allowance and the new PL2.
            prop_assert!(allow.value() <= 125.0f64.max(pl1 + 25.0) + 1e-6);
            prop_assert!(allow.value() >= 0.0);
            // Once settled (≫ settle_tau), PL2 strictly bounds it.
            for _ in 0..500 {
                allow = e.step(Seconds(0.001), Watts(power));
            }
            prop_assert!(allow.value() <= pl1 + 25.0 + 1e-6);
        }

        #[test]
        fn step_with_gains_is_bit_identical_to_step(
            powers in proptest::collection::vec(0.0f64..300.0, 1..200),
            pl1 in 40.0f64..125.0,
        ) {
            let mut a = yeti_enforcer();
            let mut b = yeti_enforcer();
            a.set_limits(Watts(pl1), Watts(pl1 + 25.0));
            b.set_limits(Watts(pl1), Watts(pl1 + 25.0));
            let dt = Seconds(0.001);
            let gains = b.gains(dt);
            for p in powers {
                let x = a.step(dt, Watts(p));
                let y = b.step_with_gains(Watts(p), &gains);
                prop_assert_eq!(x.value().to_bits(), y.value().to_bits());
            }
            prop_assert_eq!(&a, &b);
        }

        #[test]
        fn long_window_average_tracks_input(power in 10.0f64..200.0) {
            let mut e = yeti_enforcer();
            for _ in 0..20_000 {
                e.step(Seconds(0.001), Watts(power));
            }
            prop_assert!((e.long_window_avg().value() - power).abs() < 1.0);
        }
    }
}
