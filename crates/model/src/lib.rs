//! Analytic hardware models for the DUFP socket simulator.
//!
//! The paper's controllers observe only three signals — FLOPS/s, memory
//! bandwidth and power — and actuate only two knobs — uncore frequency and
//! the RAPL package power limit. This crate captures the *transfer
//! functions* that connect knobs to signals on a Skylake-SP package:
//!
//! * [`vf`] — the voltage/frequency operating curve,
//! * [`power`] — package power as a function of core/uncore frequency and
//!   activity, plus the DRAM power model,
//! * [`bandwidth`] — achievable memory bandwidth as a function of uncore
//!   frequency and power-cap pressure,
//! * [`perf`] — roofline phase progress (compute-rate vs memory-rate with
//!   partial overlap),
//! * [`cap`] — the RAPL firmware's enforcement loop: windowed power
//!   averaging and DVFS throttling to honor PL1/PL2, including the settle
//!   latency the paper works around in §IV-D.
//!
//! All models are pure value types: given the same inputs they produce the
//! same outputs, which keeps the simulator deterministic and the models
//! unit- and property-testable in isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod cap;
pub mod perf;
pub mod power;
pub mod vf;

pub use bandwidth::BandwidthModel;
pub use cap::{CapEnforcer, CapEnforcerParams, CapGains};
pub use perf::{PhaseKind, PhaseRates, RooflineModel};
pub use power::{DramPowerModel, LadderPoint, PowerBreakdown, PowerModel, SocketActivity};
pub use vf::VfCurve;
