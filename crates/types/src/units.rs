//! Physical unit newtypes.
//!
//! Every quantity the suite manipulates — frequencies, powers, energies,
//! throughputs and dimensionless ratios — gets its own newtype so the type
//! system rules out dimension mistakes. Arithmetic is implemented only where
//! it is dimensionally meaningful (`Watts * Seconds = Joules`,
//! `FlopsPerSec / BytesPerSec = OpIntensity`, ...).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the boilerplate shared by all `f64` newtype units.
macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[repr(transparent)]
        #[serde(transparent)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value of this unit.
            pub const ZERO: Self = Self(0.0);

            /// Raw `f64` magnitude in the unit's base dimension.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Smaller of two values (NaN-safe via `f64::min`).
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Larger of two values (NaN-safe via `f64::max`).
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// `true` when the magnitude is a finite number.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Total ordering (IEEE `total_cmp`), usable as a sort key.
            #[inline]
            pub fn total_cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = Ratio;
            #[inline]
            fn div(self, rhs: $name) -> Ratio {
                Ratio(self.0 / rhs.0)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{:.3} {}", self.0, $suffix)
                }
            }
        }
    };
}

unit!(
    /// A frequency in hertz. Used for both core and uncore clocks.
    ///
    /// ```
    /// use dufp_types::Hertz;
    /// let uncore = Hertz::from_ghz(2.4);
    /// assert_eq!(uncore.as_ratio_100mhz(), 24); // the MSR encoding
    /// assert_eq!(Hertz::from_ratio_100mhz(12), Hertz::from_ghz(1.2));
    /// ```
    Hertz,
    "Hz"
);

unit!(
    /// Instantaneous power in watts.
    ///
    /// ```
    /// use dufp_types::{Watts, Seconds, Joules};
    /// // Dimensional arithmetic is checked by the type system:
    /// let energy: Joules = Watts(125.0) * Seconds(2.0);
    /// assert_eq!(energy, Joules(250.0));
    /// assert_eq!(energy / Seconds(2.0), Watts(125.0));
    /// ```
    Watts,
    "W"
);

unit!(
    /// Energy in joules.
    Joules,
    "J"
);

unit!(
    /// A span of wall-clock (or simulated) time in seconds, as a float.
    ///
    /// The simulator's own clock is the integer [`crate::time::Instant`];
    /// `Seconds` is the analytic/float view used by the models.
    Seconds,
    "s"
);

unit!(
    /// Floating-point operation throughput (FLOP/s).
    FlopsPerSec,
    "FLOP/s"
);

unit!(
    /// Memory traffic throughput (bytes/s).
    BytesPerSec,
    "B/s"
);

unit!(
    /// A dimensionless ratio. Used for slowdown tolerances, normalized
    /// results ("% over default"), and efficiency factors.
    Ratio,
    ""
);

unit!(
    /// Operational intensity: FLOP per byte of memory traffic.
    ///
    /// The paper's phase classifier: `oi < 1` memory-intensive,
    /// `oi < 0.02` *highly* memory-intensive, `oi > 100` *highly*
    /// compute-intensive.
    OpIntensity,
    "FLOP/B"
);

impl Hertz {
    /// Builds a frequency from megahertz.
    #[inline]
    pub const fn from_mhz(mhz: f64) -> Self {
        Hertz(mhz * 1.0e6)
    }

    /// Builds a frequency from gigahertz.
    #[inline]
    pub const fn from_ghz(ghz: f64) -> Self {
        Hertz(ghz * 1.0e9)
    }

    /// Frequency in megahertz.
    #[inline]
    pub fn as_mhz(self) -> f64 {
        self.0 / 1.0e6
    }

    /// Frequency in gigahertz.
    #[inline]
    pub fn as_ghz(self) -> f64 {
        self.0 / 1.0e9
    }

    /// Converts to the 100 MHz bus-clock multiplier used by Intel MSRs
    /// (rounded to nearest).
    #[inline]
    pub fn as_ratio_100mhz(self) -> u8 {
        (self.0 / 1.0e8).round().clamp(0.0, 255.0) as u8
    }

    /// Builds a frequency from a 100 MHz bus-clock multiplier.
    #[inline]
    pub const fn from_ratio_100mhz(ratio: u8) -> Self {
        Hertz(ratio as f64 * 1.0e8)
    }
}

impl Ratio {
    /// The identity ratio (100 %).
    pub const ONE: Self = Ratio(1.0);

    /// Builds a ratio from a percentage (`5.0` → `0.05`).
    #[inline]
    pub const fn from_percent(pct: f64) -> Self {
        Ratio(pct / 100.0)
    }

    /// The ratio as a percentage.
    #[inline]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }
}

impl Seconds {
    /// Builds a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: f64) -> Self {
        Seconds(ms / 1.0e3)
    }

    /// Duration in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1.0e3
    }
}

impl BytesPerSec {
    /// Builds a throughput from GiB/s.
    #[inline]
    pub const fn from_gib(gib: f64) -> Self {
        BytesPerSec(gib * (1024.0 * 1024.0 * 1024.0))
    }

    /// Throughput in GiB/s.
    #[inline]
    pub fn as_gib(self) -> f64 {
        self.0 / (1024.0 * 1024.0 * 1024.0)
    }
}

impl FlopsPerSec {
    /// Builds a throughput from GFLOP/s.
    #[inline]
    pub const fn from_gflops(g: f64) -> Self {
        FlopsPerSec(g * 1.0e9)
    }

    /// Throughput in GFLOP/s.
    #[inline]
    pub fn as_gflops(self) -> f64 {
        self.0 / 1.0e9
    }
}

// ---- cross-dimension arithmetic ----

impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Div<BytesPerSec> for FlopsPerSec {
    type Output = OpIntensity;
    #[inline]
    fn div(self, rhs: BytesPerSec) -> OpIntensity {
        OpIntensity(self.0 / rhs.0)
    }
}

impl Mul<BytesPerSec> for OpIntensity {
    type Output = FlopsPerSec;
    #[inline]
    fn mul(self, rhs: BytesPerSec) -> FlopsPerSec {
        FlopsPerSec(self.0 * rhs.0)
    }
}

impl Div<OpIntensity> for FlopsPerSec {
    type Output = BytesPerSec;
    #[inline]
    fn div(self, rhs: OpIntensity) -> BytesPerSec {
        BytesPerSec(self.0 / rhs.0)
    }
}

impl Mul<Ratio> for Watts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Ratio) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Ratio> for Hertz {
    type Output = Hertz;
    #[inline]
    fn mul(self, rhs: Ratio) -> Hertz {
        Hertz(self.0 * rhs.0)
    }
}

impl Mul<Ratio> for FlopsPerSec {
    type Output = FlopsPerSec;
    #[inline]
    fn mul(self, rhs: Ratio) -> FlopsPerSec {
        FlopsPerSec(self.0 * rhs.0)
    }
}

impl Mul<Ratio> for BytesPerSec {
    type Output = BytesPerSec;
    #[inline]
    fn mul(self, rhs: Ratio) -> BytesPerSec {
        BytesPerSec(self.0 * rhs.0)
    }
}

impl Mul<Seconds> for FlopsPerSec {
    /// Total floating-point operations executed over a span (dimensionless count).
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Seconds) -> f64 {
        self.0 * rhs.0
    }
}

impl Mul<Seconds> for BytesPerSec {
    /// Total bytes moved over a span (dimensionless count).
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Seconds) -> f64 {
        self.0 * rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn watts_times_seconds_is_joules() {
        let e = Watts(125.0) * Seconds(2.0);
        assert_eq!(e, Joules(250.0));
        assert_eq!(e / Seconds(2.0), Watts(125.0));
        assert_eq!(e / Watts(125.0), Seconds(2.0));
    }

    #[test]
    fn operational_intensity_round_trips() {
        let f = FlopsPerSec::from_gflops(100.0);
        let b = BytesPerSec::from_gib(50.0);
        let oi = f / b;
        let f2 = oi * b;
        assert!((f2.0 - f.0).abs() < 1e-3);
    }

    #[test]
    fn hertz_conversions() {
        assert_eq!(Hertz::from_ghz(2.4).as_mhz(), 2400.0);
        assert_eq!(Hertz::from_mhz(1200.0).as_ghz(), 1.2);
        assert_eq!(Hertz::from_ghz(2.4).as_ratio_100mhz(), 24);
        assert_eq!(Hertz::from_ratio_100mhz(12), Hertz::from_ghz(1.2));
    }

    #[test]
    fn ratio_percent_round_trip() {
        assert_eq!(Ratio::from_percent(5.0).as_percent(), 5.0);
        assert_eq!(Ratio::ONE.as_percent(), 100.0);
    }

    #[test]
    fn like_division_gives_ratio() {
        let r = Watts(110.0) / Watts(125.0);
        assert!((r.0 - 0.88).abs() < 1e-12);
    }

    #[test]
    fn display_has_unit_suffix() {
        assert_eq!(format!("{:.1}", Watts(125.0)), "125.0 W");
        assert_eq!(format!("{:.0}", Hertz::from_ghz(2.0)), "2000000000 Hz");
        assert_eq!(format!("{}", Joules(1.5)), "1.500 J");
    }

    #[test]
    fn clamp_and_min_max() {
        assert_eq!(Watts(200.0).clamp(Watts(65.0), Watts(125.0)), Watts(125.0));
        assert_eq!(Watts(10.0).clamp(Watts(65.0), Watts(125.0)), Watts(65.0));
        assert_eq!(Watts(3.0).min(Watts(2.0)), Watts(2.0));
        assert_eq!(Watts(3.0).max(Watts(2.0)), Watts(3.0));
    }

    #[test]
    fn sum_of_units() {
        let total: Joules = [Joules(1.0), Joules(2.5), Joules(0.5)].into_iter().sum();
        assert_eq!(total, Joules(4.0));
    }

    #[test]
    fn seconds_millis_round_trip() {
        assert_eq!(Seconds::from_millis(200.0).value(), 0.2);
        assert_eq!(Seconds(0.05).as_millis(), 50.0);
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&Watts(125.0)).unwrap();
        assert_eq!(json, "125.0");
        let back: Watts = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Watts(125.0));
    }

    proptest! {
        #[test]
        fn add_sub_inverse(a in -1e9f64..1e9, b in -1e9f64..1e9) {
            let w = Watts(a) + Watts(b) - Watts(b);
            prop_assert!((w.0 - a).abs() <= 1e-6 * a.abs().max(1.0));
        }

        #[test]
        fn energy_power_duality(p in 0.0f64..1e4, t in 1e-6f64..1e4) {
            let e = Watts(p) * Seconds(t);
            let p2 = e / Seconds(t);
            prop_assert!((p2.0 - p).abs() <= 1e-9 * p.max(1.0));
        }

        #[test]
        fn ratio_mul_monotone(p in 0.0f64..1e4, r in 0.0f64..1.0) {
            let scaled = Watts(p) * Ratio(r);
            prop_assert!(scaled.0 <= p + 1e-12);
        }

        #[test]
        fn hertz_ratio_round_trip(ratio in 0u8..=60) {
            let hz = Hertz::from_ratio_100mhz(ratio);
            prop_assert_eq!(hz.as_ratio_100mhz(), ratio);
        }
    }
}
