//! Shared vocabulary types for the DUFP suite.
//!
//! This crate defines the strongly-typed physical units (frequency, power,
//! energy, throughput), hardware identifiers, architecture descriptions and
//! the common error type used by every other crate in the workspace.
//!
//! The design goal is that quantities with different dimensions can never be
//! confused: a [`units::Watts`] cannot be added to a [`units::Joules`], a
//! core frequency cannot be passed where an uncore ratio is expected, and so
//! on. All unit types are thin `f64` newtypes with `#[repr(transparent)]`,
//! so they are free at runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod error;
pub mod ids;
pub mod shutdown;
pub mod time;
pub mod units;

pub use arch::ArchSpec;
pub use error::{Error, Result};
pub use ids::{CoreId, SocketId};
pub use time::{Duration, Instant};
pub use units::{BytesPerSec, FlopsPerSec, Hertz, Joules, OpIntensity, Ratio, Seconds, Watts};
