//! Process-wide cooperative shutdown flag.
//!
//! The CLI's signal handler sets the flag from Ctrl-C; long-running loops
//! (the experiment runner, cluster drivers) poll it between intervals and
//! unwind cleanly, which lets the RAII safe-state guards restore hardware
//! defaults on the way out. Signal handlers may only do async-signal-safe
//! work, and a relaxed atomic store is exactly that.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

/// Requests shutdown (async-signal-safe; callable from a signal handler).
pub fn request() {
    REQUESTED.store(true, Ordering::Relaxed);
}

/// Whether shutdown has been requested.
pub fn requested() -> bool {
    REQUESTED.load(Ordering::Relaxed)
}

/// Clears the flag (start of a new run, or tests).
pub fn reset() {
    REQUESTED.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        reset();
        assert!(!requested());
        request();
        assert!(requested());
        request();
        assert!(requested(), "idempotent");
        reset();
        assert!(!requested());
    }
}
