//! Hardware identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one processor package (socket) in a machine.
///
/// DUFP runs one controller instance per socket, exactly as the paper's tool
/// does ("one instance of DUFP is started on each user-specified socket").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct SocketId(pub u16);

/// Identifies one core within the whole machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId {
    /// The socket the core belongs to.
    pub socket: SocketId,
    /// Core index within the socket, `0..cores_per_socket`.
    pub index: u16,
}

impl SocketId {
    /// Numeric value, for indexing per-socket arrays.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl CoreId {
    /// Builds a core id.
    #[inline]
    pub const fn new(socket: SocketId, index: u16) -> Self {
        CoreId { socket, index }
    }

    /// Machine-global linear index given the socket width.
    #[inline]
    pub const fn linear(self, cores_per_socket: u16) -> usize {
        self.socket.0 as usize * cores_per_socket as usize + self.index as usize
    }
}

impl fmt::Display for SocketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "socket{}", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/core{}", self.socket, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_index() {
        let c = CoreId::new(SocketId(2), 3);
        assert_eq!(c.linear(16), 35);
        assert_eq!(CoreId::new(SocketId(0), 0).linear(16), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SocketId(1).to_string(), "socket1");
        assert_eq!(CoreId::new(SocketId(1), 7).to_string(), "socket1/core7");
    }

    #[test]
    fn ordering_is_socket_major() {
        let a = CoreId::new(SocketId(0), 15);
        let b = CoreId::new(SocketId(1), 0);
        assert!(a < b);
    }
}
