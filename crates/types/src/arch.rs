//! Architecture descriptions (the paper's Table I).
//!
//! An [`ArchSpec`] captures everything the controllers and the simulator need
//! to know about a target machine: topology, frequency ranges and steps,
//! RAPL power-limit defaults and the actuation granularity the paper uses
//! (100 MHz uncore steps, 5 W cap steps, 65 W cap floor).

use crate::units::{Hertz, Seconds, Watts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Static description of one target platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchSpec {
    /// Human-readable platform name.
    pub name: String,
    /// Microarchitecture name (informational).
    pub microarch: String,
    /// Number of processor packages.
    pub sockets: u16,
    /// Cores per package (hyperthreading disabled, as in the paper).
    pub cores_per_socket: u16,
    /// Lowest core P-state frequency.
    pub core_freq_min: Hertz,
    /// Nominal (base / TDP) core frequency.
    pub core_freq_base: Hertz,
    /// Maximum all-core turbo frequency. With all 16 cores active the Xeon
    /// Gold 6130 reaches 2.8 GHz (paper, Fig. 5 caption).
    pub core_freq_max: Hertz,
    /// DVFS ladder granularity (100 MHz bus-clock multiples on Intel).
    pub core_freq_step: Hertz,
    /// Lowest uncore frequency.
    pub uncore_freq_min: Hertz,
    /// Highest uncore frequency.
    pub uncore_freq_max: Hertz,
    /// Uncore actuation step used by DUF/DUFP (100 MHz).
    pub uncore_freq_step: Hertz,
    /// Default RAPL long-term package power limit (PL1). Equals TDP.
    pub pl1_default: Watts,
    /// Default RAPL short-term package power limit (PL2).
    pub pl2_default: Watts,
    /// Default PL1 averaging window.
    pub pl1_window: Seconds,
    /// Default PL2 averaging window.
    pub pl2_window: Seconds,
    /// Cap actuation step used by DUFP (5 W).
    pub cap_step: Watts,
    /// Lowest cap DUFP will ever apply (65 W in the paper; lower values
    /// erode memory bandwidth).
    pub cap_floor: Watts,
    /// Peak memory bandwidth per socket at maximum uncore frequency.
    pub peak_bandwidth: crate::units::BytesPerSec,
    /// Peak double-precision FLOP/s per socket at maximum core frequency.
    pub peak_flops: crate::units::FlopsPerSec,
}

impl ArchSpec {
    /// The Grid'5000 YETI node (`yeti-2`) used by the paper: four Intel Xeon
    /// Gold 6130 (Skylake-SP) packages, 16 cores each, uncore 1.2–2.4 GHz,
    /// PL1 125 W / PL2 150 W.
    pub fn yeti() -> Self {
        ArchSpec {
            name: "yeti-2 (Grid'5000)".to_owned(),
            microarch: "Skylake-SP (Intel Xeon Gold 6130)".to_owned(),
            sockets: 4,
            cores_per_socket: 16,
            core_freq_min: Hertz::from_ghz(1.0),
            core_freq_base: Hertz::from_ghz(2.1),
            core_freq_max: Hertz::from_ghz(2.8),
            core_freq_step: Hertz::from_mhz(100.0),
            uncore_freq_min: Hertz::from_ghz(1.2),
            uncore_freq_max: Hertz::from_ghz(2.4),
            uncore_freq_step: Hertz::from_mhz(100.0),
            pl1_default: Watts(125.0),
            pl2_default: Watts(150.0),
            pl1_window: Seconds(1.0),
            pl2_window: Seconds(0.01),
            cap_step: Watts(5.0),
            cap_floor: Watts(65.0),
            // Skylake-SP with 6 DDR4-2666 channels: ~105 GiB/s stream-like
            // peak per socket; AVX-512 FMA peak is far higher than any of the
            // studied apps reach, the useful envelope is ~590 GFLOP/s.
            peak_bandwidth: crate::units::BytesPerSec::from_gib(105.0),
            peak_flops: crate::units::FlopsPerSec::from_gflops(590.0),
        }
    }

    /// A small two-socket, four-core configuration for fast tests.
    pub fn tiny() -> Self {
        ArchSpec {
            name: "tiny-test".to_owned(),
            microarch: "synthetic".to_owned(),
            sockets: 2,
            cores_per_socket: 4,
            core_freq_min: Hertz::from_ghz(1.0),
            core_freq_base: Hertz::from_ghz(2.0),
            core_freq_max: Hertz::from_ghz(3.0),
            core_freq_step: Hertz::from_mhz(100.0),
            uncore_freq_min: Hertz::from_ghz(1.0),
            uncore_freq_max: Hertz::from_ghz(2.0),
            uncore_freq_step: Hertz::from_mhz(100.0),
            pl1_default: Watts(60.0),
            pl2_default: Watts(75.0),
            pl1_window: Seconds(1.0),
            pl2_window: Seconds(0.01),
            cap_step: Watts(5.0),
            cap_floor: Watts(20.0),
            peak_bandwidth: crate::units::BytesPerSec::from_gib(25.0),
            peak_flops: crate::units::FlopsPerSec::from_gflops(100.0),
        }
    }

    /// Total core count across all sockets.
    #[inline]
    pub fn total_cores(&self) -> usize {
        self.sockets as usize * self.cores_per_socket as usize
    }

    /// Number of discrete uncore steps between min and max (inclusive range).
    pub fn uncore_steps(&self) -> usize {
        let span = self.uncore_freq_max.value() - self.uncore_freq_min.value();
        (span / self.uncore_freq_step.value()).round() as usize + 1
    }

    /// Number of discrete cap steps between the floor and PL1 (inclusive).
    pub fn cap_steps(&self) -> usize {
        let span = self.pl1_default.value() - self.cap_floor.value();
        (span / self.cap_step.value()).round() as usize + 1
    }

    /// Snaps a frequency onto the core DVFS ladder (clamped to range).
    pub fn snap_core_freq(&self, f: Hertz) -> Hertz {
        snap(
            f,
            self.core_freq_min,
            self.core_freq_max,
            self.core_freq_step,
        )
    }

    /// Snaps a frequency onto the uncore ladder (clamped to range).
    pub fn snap_uncore_freq(&self, f: Hertz) -> Hertz {
        snap(
            f,
            self.uncore_freq_min,
            self.uncore_freq_max,
            self.uncore_freq_step,
        )
    }

    /// Renders the paper's Table I row for this architecture.
    pub fn table1_row(&self) -> String {
        format!(
            "| {} | [{:.1}-{:.1}] | {:.0} | {:.0} |",
            self.total_cores(),
            self.uncore_freq_min.as_ghz(),
            self.uncore_freq_max.as_ghz(),
            self.pl1_default.value(),
            self.pl2_default.value(),
        )
    }
}

fn snap(f: Hertz, lo: Hertz, hi: Hertz, step: Hertz) -> Hertz {
    let clamped = f.clamp(lo, hi);
    let steps = ((clamped.value() - lo.value()) / step.value()).round();
    Hertz(lo.value() + steps * step.value()).clamp(lo, hi)
}

impl fmt::Display for ArchSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} — {}×{} cores, core {:.1}-{:.1} GHz, uncore {:.1}-{:.1} GHz, PL1 {:.0} W / PL2 {:.0} W",
            self.name,
            self.sockets,
            self.cores_per_socket,
            self.core_freq_min.as_ghz(),
            self.core_freq_max.as_ghz(),
            self.uncore_freq_min.as_ghz(),
            self.uncore_freq_max.as_ghz(),
            self.pl1_default.value(),
            self.pl2_default.value(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yeti_matches_table1() {
        let a = ArchSpec::yeti();
        assert_eq!(a.total_cores(), 64);
        assert_eq!(a.uncore_freq_min, Hertz::from_ghz(1.2));
        assert_eq!(a.uncore_freq_max, Hertz::from_ghz(2.4));
        assert_eq!(a.pl1_default, Watts(125.0));
        assert_eq!(a.pl2_default, Watts(150.0));
        assert_eq!(a.table1_row(), "| 64 | [1.2-2.4] | 125 | 150 |");
    }

    #[test]
    fn uncore_ladder_has_13_steps() {
        // 1.2, 1.3, ..., 2.4 GHz.
        assert_eq!(ArchSpec::yeti().uncore_steps(), 13);
    }

    #[test]
    fn cap_ladder_has_13_steps() {
        // 65, 70, ..., 125 W.
        assert_eq!(ArchSpec::yeti().cap_steps(), 13);
    }

    #[test]
    fn snapping_clamps_and_rounds() {
        let a = ArchSpec::yeti();
        assert_eq!(
            a.snap_uncore_freq(Hertz::from_ghz(5.0)),
            Hertz::from_ghz(2.4)
        );
        assert_eq!(
            a.snap_uncore_freq(Hertz::from_ghz(0.1)),
            Hertz::from_ghz(1.2)
        );
        assert_eq!(
            a.snap_uncore_freq(Hertz::from_mhz(1849.0)),
            Hertz::from_mhz(1800.0)
        );
        assert_eq!(
            a.snap_core_freq(Hertz::from_mhz(2751.0)),
            Hertz::from_mhz(2800.0)
        );
    }

    #[test]
    fn snapped_values_are_on_ladder() {
        let a = ArchSpec::yeti();
        for mhz in (0..4000).step_by(7) {
            let s = a.snap_uncore_freq(Hertz::from_mhz(mhz as f64));
            let offset = s.value() - a.uncore_freq_min.value();
            let rem = offset % a.uncore_freq_step.value();
            assert!(rem.abs() < 1.0 || (a.uncore_freq_step.value() - rem).abs() < 1.0);
            assert!(s >= a.uncore_freq_min && s <= a.uncore_freq_max);
        }
    }
}
