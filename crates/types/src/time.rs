//! Deterministic integer simulation time.
//!
//! The simulator advances an integer microsecond clock so that runs are
//! exactly reproducible; the analytic models use the float
//! [`crate::units::Seconds`] view. This module provides the conversions
//! between the two.

use crate::units::Seconds;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on the simulated timeline, in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Instant(pub u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Duration(pub u64);

impl Instant {
    /// Simulation start.
    pub const ZERO: Self = Instant(0);

    /// Elapsed time since `earlier`. Saturates at zero if `earlier` is later.
    #[inline]
    pub fn duration_since(self, earlier: Instant) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The instant as float seconds since simulation start.
    #[inline]
    pub fn as_seconds(self) -> Seconds {
        Seconds(self.0 as f64 / 1.0e6)
    }
}

impl Duration {
    /// The zero-length span.
    pub const ZERO: Self = Duration(0);

    /// Builds a span from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Builds a span from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Builds a span from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Builds a span from float seconds, rounding to the nearest microsecond.
    #[inline]
    pub fn from_seconds(s: Seconds) -> Self {
        Duration((s.value() * 1.0e6).round().max(0.0) as u64)
    }

    /// The span as float seconds.
    #[inline]
    pub fn as_seconds(self) -> Seconds {
        Seconds(self.0 as f64 / 1.0e6)
    }

    /// The span in whole microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// True when the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    #[inline]
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Instant {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Instant) -> Duration {
        self.duration_since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.0 as f64 / 1.0e6)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0 as f64 / 1.0e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn instant_arithmetic() {
        let t0 = Instant::ZERO;
        let t1 = t0 + Duration::from_millis(200);
        assert_eq!(t1.0, 200_000);
        assert_eq!(t1 - t0, Duration::from_millis(200));
        // saturating subtraction
        assert_eq!(t0 - t1, Duration::ZERO);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(Duration::from_secs(2).as_millis(), 2000);
        assert_eq!(Duration::from_millis(200).as_seconds(), Seconds(0.2));
        assert_eq!(
            Duration::from_seconds(Seconds(0.05)),
            Duration::from_millis(50)
        );
    }

    #[test]
    fn negative_float_seconds_clamp_to_zero() {
        assert_eq!(Duration::from_seconds(Seconds(-1.0)), Duration::ZERO);
    }

    proptest! {
        #[test]
        fn round_trip_micros(us in 0u64..10_000_000_000) {
            let d = Duration::from_micros(us);
            prop_assert_eq!(Duration::from_seconds(d.as_seconds()).as_micros(), us);
        }

        #[test]
        fn add_then_since(start in 0u64..1_000_000_000, span in 0u64..1_000_000_000) {
            let t0 = Instant(start);
            let t1 = t0 + Duration(span);
            prop_assert_eq!(t1.duration_since(t0), Duration(span));
        }
    }
}
