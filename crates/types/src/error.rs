//! The suite-wide error type.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the hardware-access and control layers.
#[derive(Debug)]
pub enum Error {
    /// An MSR read or write failed (bad address, permission, device error).
    Msr {
        /// The register address involved.
        address: u32,
        /// What went wrong.
        detail: String,
    },
    /// An underlying I/O operation failed (e.g. `/dev/cpu/N/msr`, sysfs).
    Io(std::io::Error),
    /// A value was outside its legal range (frequency off-ladder, cap below
    /// hardware minimum, slowdown outside `[0, 1]`, ...).
    InvalidValue {
        /// Name of the offending parameter.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// The requested capability does not exist on this platform
    /// (e.g. DRAM power capping on Skylake-SP, per the paper §II-B).
    Unsupported(&'static str),
    /// Referenced a socket or core that the platform does not have.
    NoSuchComponent(String),
    /// A controller or experiment precondition was violated.
    Precondition(String),
    /// A bounded operation ran past its deadline. Carries how many items
    /// (trace rows, journal records, ...) were produced before the abort so
    /// callers can salvage the partial output.
    Timeout {
        /// What timed out.
        what: &'static str,
        /// Items completed before the deadline.
        partial_len: usize,
    },
    /// Durable state on disk is unusable: torn journal records past the
    /// recoverable prefix, checkpoints newer than the journal head, bad
    /// magic bytes, or undecodable payloads.
    Corruption(String),
    /// A coordination-term fencing violation: the peer's term is higher
    /// than ours, meaning a successor coordinator has taken over and this
    /// instance must stop granting budget (split-brain defense).
    Fenced {
        /// This coordinator's term.
        ours: u64,
        /// The higher term observed from a peer.
        theirs: u64,
    },
    /// A peer announced a frame larger than the protocol allows. Kept
    /// distinct from [`Error::Corruption`] so receivers can tell a hostile
    /// (or wildly corrupt) length prefix — an allocation attack — apart
    /// from ordinary bit rot, and refuse it *before* allocating.
    FrameTooLarge {
        /// The announced payload length.
        len: u64,
        /// The hard bound the receiver enforces.
        max: u32,
    },
}

impl Error {
    /// Shorthand constructor for [`Error::InvalidValue`].
    pub fn invalid(what: &'static str, detail: impl Into<String>) -> Self {
        Error::InvalidValue {
            what,
            detail: detail.into(),
        }
    }

    /// Shorthand constructor for [`Error::Msr`].
    pub fn msr(address: u32, detail: impl Into<String>) -> Self {
        Error::Msr {
            address,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Msr { address, detail } => {
                write!(f, "MSR {address:#x} access failed: {detail}")
            }
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::InvalidValue { what, detail } => {
                write!(f, "invalid value for {what}: {detail}")
            }
            Error::Unsupported(what) => write!(f, "unsupported on this platform: {what}"),
            Error::NoSuchComponent(what) => write!(f, "no such component: {what}"),
            Error::Precondition(what) => write!(f, "precondition violated: {what}"),
            Error::Timeout { what, partial_len } => {
                write!(f, "{what} timed out after {partial_len} item(s)")
            }
            Error::Corruption(what) => write!(f, "durable state corrupted: {what}"),
            Error::Fenced { ours, theirs } => {
                write!(
                    f,
                    "fenced: coordination term {theirs} supersedes ours ({ours})"
                )
            }
            Error::FrameTooLarge { len, max } => {
                write!(
                    f,
                    "frame payload of {len} byte(s) exceeds the {max}-byte bound"
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_address_in_hex() {
        let e = Error::msr(0x620, "EIO");
        assert_eq!(e.to_string(), "MSR 0x620 access failed: EIO");
    }

    #[test]
    fn io_error_chains_source() {
        let e: Error = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "nope").into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn invalid_value_formats() {
        let e = Error::invalid("slowdown", "must be within [0,1], got 1.5");
        assert!(e.to_string().contains("slowdown"));
        assert!(e.to_string().contains("1.5"));
    }

    #[test]
    fn timeout_reports_partial_length() {
        let e = Error::Timeout {
            what: "trace recording",
            partial_len: 42,
        };
        assert!(e.to_string().contains("trace recording"));
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn corruption_formats() {
        let e = Error::Corruption("checkpoint 9 is newer than journal head 4".into());
        assert!(e.to_string().contains("corrupted"));
        assert!(e.to_string().contains("checkpoint 9"));
    }

    #[test]
    fn fenced_names_both_terms() {
        let e = Error::Fenced { ours: 3, theirs: 5 };
        assert!(e.to_string().contains("term 5"));
        assert!(e.to_string().contains("ours (3)"));
    }

    #[test]
    fn frame_too_large_names_both_sizes() {
        let e = Error::FrameTooLarge {
            len: u32::MAX as u64,
            max: 65_536,
        };
        assert!(e.to_string().contains("4294967295"));
        assert!(e.to_string().contains("65536-byte bound"));
    }
}
