//! Minimal ASCII time-series charts for terminal output.
//!
//! Renders the Fig. 5-style operating-point timelines (`dufp timeline`)
//! without any plotting dependency: each series is downsampled to the
//! terminal width and drawn with its own glyph on a shared y-scale.

/// One named series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Glyph used for this series' points.
    pub glyph: char,
    /// Sample values, uniformly spaced in time.
    pub values: Vec<f64>,
}

/// Renders `series` into a `width`×`height` character chart with a y-axis.
///
/// All series share one y-scale (min/max over all finite values). Returns
/// an empty string when there is nothing to draw.
pub fn chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let finite: Vec<f64> = series
        .iter()
        .flat_map(|s| s.values.iter().copied())
        .filter(|v| v.is_finite())
        .collect();
    if finite.is_empty() {
        return String::new();
    }
    let mut lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let mut hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if (hi - lo).abs() < 1e-12 {
        lo -= 1.0;
        hi += 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        if s.values.is_empty() {
            continue;
        }
        // `col` drives both the downsampling window and the grid column, so
        // an index loop reads better than iterating rows here.
        #[allow(clippy::needless_range_loop)]
        for col in 0..width {
            // Downsample: average the bucket this column covers.
            let start = col * s.values.len() / width;
            let end = (((col + 1) * s.values.len()) / width).max(start + 1);
            let bucket = &s.values[start..end.min(s.values.len())];
            let v: f64 = bucket.iter().sum::<f64>() / bucket.len() as f64;
            if !v.is_finite() {
                continue;
            }
            let frac = (v - lo) / (hi - lo);
            let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
            let cell = &mut grid[row.min(height - 1)][col];
            // Later series draw over earlier ones only on empty cells, so
            // overlapping lines stay distinguishable.
            if *cell == ' ' {
                *cell = s.glyph;
            }
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        let y = hi - (hi - lo) * i as f64 / (height - 1) as f64;
        out.push_str(&format!("{y:8.1} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:8} +{}\n", "", "-".repeat(width)));
    let legend: Vec<String> = series
        .iter()
        .map(|s| format!("{} {}", s.glyph, s.label))
        .collect();
    out.push_str(&format!("{:9}{}\n", "", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn renders_title_axis_and_legend() {
        let s = Series {
            label: "power (W)".into(),
            glyph: '*',
            values: ramp(100),
        };
        let out = chart("test chart", &[s], 40, 8);
        assert!(out.starts_with("test chart\n"));
        assert!(out.contains('|'));
        assert!(out.contains("* power (W)"));
        // Rising ramp: the last column's glyph is above the first column's.
        let rows: Vec<&str> = out.lines().collect();
        assert!(
            rows[1].contains('*') || rows[2].contains('*'),
            "top rows hold the max"
        );
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = Series {
            label: "flat".into(),
            glyph: '#',
            values: vec![5.0; 10],
        };
        let out = chart("flat", &[s], 20, 5);
        assert!(out.contains('#'));
    }

    #[test]
    fn empty_series_renders_nothing() {
        assert!(chart("none", &[], 20, 5).is_empty());
        let s = Series {
            label: "nan".into(),
            glyph: '.',
            values: vec![f64::NAN; 4],
        };
        assert!(chart("nan", &[s], 20, 5).is_empty());
    }

    #[test]
    fn two_series_keep_distinct_glyphs() {
        let a = Series {
            label: "a".into(),
            glyph: 'a',
            values: vec![0.0; 50],
        };
        let b = Series {
            label: "b".into(),
            glyph: 'b',
            values: vec![10.0; 50],
        };
        let out = chart("two", &[a, b], 30, 6);
        assert!(out.contains('a'));
        assert!(out.contains('b'));
    }

    #[test]
    fn downsampling_covers_every_column() {
        let s = Series {
            label: "x".into(),
            glyph: 'x',
            values: ramp(1000),
        };
        let out = chart("dense", &[s], 30, 6);
        let glyphs = out.chars().filter(|c| *c == 'x').count();
        assert!(glyphs >= 28, "almost every column drawn, got {glyphs}");
    }
}
