//! The `dufp` binary.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match dufp_cli::run(&argv) {
        Ok(out) => print!("{out}"),
        Err(err) => {
            eprintln!("dufp: {err}");
            std::process::exit(2);
        }
    }
}
