//! The `dufp` binary.
//!
//! Installs a SIGINT handler before dispatching: Ctrl-C sets the
//! process-wide shutdown flag ([`dufp_types::shutdown`]) instead of killing
//! the process, so the runner's safe-state guards restore the platform's
//! default power caps and uncore limits on the way out. A second Ctrl-C
//! falls back to the default disposition (immediate termination) in case
//! the run is wedged.

/// Installs the Ctrl-C → shutdown-flag handler. Signal handlers may only
/// do async-signal-safe work; a relaxed atomic store qualifies, `signal(2)`
/// re-arming to `SIG_DFL` makes the second Ctrl-C lethal.
#[cfg(unix)]
fn install_sigint_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;
    extern "C" fn on_sigint(_signum: i32) {
        dufp_types::shutdown::request();
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        // SAFETY: signal(2) is async-signal-safe; re-arming to the default
        // disposition only touches process signal state.
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }
    // SAFETY: the handler does only async-signal-safe work (an atomic
    // store and a signal(2) call).
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigint_handler() {}

fn main() {
    install_sigint_handler();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match dufp_cli::run(&argv) {
        Ok(out) => print!("{out}"),
        Err(err) => {
            eprintln!("dufp: {err}");
            std::process::exit(2);
        }
    }
}
