//! Subcommand implementations.

use crate::args::{
    AgentCmd, ChaosCmd, ControllerArg, CoordinateCmd, EngineArg, FsyncArg, JournalCmd, RecordSpec,
    ResumeCmd, RunSpec, ScenarioCmd, SweepCmd, TraceCmd,
};
use crate::plot::{chart, Series};
use dufp::{
    run_journaled, run_once, run_repeated, ControllerKind, Engine, ExperimentSpec, JournalOptions,
    TraceSpec,
};
use dufp_journal::{list_checkpoints, FsyncPolicy};
use dufp_msr::FaultPlan;
use dufp_telemetry::{read_jsonl, write_jsonl, Actuator, DecisionEvent, Reason};
use dufp_types::ArchSpec;
use dufp_types::SocketId;
use dufp_workloads::{apps, MaterializeCtx};
use std::fmt::Write as _;

/// Resolves the simulated platform for a run: the YETI default or a JSON
/// machine description (`dufp machine-template` emits an editable one).
fn resolve_sim(spec: &RunSpec) -> Result<dufp_sim::SimConfig, String> {
    let mut sim = match &spec.machine {
        None => dufp_sim::SimConfig::yeti(spec.seed),
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("machine file {path}: {e}"))?;
            serde_json::from_str(&text).map_err(|e| format!("machine file {path}: {e}"))?
        }
    };
    sim.arch.sockets = spec.sockets;
    sim.seed = spec.seed;
    sim.validate().map_err(|e| match &spec.machine {
        Some(path) => format!("machine file {path}: {e}"),
        None => e.to_string(),
    })?;
    Ok(sim)
}

/// Resolves `--fault-plan`: a path to a JSON plan file (when the value
/// ends in `.json`) or an inline DSL string like
/// `seed=42;write,reg=cap,p=0.01`.
fn resolve_fault_plan(spec: &RunSpec) -> Result<Option<FaultPlan>, String> {
    spec.fault_plan.as_deref().map(load_msr_plan).transpose()
}

/// Loads an MSR fault plan from a JSON file or an inline DSL string.
fn load_msr_plan(arg: &str) -> Result<FaultPlan, String> {
    if arg.ends_with(".json") {
        let text = std::fs::read_to_string(arg).map_err(|e| format!("fault plan {arg}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("fault plan {arg}: {e}"))
    } else {
        FaultPlan::parse(arg).map_err(|e| format!("fault plan: {e}"))
    }
}

/// Loads a network fault plan from a JSON file or an inline DSL string.
fn load_net_plan(arg: &str) -> Result<dufp_net::NetFaultPlan, String> {
    if arg.ends_with(".json") {
        let text =
            std::fs::read_to_string(arg).map_err(|e| format!("net fault plan {arg}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("net fault plan {arg}: {e}"))
    } else {
        dufp_net::NetFaultPlan::parse(arg).map_err(|e| format!("net fault plan: {e}"))
    }
}

/// `dufp machine-template` — the default platform as editable JSON.
pub fn machine_template() -> String {
    serde_json::to_string_pretty(&dufp_sim::SimConfig::yeti(42))
        .expect("SimConfig always serializes")
}

fn engine_kind(arg: EngineArg) -> Engine {
    match arg {
        EngineArg::Tick => Engine::Tick,
        EngineArg::Event => Engine::Event,
    }
}

fn controller_kind(spec: &RunSpec) -> ControllerKind {
    match spec.controller {
        ControllerArg::Default => ControllerKind::Default,
        ControllerArg::Duf => ControllerKind::Duf {
            slowdown: spec.slowdown,
        },
        ControllerArg::Dufp => ControllerKind::Dufp {
            slowdown: spec.slowdown,
        },
        ControllerArg::DufpF => ControllerKind::DufpF {
            slowdown: spec.slowdown,
        },
        ControllerArg::Dnpc => ControllerKind::Dnpc {
            slowdown: spec.slowdown,
        },
        ControllerArg::StaticCap(cap) => ControllerKind::StaticCap { cap },
    }
}

/// Resolves `--journal-dir`/`--fsync` into [`JournalOptions`].
fn journal_options(spec: &RunSpec) -> Option<JournalOptions> {
    let dir = spec.journal_dir.as_ref()?;
    let mut opts = JournalOptions::new(dir);
    if let Some(fsync) = spec.fsync {
        opts.fsync = match fsync {
            FsyncArg::Always => FsyncPolicy::Always,
            FsyncArg::Never => FsyncPolicy::Never,
            FsyncArg::EveryN(n) => FsyncPolicy::EveryN(n),
        };
    }
    Some(opts)
}

/// `dufp run <APP> ...`
pub fn run_app(spec: &RunSpec) -> Result<String, String> {
    if spec.trace_out.is_some() && spec.runs != 1 {
        return Err("--trace-out records a single run; use --runs 1".into());
    }
    if spec.journal_dir.is_some() && spec.runs != 1 {
        return Err("--journal-dir journals a single run; use --runs 1".into());
    }
    let sim = resolve_sim(spec)?;
    let kind = controller_kind(spec);
    let fault_plan = resolve_fault_plan(spec)?;
    let exp = ExperimentSpec {
        sim,
        app: spec.app.clone(),
        controller: kind,
        trace: None,
        interval_ms: None,
        // A chaos run needs telemetry: the degradation/restore events are
        // the observable record of how the run survived its faults.
        telemetry: spec.trace_out.is_some() || fault_plan.is_some(),
        fault_plan: fault_plan.clone(),
        engine: engine_kind(spec.engine),
    };

    if spec.runs == 1 {
        let mut r = match journal_options(spec) {
            Some(opts) => run_journaled(&exp, spec.seed, &opts).map_err(|e| e.to_string())?,
            None => run_once(&exp, spec.seed).map_err(|e| e.to_string())?,
        };
        let mut trace_note = String::new();
        let mut resilience_note = String::new();
        // The trace goes to the file; keep stdout (human or JSON)
        // unchanged apart from a one-line pointer.
        let report = if spec.trace_out.is_some() || (fault_plan.is_some() && !spec.json) {
            r.telemetry.take()
        } else {
            None
        };
        if let Some(path) = &spec.trace_out {
            let report = report.as_ref().ok_or("telemetry report missing")?;
            let f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            let mut w = std::io::BufWriter::new(f);
            write_jsonl(&mut w, &report.decisions).map_err(|e| format!("{path}: {e}"))?;
            trace_note = format!(
                "  decision trace : {:>10} events -> {path} ({} dropped)\n",
                report.decisions.len(),
                report.dropped
            );
        }
        if fault_plan.is_some() {
            if let Some(report) = &report {
                let count = |name: &str| {
                    report
                        .metrics
                        .counters
                        .iter()
                        .find(|c| c.name == name)
                        .map(|c| c.value)
                        .unwrap_or(0)
                };
                resilience_note = format!(
                    "  resilience     : {} actuation retries, {} degradations, {} watchdog resets, {} sample failures\n",
                    count("actuation_retries_total"),
                    count("degradations_total"),
                    count("watchdog_resets_total"),
                    count("sample_failures_total"),
                );
            }
        }
        if spec.json {
            return serde_json::to_string_pretty(&r).map_err(|e| e.to_string());
        }
        let mut out = String::new();
        writeln!(out, "{} under {}", spec.app, kind.label()).unwrap();
        writeln!(out, "  execution time : {:>10.2} s", r.exec_time.value()).unwrap();
        writeln!(
            out,
            "  package power  : {:>10.2} W",
            r.avg_pkg_power.value()
        )
        .unwrap();
        writeln!(
            out,
            "  DRAM power     : {:>10.2} W",
            r.avg_dram_power.value()
        )
        .unwrap();
        writeln!(
            out,
            "  total energy   : {:>10.1} J",
            r.total_energy().value()
        )
        .unwrap();
        out.push_str(&trace_note);
        out.push_str(&resilience_note);
        if let Some(dir) = &spec.journal_dir {
            writeln!(out, "  journal        : sealed in {dir}").unwrap();
        }
        Ok(out)
    } else {
        let r = run_repeated(&exp, spec.runs, spec.seed).map_err(|e| e.to_string())?;
        if spec.json {
            return serde_json::to_string_pretty(&r).map_err(|e| e.to_string());
        }
        let mut out = String::new();
        writeln!(
            out,
            "{} under {} — {} runs, trimmed mean of {} (paper protocol)",
            spec.app,
            kind.label(),
            spec.runs,
            r.exec_time.n
        )
        .unwrap();
        let line = |name: &str, s: &dufp::Summary, unit: &str| {
            format!(
                "  {name:<15}: {:>10.2} {unit}  [{:.2} .. {:.2}]",
                s.mean, s.min, s.max
            )
        };
        writeln!(out, "{}", line("execution time", &r.exec_time, "s")).unwrap();
        writeln!(out, "{}", line("package power", &r.pkg_power, "W")).unwrap();
        writeln!(out, "{}", line("DRAM power", &r.dram_power, "W")).unwrap();
        writeln!(out, "{}", line("total energy", &r.total_energy, "J")).unwrap();
        Ok(out)
    }
}

/// `dufp resume <DIR>` — finish a crashed journaled run.
pub fn resume(cmd: &ResumeCmd) -> Result<String, String> {
    let dir = std::path::Path::new(&cmd.dir);
    let summary = dufp::summarize(dir).map_err(|e| format!("journal {}: {e}", cmd.dir))?;
    let replayed = summary.intervals.len();
    let r = dufp::resume(dir).map_err(|e| format!("journal {}: {e}", cmd.dir))?;
    if cmd.json {
        return serde_json::to_string_pretty(&r).map_err(|e| e.to_string());
    }
    let meta = &summary.meta;
    let mut out = String::new();
    writeln!(
        out,
        "resumed {} under {} from {} journaled interval(s)",
        meta.spec.app,
        meta.spec.controller.label(),
        replayed,
    )
    .unwrap();
    writeln!(out, "  execution time : {:>10.2} s", r.exec_time.value()).unwrap();
    writeln!(
        out,
        "  package power  : {:>10.2} W",
        r.avg_pkg_power.value()
    )
    .unwrap();
    writeln!(
        out,
        "  total energy   : {:>10.1} J",
        r.total_energy().value()
    )
    .unwrap();
    writeln!(out, "  journal        : sealed in {}", cmd.dir).unwrap();
    Ok(out)
}

/// `dufp journal <DIR>` — inspect a journal directory without running.
pub fn journal(cmd: &JournalCmd) -> Result<String, String> {
    let dir = std::path::Path::new(&cmd.dir);
    let summary = dufp::summarize(dir).map_err(|e| format!("journal {}: {e}", cmd.dir))?;
    let checkpoints = list_checkpoints(dir).map_err(|e| format!("journal {}: {e}", cmd.dir))?;
    let meta = &summary.meta;
    let mut out = String::new();
    writeln!(out, "journal {}", cmd.dir).unwrap();
    writeln!(
        out,
        "  experiment     : {} under {} ({} socket(s), seed {})",
        meta.spec.app,
        meta.spec.controller.label(),
        meta.spec.sim.arch.sockets,
        meta.seed,
    )
    .unwrap();
    writeln!(out, "  intervals      : {:>10}", summary.intervals.len()).unwrap();
    let cps: Vec<String> = checkpoints.iter().map(|(seq, _)| seq.to_string()).collect();
    writeln!(
        out,
        "  checkpoints    : {:>10}  [{}]",
        checkpoints.len(),
        cps.join(", "),
    )
    .unwrap();
    writeln!(
        out,
        "  status         : {}",
        match (summary.complete, summary.truncated) {
            (true, _) => "complete (sealed)",
            (false, true) => "crashed (torn tail dropped) — resumable with `dufp resume`",
            (false, false) => "crashed or in progress — resumable with `dufp resume`",
        }
    )
    .unwrap();
    Ok(out)
}

/// `dufp timeline <APP> ...` — one traced run rendered as ASCII charts.
pub fn timeline(spec: &RunSpec) -> Result<String, String> {
    let sim = resolve_sim(spec)?;
    let kind = controller_kind(spec);
    let exp = ExperimentSpec {
        sim,
        app: spec.app.clone(),
        controller: kind,
        trace: Some(TraceSpec {
            socket: SocketId(0),
            stride: 100, // one point per 100 ms
        }),
        interval_ms: None,
        telemetry: false,
        fault_plan: resolve_fault_plan(spec)?,
        engine: engine_kind(spec.engine),
    };
    let r = run_once(&exp, spec.seed).map_err(|e| e.to_string())?;
    let trace = r.trace.as_ref().ok_or("trace missing")?;

    let pick = |f: &dyn Fn(&dufp_sim::TracePoint) -> f64| -> Vec<f64> {
        trace.points.iter().map(f).collect()
    };
    let mut out = String::new();
    writeln!(
        out,
        "{} under {} — socket 0, {:.1} s ({} samples)\n",
        spec.app,
        kind.label(),
        r.exec_time.value(),
        trace.points.len()
    )
    .unwrap();
    out.push_str(&chart(
        "core & uncore frequency (GHz)",
        &[
            Series {
                label: "core".into(),
                glyph: '*',
                values: pick(&|p| p.core_freq.as_ghz()),
            },
            Series {
                label: "uncore".into(),
                glyph: 'u',
                values: pick(&|p| p.uncore_freq.as_ghz()),
            },
        ],
        72,
        10,
    ));
    out.push('\n');
    out.push_str(&chart(
        "package power vs programmed cap (W)",
        &[
            Series {
                label: "power".into(),
                glyph: '*',
                values: pick(&|p| p.pkg_power.value()),
            },
            Series {
                label: "PL1 cap".into(),
                glyph: '-',
                values: pick(&|p| p.pl1.value()),
            },
        ],
        72,
        10,
    ));
    writeln!(
        out,
        "\navg core {:.2} GHz | avg package {:.1} W | total energy {:.0} J",
        trace
            .avg_core_freq()
            .map(|f| f.as_ghz())
            .unwrap_or(f64::NAN),
        trace.avg_pkg_power().map(|p| p.value()).unwrap_or(f64::NAN),
        r.total_energy().value(),
    )
    .unwrap();
    writeln!(
        out,
        "actuations: {} cap writes, {} uncore writes",
        trace.cap_transitions(),
        trace.uncore_transitions()
    )
    .unwrap();
    let residency = |label: &str, items: Vec<(f64, f64)>| {
        let top: Vec<String> = items
            .iter()
            .rev()
            .take(4)
            .map(|(v, f)| format!("{v:.1}:{:.0}%", f * 100.0))
            .collect();
        format!("{label} residency (top levels): {}", top.join("  "))
    };
    writeln!(
        out,
        "{}",
        residency(
            "cap (W)",
            trace
                .cap_residency()
                .iter()
                .map(|(w, f)| (w.value(), *f))
                .collect()
        )
    )
    .unwrap();
    writeln!(
        out,
        "{}",
        residency(
            "uncore (GHz)",
            trace
                .uncore_residency()
                .iter()
                .map(|(h, f)| (h.as_ghz(), *f))
                .collect()
        )
    )
    .unwrap();
    Ok(out)
}

fn fmt_actuator_value(actuator: Actuator, v: f64) -> String {
    match actuator {
        Actuator::Uncore | Actuator::CoreFreq => format!("{:.2} GHz", v / 1e9),
        Actuator::PowerCap | Actuator::PowerCapShort | Actuator::Budget => format!("{v:.0} W"),
        Actuator::Journal => format!("{v:.0} intervals"),
    }
}

/// `dufp trace <FILE.jsonl> [--summary]` — inspect a decision trace.
pub fn trace(cmd: &TraceCmd) -> Result<String, String> {
    let f = std::fs::File::open(&cmd.file).map_err(|e| format!("trace file {}: {e}", cmd.file))?;
    let events: Vec<DecisionEvent> = read_jsonl(std::io::BufReader::new(f))
        .map_err(|e| format!("trace file {}: {e}", cmd.file))?;

    let mut out = String::new();
    if cmd.summary {
        writeln!(out, "{}: {} decision events", cmd.file, events.len()).unwrap();
        writeln!(out, "\nby reason:").unwrap();
        for r in Reason::ALL {
            let n = events.iter().filter(|e| e.reason == r).count();
            writeln!(out, "  {:<20} {n:>6}", r.to_string()).unwrap();
        }
        writeln!(out, "\nby actuator:").unwrap();
        for a in [
            Actuator::Uncore,
            Actuator::PowerCap,
            Actuator::PowerCapShort,
            Actuator::CoreFreq,
            Actuator::Journal,
            Actuator::Budget,
        ] {
            let n = events.iter().filter(|e| e.actuator == a).count();
            writeln!(out, "  {:<20} {n:>6}", a.to_string()).unwrap();
        }
        let by_reason = |r: Reason| events.iter().filter(|e| e.reason == r).count();
        writeln!(
            out,
            "\nresilience: {} actuation retries, {} degradations, {} watchdog resets, {} safe-state restores",
            by_reason(Reason::ActuationRetry),
            by_reason(Reason::Degraded),
            by_reason(Reason::WatchdogReset),
            by_reason(Reason::SafeStateRestore),
        )
        .unwrap();
        let sockets: std::collections::BTreeSet<u16> = events.iter().map(|e| e.socket).collect();
        let phases: std::collections::BTreeSet<(u16, u64)> =
            events.iter().map(|e| (e.socket, e.phase)).collect();
        writeln!(
            out,
            "\n{} socket(s), {} phase change(s) observed",
            sockets.len(),
            phases.len().saturating_sub(sockets.len())
        )
        .unwrap();
    } else {
        for e in &events {
            let ratio = e
                .flops_ratio
                .map(|r| format!(" flops={:>3.0}%", r * 100.0))
                .unwrap_or_default();
            let class = e
                .oi_class
                .as_deref()
                .map(|c| format!(" [{c}]"))
                .unwrap_or_default();
            writeln!(
                out,
                "tick {:>5}  s{}  p{:<3} {:<14} {:>9} -> {:<9} {}{ratio}{class}",
                e.tick,
                e.socket,
                e.phase,
                e.actuator.to_string(),
                fmt_actuator_value(e.actuator, e.old),
                fmt_actuator_value(e.actuator, e.new),
                e.reason,
            )
            .unwrap();
        }
        writeln!(
            out,
            "{} events (use --summary for per-reason counts)",
            events.len()
        )
        .unwrap();
    }
    Ok(out)
}

/// `dufp record <APP> --out FILE.json` — capture a workload spec.
pub fn record(spec: &RecordSpec) -> Result<String, String> {
    let sim = dufp_sim::SimConfig::yeti_single_socket(spec.seed);
    let file = dufp::record_workload(&sim, &spec.app, &dufp_workloads::SegmentConfig::default())
        .map_err(|e| e.to_string())?;
    file.save(&spec.out).map_err(|e| e.to_string())?;
    let ctx = dufp_workloads::MaterializeCtx::from_arch(&sim.arch);
    let w = file.materialize(&ctx).map_err(|e| e.to_string())?;
    Ok(format!(
        "captured {} as {} — {} phases, ≈{:.1} s at the default configuration\nreplay with: dufp run {} --controller dufp --slowdown 10\n",
        spec.app,
        spec.out,
        file.phases.len(),
        w.nominal_duration(&ctx).value(),
        spec.out,
    ))
}

/// `dufp plan <APP>` — the §V-H recommendation: the tolerance with the best
/// power savings and no energy loss.
pub fn plan(spec: &RunSpec) -> Result<String, String> {
    use dufp::{ratios_vs_default, run_repeated, Ratios};
    let sim = resolve_sim(spec)?;
    let runs = spec.runs.max(3);
    let exp = |controller| ExperimentSpec {
        sim: sim.clone(),
        app: spec.app.clone(),
        controller,
        trace: None,
        interval_ms: None,
        telemetry: false,
        fault_plan: None,
        engine: engine_kind(spec.engine),
    };
    let base =
        run_repeated(&exp(ControllerKind::Default), runs, spec.seed).map_err(|e| e.to_string())?;

    let mut out = String::new();
    writeln!(
        out,
        "planning {} — DUFP tolerance sweep, {} runs each\n",
        spec.app, runs
    )
    .unwrap();
    writeln!(
        out,
        "| tolerance | overhead | power savings | energy savings |"
    )
    .unwrap();
    writeln!(
        out,
        "|-----------|----------|---------------|----------------|"
    )
    .unwrap();
    let mut table: Vec<(f64, Ratios)> = Vec::new();
    for pct in [0.0, 5.0, 10.0, 20.0] {
        let r = run_repeated(
            &exp(ControllerKind::Dufp {
                slowdown: dufp_types::Ratio::from_percent(pct),
            }),
            runs,
            spec.seed,
        )
        .map_err(|e| e.to_string())?;
        let ratios = ratios_vs_default(&base, &r);
        writeln!(
            out,
            "| {pct:>6.0} %  | {:+6.2} % | {:+9.2} %    | {:+9.2} %     |",
            ratios.overhead_pct, ratios.pkg_power_savings_pct, ratios.energy_savings_pct
        )
        .unwrap();
        table.push((pct, ratios));
    }
    match table
        .iter()
        .filter(|(_, r)| r.energy_savings_pct >= 0.0)
        .max_by(|a, b| a.1.pkg_power_savings_pct.total_cmp(&b.1.pkg_power_savings_pct))
    {
        Some((pct, r)) => writeln!(
            out,
            "\nrecommendation: {pct:.0} % tolerated slowdown — {:+.2} % power at {:+.2} % energy (\"power savings with no energy loss\", §V-H)",
            r.pkg_power_savings_pct, r.energy_savings_pct
        )
        .unwrap(),
        None => writeln!(out, "\nno energy-neutral tolerance found").unwrap(),
    }
    Ok(out)
}

/// `dufp sweep ...` — expand a grid, run it on a worker pool, write JSONL.
pub fn sweep(cmd: &SweepCmd) -> Result<String, String> {
    let mut grid = match &cmd.grid {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("grid file {path}: {e}"))?;
            dufp::parse_grid(&text).map_err(|e| format!("grid file {path}: {e}"))?
        }
        None => dufp::SweepGrid::paper(),
    };
    if let Some(engine) = cmd.engine {
        grid.engine = engine_kind(engine);
    }
    let jobs = cmd.jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    });
    let out = dufp::run_sweep(&grid, jobs).map_err(|e| e.to_string())?;
    let bytes = dufp::sweep::to_jsonl_bytes(&out.rows).map_err(|e| e.to_string())?;
    std::fs::write(&cmd.out, &bytes).map_err(|e| format!("write {}: {e}", cmd.out))?;

    if cmd.json {
        let out_path = serde_json::to_string(&cmd.out).map_err(|e| e.to_string())?;
        return Ok(format!(
            "{{\"jobs\":{},\"workers_requested\":{},\"workers_observed\":{},\"elapsed_s\":{},\"jobs_per_sec\":{},\"out\":{}}}",
            out.rows.len(),
            out.workers_requested,
            out.workers_observed,
            out.elapsed_s,
            out.jobs_per_sec(),
            out_path
        ));
    }
    let mut text = String::new();
    writeln!(
        text,
        "sweep: {} jobs ({} apps × {} policies × {} slowdowns × {} seeds)",
        out.rows.len(),
        grid.apps.len(),
        grid.policies.len(),
        grid.slowdowns_pct.len(),
        grid.seeds.len()
    )
    .unwrap();
    writeln!(
        text,
        "workers: {} requested, {} observed",
        out.workers_requested, out.workers_observed
    )
    .unwrap();
    writeln!(
        text,
        "elapsed: {:.2} s ({:.1} jobs/s)",
        out.elapsed_s,
        out.jobs_per_sec()
    )
    .unwrap();
    writeln!(text, "wrote {} rows to {}", out.rows.len(), cmd.out).unwrap();
    Ok(text)
}

/// `dufp platform`
pub fn platform() -> String {
    let arch = ArchSpec::yeti();
    format!(
        "{arch}\n\
         | cores | uncore frequency (GHz) | long term (W) | short term (W) |\n\
         |-------|------------------------|---------------|----------------|\n\
         {}\n\
         monitoring interval 200 ms, uncore step {:.0} MHz, cap step {:.0} W, \
         cap floor {:.0} W\n",
        arch.table1_row(),
        arch.uncore_freq_step.as_mhz(),
        arch.cap_step.value(),
        arch.cap_floor.value(),
    )
}

/// `dufp apps`
pub fn apps() -> String {
    let ctx = MaterializeCtx::from_arch(&ArchSpec::yeti());
    let mut out = String::from("modeled applications (phase-graph models, see dufp-workloads):\n");
    for w in apps::all(&ctx).expect("builtin apps") {
        writeln!(
            out,
            "  {:<7} {:>3} phases, ≈{:>5.1} s at the default configuration",
            w.name,
            w.phases.len(),
            w.nominal_duration(&ctx).value()
        )
        .unwrap();
    }
    out.push_str("reference kernels (roofline extremes):\n");
    for w in [
        apps::stream(&ctx).expect("stream"),
        apps::dgemm(&ctx).expect("dgemm"),
        apps::pointer_chase(&ctx).expect("chase"),
    ] {
        writeln!(
            out,
            "  {:<7} {:>3} phase,  ≈{:>5.1} s at the default configuration",
            w.name,
            w.phases.len(),
            w.nominal_duration(&ctx).value()
        )
        .unwrap();
    }
    out
}

/// `dufp probe` — reports which real-hardware access paths exist.
pub fn probe() -> String {
    let mut out = String::new();
    let msr = std::path::Path::new("/dev/cpu/0/msr").exists();
    let powercap = std::path::Path::new("/sys/class/powercap/intel-rapl:0").exists();
    writeln!(
        out,
        "MSR device files (/dev/cpu/N/msr) : {}",
        if msr { "present" } else { "absent" }
    )
    .unwrap();
    writeln!(
        out,
        "powercap sysfs (intel-rapl zones)  : {}",
        if powercap { "present" } else { "absent" }
    )
    .unwrap();
    if msr && powercap {
        writeln!(
            out,
            "bare-metal deployment possible: dufp_msr::LinuxMsr + dufp_rapl::SysfsRapl"
        )
        .unwrap();
    } else {
        writeln!(
            out,
            "no hardware access — experiments run on the calibrated simulator \
             (dufp_sim::Machine), which exposes the same MsrIo/Telemetry interfaces"
        )
        .unwrap();
    }
    out
}

/// Writes a decision trace to `path` as JSON Lines.
fn write_trace(path: &str, decisions: &[DecisionEvent]) -> Result<String, String> {
    let f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
    let mut w = std::io::BufWriter::new(f);
    write_jsonl(&mut w, decisions).map_err(|e| format!("{path}: {e}"))?;
    Ok(format!(
        "  decision trace : {:>10} events -> {path}\n",
        decisions.len()
    ))
}

/// `dufp coordinate --listen ADDR --budget-w W ...` — serve a fleet budget.
pub fn coordinate(cmd: &CoordinateCmd) -> Result<String, String> {
    let mut cfg = dufp_net::CoordinatorConfig::new(&cmd.listen, cmd.budget)
        .with_epoch(std::time::Duration::from_millis(cmd.epoch_ms));
    cfg.policy = if cmd.demand_based {
        dufp_net::PolicyKind::DemandBased
    } else {
        dufp_net::PolicyKind::StaticSplit
    };
    cfg.max_epochs = cmd.max_epochs;
    cfg.journal_dir = cmd.journal_dir.as_ref().map(std::path::PathBuf::from);
    cfg.standby_of = cmd.standby_of.clone();
    cfg.successor = cmd.successor.clone();
    cfg.validate().map_err(|e| e.to_string())?;
    let outcome = if cfg.standby_of.is_some() {
        eprintln!(
            "dufp coordinate: standby for {} (promotes on primary silence)",
            cmd.standby_of.as_deref().unwrap_or("?")
        );
        dufp_net::run_standby(cfg).map_err(|e| e.to_string())?
    } else {
        let coord = dufp_net::Coordinator::bind(cfg).map_err(|e| e.to_string())?;
        let addr = coord.local_addr().map_err(|e| e.to_string())?;
        eprintln!(
            "dufp coordinate: serving {} W on {addr} (term {})",
            cmd.budget.value(),
            coord.term()
        );
        coord.run().map_err(|e| e.to_string())?
    };

    let mut trace_note = String::new();
    if let Some(path) = &cmd.trace_out {
        trace_note = write_trace(path, &outcome.telemetry.decisions)?;
    }
    if cmd.json {
        return serde_json::to_string_pretty(&outcome).map_err(|e| e.to_string());
    }
    let mut out = String::new();
    writeln!(
        out,
        "fleet of {} node(s) under {} — {} W budget, {} epoch(s)",
        outcome.nodes.len(),
        outcome.policy,
        outcome.budget,
        outcome.epochs.len()
    )
    .unwrap();
    for n in &outcome.nodes {
        writeln!(
            out,
            "  {:<12} {:<8} {:>8.1} W final  {:?}",
            n.name, n.app, n.final_ceiling, n.state
        )
        .unwrap();
    }
    let peak = outcome
        .epochs
        .iter()
        .map(|e| e.total_granted)
        .fold(0.0f64, f64::max);
    let reclaims: usize = outcome.epochs.iter().map(|e| e.reclaimed.len()).sum();
    writeln!(
        out,
        "  peak granted   : {peak:>10.1} W (budget {:.1} W)",
        outcome.budget
    )
    .unwrap();
    writeln!(out, "  reclaims       : {reclaims:>10}").unwrap();
    out.push_str(&trace_note);
    Ok(out)
}

/// `dufp agent --connect ADDR --node NAME ...` — run a fleet node.
pub fn agent(cmd: &AgentCmd) -> Result<String, String> {
    let mut cfg = dufp_net::AgentConfig::new(&cmd.connect, &cmd.node, "");
    cfg.queue = cmd.apps.clone();
    cfg.slowdown = cmd.slowdown;
    cfg.seed = cmd.seed;
    cfg.safe_cap = cmd.safe_cap;
    cfg.pace = std::time::Duration::from_millis(cmd.pace_ms);
    cfg.max_intervals = cmd.max_intervals;
    cfg.standbys = cmd.standbys.clone();
    if !cfg.standbys.is_empty() {
        // Failover needs patience: a standby takes a few heartbeat
        // timeouts to notice the primary died and promote, so the default
        // (sub-second) retry ladder would degrade to the safe cap before
        // the successor even binds.
        cfg.retry.max_retries = 40;
        cfg.retry.base_backoff = std::time::Duration::from_millis(50);
        cfg.retry.max_backoff = std::time::Duration::from_millis(500);
    }
    let agent = dufp_net::Agent::new(cfg).map_err(|e| e.to_string())?;
    let outcome = agent.run().map_err(|e| e.to_string())?;

    let mut trace_note = String::new();
    if let Some(path) = &cmd.trace_out {
        trace_note = write_trace(path, &outcome.telemetry.decisions)?;
    }
    if cmd.json {
        return serde_json::to_string_pretty(&outcome).map_err(|e| e.to_string());
    }
    let mut out = String::new();
    writeln!(
        out,
        "{} ran {} under fleet control{}",
        outcome.node,
        outcome.app,
        if outcome.completed {
            ""
        } else {
            " (stopped early)"
        }
    )
    .unwrap();
    if let Some(t) = outcome.exec_time {
        writeln!(out, "  execution time : {:>10.2} s", t.value()).unwrap();
    }
    writeln!(
        out,
        "  package power  : {:>10.2} W",
        outcome.avg_power.value()
    )
    .unwrap();
    writeln!(
        out,
        "  final ceiling  : {:>10.1} W",
        outcome.final_ceiling.value()
    )
    .unwrap();
    writeln!(
        out,
        "  fleet link     : {} report(s) sent, {} grant(s) applied, {} degradation(s)",
        outcome.reports_sent, outcome.grants_applied, outcome.degradations
    )
    .unwrap();
    out.push_str(&trace_note);
    Ok(out)
}

/// `dufp chaos ...` — the deterministic adversarial fleet soak: seeded
/// network chaos and byzantine agents over an in-process fleet, scored
/// into a resilience scorecard. Errors (nonzero exit) if any scenario
/// breaks budget conservation or an honest agent's floor.
pub fn chaos(cmd: &ChaosCmd) -> Result<String, String> {
    let mut cfg = dufp_net::ChaosConfig::new(cmd.seed);
    cfg.agents = cmd.agents;
    cfg.epochs = cmd.epochs;
    cfg.budget = dufp_types::Watts(cmd.budget_w);
    if let Some(arg) = &cmd.net_fault_plan {
        cfg.extra_net = load_net_plan(arg)?;
    }
    if let Some(arg) = &cmd.fault_plan {
        cfg.msr_plan = load_msr_plan(arg)?;
    }

    let cards = match &cmd.scenario {
        Some(name) => vec![dufp_net::chaos::run_scenario(&cfg, name).map_err(|e| e.to_string())?],
        None => dufp_net::chaos::run_matrix(&cfg).map_err(|e| e.to_string())?,
    };

    // The scorecard is JSONL: one line per scenario, ranked best-first.
    // Serialization lives here (not in dufp-net) so the wire crate keeps
    // serde_json as a dev-only dependency.
    let mut jsonl = String::new();
    for card in &cards {
        let line = serde_json::to_string(card).map_err(|e| e.to_string())?;
        jsonl.push_str(&line);
        jsonl.push('\n');
    }
    let mut out_note = String::new();
    if let Some(path) = &cmd.out {
        std::fs::write(path, &jsonl).map_err(|e| format!("scorecard {path}: {e}"))?;
        out_note = format!("scorecard: {} line(s) written to {path}\n", cards.len());
    }

    let output = if cmd.json {
        jsonl
    } else {
        let mut out = String::new();
        writeln!(
            out,
            "resilience scorecard — seed {}, {} agent(s), {} epoch(s), {:.0} W budget",
            cmd.seed, cmd.agents, cmd.epochs, cmd.budget_w
        )
        .unwrap();
        writeln!(
            out,
            "  {:>5}  {:<20} {:>9} {:>7} {:>8} {:>9} {:>7} {:>6}",
            "score", "scenario", "conserve", "floors", "byz q/n", "dropped", "corrupt", "evict"
        )
        .unwrap();
        for c in &cards {
            writeln!(
                out,
                "  {:>5.0}  {:<20} {:>9} {:>7} {:>8} {:>9} {:>7} {:>6}",
                c.score,
                c.scenario,
                if c.conservation_ok { "ok" } else { "BROKEN" },
                if c.floor_ok { "ok" } else { "BROKEN" },
                format!("{}/{}", c.byz_quarantined, c.byz_total),
                c.frames_dropped,
                c.frames_corrupted,
                c.evictions,
            )
            .unwrap();
        }
        out.push_str(&out_note);
        out
    };

    let broken: Vec<&str> = cards
        .iter()
        .filter(|c| !c.conservation_ok || !c.floor_ok)
        .map(|c| c.scenario.as_str())
        .collect();
    if broken.is_empty() {
        Ok(output)
    } else {
        Err(format!(
            "{output}chaos: resilience violations in: {}",
            broken.join(", ")
        ))
    }
}

/// `dufp scenario ...` — run a trace-driven datacenter scenario: a
/// heterogeneous co-tenant fleet under an arrival model and a global
/// power budget, scored per policy against the uncapped baseline. Errors
/// (nonzero exit) if any run breaks per-tenant energy conservation.
pub fn scenario(cmd: &ScenarioCmd) -> Result<String, String> {
    if cmd.print_example {
        return Ok(dufp_scenario::EXAMPLE_TOML.to_string());
    }

    let spec = match &cmd.spec {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("spec {path}: {e}"))?;
            dufp_scenario::ScenarioSpec::from_toml(&text)
                .map_err(|e| format!("spec {path}: {e}"))?
        }
        None => dufp_scenario::ScenarioSpec::example(),
    };
    let policies: Vec<dufp_scenario::PolicyChoice> = cmd
        .policies
        .iter()
        .map(|p| dufp_scenario::PolicyChoice::parse(p).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    let jobs = cmd
        .jobs
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from));

    let rows =
        dufp_scenario::run_rows(&spec, cmd.seed, &policies, jobs).map_err(|e| e.to_string())?;
    let jsonl = dufp_scenario::to_jsonl_bytes(&rows).map_err(|e| e.to_string())?;
    let jsonl = String::from_utf8(jsonl).map_err(|e| e.to_string())?;

    let mut notes = String::new();
    if let Some(path) = &cmd.out {
        std::fs::write(path, &jsonl).map_err(|e| format!("scorecard {path}: {e}"))?;
        writeln!(notes, "scorecard: {} line(s) written to {path}", rows.len()).unwrap();
    }
    if let Some(path) = &cmd.trace_out {
        let run =
            dufp_scenario::run_one(&spec, cmd.seed, policies[0]).map_err(|e| e.to_string())?;
        let file = std::fs::File::create(path).map_err(|e| format!("trace {path}: {e}"))?;
        write_jsonl(std::io::BufWriter::new(file), &run.events)
            .map_err(|e| format!("trace {path}: {e}"))?;
        writeln!(
            notes,
            "trace: {} event(s) for policy {} written to {path}",
            run.events.len(),
            policies[0].label()
        )
        .unwrap();
    }

    let output = if cmd.json {
        jsonl
    } else {
        let mut out = String::new();
        writeln!(
            out,
            "scenario {} — seed {}, {} node(s), {} tenant(s), {:.0} W budget, {:.0} s",
            spec.name,
            cmd.seed,
            spec.nodes.len(),
            spec.tenant_count(),
            spec.budget_w,
            spec.duration_s
        )
        .unwrap();
        writeln!(
            out,
            "  {:<14} {:>12} {:>8} {:>10} {:>7} {:>7} {:>9}",
            "policy", "energy kJ", "saved%", "SLO-viol%", "grants", "shrinks", "conserve"
        )
        .unwrap();
        for r in &rows {
            writeln!(
                out,
                "  {:<14} {:>12.1} {:>8.2} {:>10.2} {:>7} {:>7} {:>9}",
                r.policy,
                r.fleet_energy_j / 1000.0,
                r.energy_saved_pct,
                r.slo_violation_pct,
                r.grants,
                r.shrinks,
                if r.conservation_ok { "ok" } else { "BROKEN" },
            )
            .unwrap();
        }
        out.push_str(&notes);
        out
    };

    let broken: Vec<&str> = rows
        .iter()
        .filter(|r| !r.conservation_ok)
        .map(|r| r.policy.as_str())
        .collect();
    if broken.is_empty() {
        Ok(output)
    } else {
        Err(format!(
            "{output}scenario: energy-conservation violations under: {}",
            broken.join(", ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dufp_types::Ratio;

    #[test]
    fn chaos_runs_deterministically_and_flags_scenarios() {
        let cmd = ChaosCmd {
            seed: 5,
            agents: 4,
            epochs: 10,
            budget_w: 400.0,
            scenario: Some("baseline".into()),
            net_fault_plan: None,
            fault_plan: None,
            out: None,
            json: true,
        };
        let a = chaos(&cmd).expect("baseline must pass");
        let b = chaos(&cmd).expect("baseline must pass");
        assert_eq!(a, b, "same seed, same scorecard bytes");
        assert!(a.contains("\"scenario\":\"baseline\""), "{a}");

        let unknown = ChaosCmd {
            scenario: Some("nope".into()),
            ..cmd
        };
        let err = chaos(&unknown).unwrap_err();
        assert!(err.contains("nope"), "{err}");
    }

    #[test]
    fn scenario_runs_deterministically_and_prints_example() {
        let cmd = ScenarioCmd {
            spec: None,
            seed: 5,
            policies: vec!["uncapped".into(), "demand-based".into()],
            jobs: Some(2),
            out: None,
            trace_out: None,
            json: true,
            print_example: false,
        };
        let a = scenario(&cmd).expect("example scenario must pass");
        let b = scenario(&cmd).expect("example scenario must pass");
        assert_eq!(a, b, "same seed, same scorecard bytes");
        assert!(a.contains("\"policy\":\"demand-based\""), "{a}");
        assert!(a.contains("\"conservation_ok\":true"), "{a}");

        let example = scenario(&ScenarioCmd {
            print_example: true,
            ..cmd.clone()
        })
        .unwrap();
        assert_eq!(example, dufp_scenario::EXAMPLE_TOML);

        let bad = scenario(&ScenarioCmd {
            policies: vec!["nope".into()],
            ..cmd
        })
        .unwrap_err();
        assert!(bad.contains("nope"), "{bad}");
    }

    fn spec(app: &str, runs: usize) -> RunSpec {
        RunSpec {
            app: app.into(),
            controller: ControllerArg::Dufp,
            slowdown: Ratio::from_percent(10.0),
            sockets: 1,
            runs,
            seed: 3,
            json: false,
            machine: None,
            trace_out: None,
            fault_plan: None,
            journal_dir: None,
            fsync: None,
            engine: EngineArg::default(),
        }
    }

    #[test]
    fn single_run_renders_summary() {
        let out = run_app(&spec("EP", 1)).unwrap();
        assert!(out.contains("EP under DUFP@10%"), "{out}");
        assert!(out.contains("execution time"));
        assert!(out.contains("package power"));
    }

    #[test]
    fn repeated_run_renders_error_bars() {
        let out = run_app(&spec("EP", 3)).unwrap();
        assert!(out.contains("3 runs"));
        assert!(out.contains(".."), "error bars expected: {out}");
    }

    #[test]
    fn json_output_is_parseable() {
        let mut s = spec("EP", 1);
        s.json = true;
        let out = run_app(&s).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(v["exec_time"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn unknown_app_is_a_clean_error() {
        let err = run_app(&spec("NOT_AN_APP", 1)).unwrap_err();
        assert!(err.contains("NOT_AN_APP"), "{err}");
    }

    #[test]
    fn timeline_renders_charts() {
        let out = timeline(&spec("CG", 1)).unwrap();
        assert!(out.contains("core & uncore frequency"), "{out}");
        assert!(out.contains("package power vs programmed cap"));
        assert!(out.contains("avg core"));
    }

    #[test]
    fn json_workload_file_runs_end_to_end() {
        let dir = std::env::temp_dir().join(format!("dufp-cli-wl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.json");
        std::fs::write(
            &path,
            r#"{
                "name": "toy",
                "phases": [{
                    "name": "stream", "seconds_at_default": 3.0, "oi": 0.05,
                    "boundness": { "MemoryBound": { "headroom": 1.5 } },
                    "core_util": 0.5, "overlap_penalty": 0.0
                }],
                "repeat": 2
            }"#,
        )
        .unwrap();
        let out = run_app(&spec(path.to_str().unwrap(), 1)).unwrap();
        assert!(out.contains("under DUFP"), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn machine_template_round_trips_through_a_run() {
        let dir = std::env::temp_dir().join(format!("dufp-machine-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("machine.json");
        // Edit the template: a smaller 95 W PL1 platform.
        let mut sim: dufp_sim::SimConfig = serde_json::from_str(&machine_template()).unwrap();
        sim.arch.pl1_default = dufp_types::Watts(95.0);
        sim.arch.name = "custom-95w".into();
        std::fs::write(&path, serde_json::to_string(&sim).unwrap()).unwrap();

        let mut s = spec("EP", 1);
        s.machine = Some(path.to_str().unwrap().to_string());
        s.json = true;
        let out = run_app(&s).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        // EP must be held under the custom 95 W PL1.
        let pkg = v["avg_pkg_power"].as_f64().unwrap();
        assert!(pkg < 97.0, "custom PL1 not honored: {pkg} W");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_machine_file_is_a_clean_error() {
        let mut s = spec("EP", 1);
        s.machine = Some("/nonexistent/machine.json".into());
        assert!(run_app(&s).unwrap_err().contains("machine file"));
    }

    #[test]
    fn trace_out_then_trace_summary_round_trips() {
        let dir = std::env::temp_dir().join(format!("dufp-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cg.jsonl");

        let mut s = spec("CG", 1);
        s.trace_out = Some(path.to_str().unwrap().to_string());
        let out = run_app(&s).unwrap();
        assert!(out.contains("decision trace"), "{out}");

        // Every line of the file is a decision event carrying a reason.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.trim().is_empty(), "DUFP on CG must actuate");
        for line in text.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v["reason"].as_str().is_some(), "reason missing: {line}");
            assert!(v["actuator"].as_str().is_some(), "actuator missing: {line}");
        }

        let listing = trace(&TraceCmd {
            file: path.to_str().unwrap().to_string(),
            summary: false,
        })
        .unwrap();
        assert!(listing.contains("tick"), "{listing}");

        let summary = trace(&TraceCmd {
            file: path.to_str().unwrap().to_string(),
            summary: true,
        })
        .unwrap();
        assert!(summary.contains("by reason:"), "{summary}");
        assert!(summary.contains("phase-reset"), "{summary}");
        assert!(summary.contains("by actuator:"), "{summary}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_plan_run_survives_and_reports_resilience() {
        let dir = std::env::temp_dir().join(format!("dufp-chaos-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chaos.jsonl");

        let mut s = spec("EP", 1);
        s.fault_plan = Some("seed=42;write,p=0.01;write,reg=cap,cpu=0-15,window=200+5000".into());
        s.trace_out = Some(path.to_str().unwrap().to_string());
        let out = run_app(&s).unwrap();
        assert!(out.contains("resilience"), "{out}");
        assert!(out.contains("degradations"), "{out}");

        let summary = trace(&TraceCmd {
            file: path.to_str().unwrap().to_string(),
            summary: true,
        })
        .unwrap();
        assert!(summary.contains("resilience:"), "{summary}");
        assert!(summary.contains("degraded"), "{summary}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_fault_plan_is_a_clean_error() {
        let mut s = spec("EP", 1);
        s.fault_plan = Some("seed=nope".into());
        assert!(run_app(&s).unwrap_err().contains("fault plan"));
    }

    #[test]
    fn journaled_run_inspects_seals_and_refuses_rerun() {
        let dir = std::env::temp_dir().join(format!("dufp-cli-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = spec("EP", 1);
        s.journal_dir = Some(dir.to_str().unwrap().to_string());
        let out = run_app(&s).unwrap();
        assert!(out.contains("journal"), "{out}");

        let inspect = journal(&JournalCmd {
            dir: dir.to_str().unwrap().into(),
        })
        .unwrap();
        assert!(inspect.contains("EP under DUFP@10%"), "{inspect}");
        assert!(inspect.contains("complete (sealed)"), "{inspect}");
        assert!(inspect.contains("checkpoints"), "{inspect}");

        // A sealed journal has nothing to resume.
        let err = resume(&ResumeCmd {
            dir: dir.to_str().unwrap().into(),
            json: false,
        })
        .unwrap_err();
        assert!(err.contains("completed run"), "{err}");

        // And a second run must not clobber it.
        let err = run_app(&s).unwrap_err();
        assert!(err.contains("already contains segments"), "{err}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_dir_with_repeats_is_rejected() {
        let mut s = spec("EP", 3);
        s.journal_dir = Some("/tmp/never-created".into());
        assert!(run_app(&s).unwrap_err().contains("--runs 1"));
    }

    #[test]
    fn journal_inspect_on_missing_dir_is_a_clean_error() {
        let err = journal(&JournalCmd {
            dir: "/nonexistent/journal".into(),
        })
        .unwrap_err();
        assert!(err.contains("journal"), "{err}");
        let err = resume(&ResumeCmd {
            dir: "/nonexistent/journal".into(),
            json: false,
        })
        .unwrap_err();
        assert!(err.contains("journal"), "{err}");
    }

    #[test]
    fn trace_out_with_repeats_is_rejected() {
        let mut s = spec("EP", 3);
        s.trace_out = Some("/tmp/never-written.jsonl".into());
        assert!(run_app(&s).unwrap_err().contains("--runs 1"));
    }

    #[test]
    fn trace_on_missing_file_is_a_clean_error() {
        let err = trace(&TraceCmd {
            file: "/nonexistent/x.jsonl".into(),
            summary: true,
        })
        .unwrap_err();
        assert!(err.contains("trace file"), "{err}");
    }

    #[test]
    fn sweep_runs_a_grid_file_end_to_end() {
        let dir = std::env::temp_dir().join(format!("dufp-cli-sweep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let grid_path = dir.join("grid.toml");
        std::fs::write(
            &grid_path,
            "apps = [\"EP\"]\npolicies = [\"duf\", \"dufp\"]\nslowdowns_pct = [10]\nseeds = [1, 2]\n",
        )
        .unwrap();
        let out_path = dir.join("rows.jsonl");
        let out = sweep(&SweepCmd {
            grid: Some(grid_path.to_str().unwrap().into()),
            paper: false,
            jobs: Some(2),
            out: out_path.to_str().unwrap().into(),
            json: false,
            engine: None,
        })
        .unwrap();
        assert!(out.contains("4 jobs"), "{out}");
        assert!(out.contains("workers: 2 requested"), "{out}");

        let text = std::fs::read_to_string(&out_path).unwrap();
        let rows: Vec<serde_json::Value> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(rows.len(), 4);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row["index"].as_u64().unwrap() as usize, i);
            assert!(row["exec_time_s"].as_f64().unwrap() > 0.0);
        }
        assert_eq!(rows[0]["label"].as_str().unwrap(), "DUF@10%");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_json_summary_reports_workers() {
        let dir = std::env::temp_dir().join(format!("dufp-cli-sweepjson-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let grid_path = dir.join("grid.toml");
        std::fs::write(
            &grid_path,
            "apps = [\"EP\"]\npolicies = [\"dufp\"]\nslowdowns_pct = [5]\nseeds = [1]\n",
        )
        .unwrap();
        let out_path = dir.join("rows.jsonl");
        let out = sweep(&SweepCmd {
            grid: Some(grid_path.to_str().unwrap().into()),
            paper: false,
            jobs: Some(1),
            out: out_path.to_str().unwrap().into(),
            json: true,
            engine: None,
        })
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["jobs"].as_u64(), Some(1));
        assert_eq!(v["workers_requested"].as_u64(), Some(1));
        assert!(v["elapsed_s"].as_f64().unwrap() > 0.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_bad_grid_file_is_a_clean_error() {
        let err = sweep(&SweepCmd {
            grid: Some("/nonexistent/grid.toml".into()),
            paper: false,
            jobs: Some(1),
            out: "/tmp/never-written.jsonl".into(),
            json: false,
            engine: None,
        })
        .unwrap_err();
        assert!(err.contains("grid file"), "{err}");
    }

    #[test]
    fn platform_prints_table1() {
        let out = platform();
        assert!(out.contains("| 64 | [1.2-2.4] | 125 | 150 |"));
    }

    #[test]
    fn apps_lists_all_ten_plus_kernels() {
        let out = apps();
        for name in [
            "BT", "CG", "EP", "FT", "LU", "MG", "SP", "UA", "HPL", "LAMMPS", "STREAM", "DGEMM",
            "CHASE",
        ] {
            assert!(out.contains(name), "missing {name} in {out}");
        }
    }

    #[test]
    fn probe_reports_something() {
        let out = probe();
        assert!(out.contains("MSR device files"));
    }
}
