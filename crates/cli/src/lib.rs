//! Implementation of the `dufp` command-line tool.
//!
//! The real DUFP is started as `dufp --slowdown 10 --sockets 0,1,2,3 --
//! <application>`; one controller instance then runs per socket until the
//! application exits. This crate reproduces that interface against the
//! simulator (the default) and exposes the same plumbing a real-hardware
//! deployment would use (`/dev/cpu/N/msr` + powercap sysfs backends).
//!
//! Subcommands:
//!
//! * `run` — run one of the modeled applications under a controller,
//! * `platform` — print the Table I description of the target platform,
//! * `apps` — list the modeled applications,
//! * `probe` — check real-hardware access paths (MSR device files,
//!   powercap sysfs) and report what a bare-metal deployment would use,
//! * `timeline` — run once with tracing and render the Fig. 5-style
//!   frequency/power/cap timelines as ASCII charts,
//! * `trace` — inspect a decision-trace JSONL file written by
//!   `run --trace-out` (per-reason summaries with `--summary`),
//! * `resume` — finish a crashed journaled run (`run --journal-dir`)
//!   from its write-ahead journal and last checkpoint,
//! * `journal` — inspect a journal directory: metadata, recorded
//!   intervals, checkpoints, completion status,
//! * `sweep` — expand a (application × policy × slowdown × seed) grid
//!   into independent experiments, run them on a work-stealing pool and
//!   write one JSON line per grid point in deterministic grid order,
//! * `coordinate` — serve a fleet power budget over TCP, running the
//!   cluster allocator over live agent demand reports,
//! * `agent` — run a simulated node under DUFP with its cap clamped to
//!   the coordinator's grants (safe local cap when unreachable),
//! * `chaos` — soak an in-process fleet against seeded network chaos
//!   and byzantine agents; emit a ranked resilience scorecard (JSONL),
//!   exiting nonzero on any conservation or floor violation,
//! * `scenario` — run a trace-driven datacenter scenario (diurnal load,
//!   co-tenant sockets, heterogeneous machine classes) under a global
//!   power budget and score each allocator policy against the uncapped
//!   baseline (energy saved vs. SLO violations, byte-identical per seed).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod plot;

pub use args::{Cli, Command};

/// Entry point shared by the binary and the tests.
pub fn run(argv: &[String]) -> Result<String, String> {
    let cli = Cli::parse(argv)?;
    match cli.command {
        Command::Run(ref spec) => commands::run_app(spec),
        Command::Resume(ref cmd) => commands::resume(cmd),
        Command::Journal(ref cmd) => commands::journal(cmd),
        Command::Timeline(ref spec) => commands::timeline(spec),
        Command::Record(ref spec) => commands::record(spec),
        Command::Trace(ref cmd) => commands::trace(cmd),
        Command::Plan(ref spec) => commands::plan(spec),
        Command::Sweep(ref cmd) => commands::sweep(cmd),
        Command::Coordinate(ref cmd) => commands::coordinate(cmd),
        Command::Agent(ref cmd) => commands::agent(cmd),
        Command::Chaos(ref cmd) => commands::chaos(cmd),
        Command::Scenario(ref cmd) => commands::scenario(cmd),
        Command::MachineTemplate => Ok(commands::machine_template()),
        Command::Platform => Ok(commands::platform()),
        Command::Apps => Ok(commands::apps()),
        Command::Probe => Ok(commands::probe()),
        Command::Help => Ok(args::USAGE.to_string()),
    }
}
