//! Argument parsing for the `dufp` tool (hand-rolled; no external parser).

use dufp_types::{Ratio, Watts};

/// Usage text.
pub const USAGE: &str = "\
dufp — dynamic uncore frequency scaling and power capping

USAGE:
    dufp run <APP> [--controller default|duf|dufp|dufpf|dnpc|cap:<W>] [--slowdown PCT]
                   [--sockets N] [--runs N] [--seed S] [--json]
                   [--engine tick|event]
                   [--trace-out FILE.jsonl] [--fault-plan PLAN|FILE.json]
                   [--journal-dir DIR] [--fsync always|never|every:N]
                   <APP> is a modeled application (see `dufp apps`) or a
                   path to a workload spec file ending in .json
                   --trace-out records every controller decision (with its
                   reason code) as JSON Lines; requires --runs 1
                   --fault-plan injects seeded faults into the simulated
                   hardware (chaos run); PLAN is either a path to a JSON
                   fault plan or an inline rule list like
                   \"seed=42;write,reg=cap,p=0.01\"
                   --journal-dir makes the run crash-safe: every control
                   interval is appended to a write-ahead journal in DIR
                   and the control state is checkpointed periodically;
                   requires --runs 1. --fsync picks the durability policy
                   for journal appends (default every:8)
                   --engine selects the simulation stepping engine:
                   `event` (default) is the memoized fast path, `tick`
                   the legacy per-tick oracle. Both are bit-identical;
                   tick exists for differential testing and benchmarks
    dufp resume <DIR> [--json]
                             resume a crashed journaled run from its
                             journal directory and finish it
    dufp journal <DIR>       inspect a journal directory: metadata,
                             recorded intervals, checkpoints, completion
    dufp trace <FILE.jsonl> [--summary]
                             inspect a decision trace written by --trace-out;
                             --summary tallies events per reason code
    dufp timeline <APP> [--controller ...] [--slowdown PCT] [--seed S]
                             render frequency/power/cap timelines (Fig 5 style)
    dufp machine-template    print the default platform as editable JSON
                             (use with --machine FILE on run/timeline/plan)
    dufp record <APP> --out FILE.json [--seed S]
                             run once, capture the counter trace and emit a
                             workload spec reproducing its phase signature
    dufp plan <APP> [--runs N] [--seed S]
                             sweep DUFP tolerances and recommend the best
                             power-saving setting with no energy loss (§V-H)
    dufp sweep [--grid FILE.toml | --paper] [--jobs N] [--out FILE.jsonl]
               [--engine tick|event] [--json]
                             expand a (app × policy × slowdown × seed)
                             grid into independent experiments, run them
                             on a work-stealing pool of N workers (default
                             all cores) and write one JSON line per grid
                             point, in grid order. Output is byte-identical
                             for any --jobs value. --paper runs the paper
                             evaluation grid (4 policies × 5 slowdowns ×
                             8 seeds); --grid reads a TOML grid file
    dufp coordinate --listen ADDR --budget-w W
                    [--policy static|demand] [--epoch-ms N] [--max-epochs N]
                    [--journal-dir DIR] [--standby-of ADDR]
                    [--successor ADDR] [--json] [--trace-out FILE.jsonl]
                             serve a fleet power budget over TCP: run the
                             allocator each epoch over live agent demand
                             reports, reclaim dead agents' watts (heartbeat
                             timeout = 1.5 epochs), and push budget grants.
                             Runs until every agent that joined has left,
                             --max-epochs is reached, or Ctrl-C.
                             --journal-dir journals every fleet input with
                             periodic checkpoints; a restart (or a warm
                             standby sharing DIR) rebuilds the fleet state
                             byte-identically and takes over at a higher
                             coordination term, fencing the old primary.
                             --standby-of ADDR waits probing the primary
                             and binds only after it goes silent (requires
                             --journal-dir). --successor ADDR hands agents
                             to ADDR on clean shutdown (Handover frame)
    dufp agent --connect ADDR[,ADDR...] --node NAME [--app APP[,APP...]]
               [--slowdown PCT] [--seed S] [--safe-cap W] [--pace-ms N]
               [--max-intervals N] [--json] [--trace-out FILE.jsonl]
                             run a simulated node under DUFP with its power
                             cap clamped to the coordinator's grants; falls
                             back to --safe-cap (and keeps running) when
                             the coordinator is unreachable. Extra
                             --connect addresses are standby coordinators
                             tried in order on reconnect (patient backoff)
    dufp chaos [--seed S] [--agents N] [--epochs N] [--budget-w W]
               [--scenario NAME] [--net-fault-plan PLAN|FILE.json]
               [--fault-plan PLAN|FILE.json] [--out FILE.jsonl] [--json]
                             run the deterministic adversarial fleet soak:
                             each scenario drives an in-process fleet
                             through seeded network chaos (drops, delays,
                             corruption, partitions, kills) and byzantine
                             agents (lying demand, replays, overdraw),
                             verifies budget conservation, honest-agent
                             floors and quarantine/reclaim latency, and
                             emits a ranked resilience scorecard (one JSON
                             line per scenario; byte-identical per seed).
                             Exits nonzero if any scenario breaks
                             conservation or floors. --scenario runs one
                             scenario instead of the matrix;
                             --net-fault-plan merges extra network-fault
                             rules into every scenario; --fault-plan adds
                             seeded MSR/actuation faults on the agents
    dufp scenario [--spec FILE.toml] [--seed S] [--policies LIST] [--jobs N]
                  [--out FILE.jsonl] [--trace-out FILE.jsonl] [--json]
                  [--print-example]
                             run a trace-driven datacenter scenario: a
                             heterogeneous fleet of co-tenant nodes under
                             a diurnal/bursty arrival model and a global
                             power budget. Each requested policy (default
                             uncapped,static-split,demand-based) is scored
                             against the uncapped baseline into one JSON
                             line: fleet energy saved vs. SLO violations.
                             Output is a pure function of --seed and is
                             byte-identical for any --jobs value. Without
                             --spec the built-in example scenario runs;
                             --print-example prints that spec as TOML.
                             --trace-out records the first policy's
                             decision trace (intensity shifts, SLO
                             violations, budget grants) as JSON Lines.
                             Exits nonzero if any run breaks per-tenant
                             energy conservation
    dufp platform            print the target platform (Table I)
    dufp apps                list the modeled applications
    dufp probe               check real-hardware access paths
    dufp help                show this text

EXAMPLES:
    dufp run CG --controller dufp --slowdown 10
    dufp run EP --controller duf --slowdown 5 --runs 10 --json
    dufp run HPL --controller cap:100
    dufp run CG --trace-out /tmp/cg.jsonl && dufp trace /tmp/cg.jsonl --summary
    dufp run CG --fault-plan \"seed=7;write,reg=cap,p=0.01\" --trace-out /tmp/chaos.jsonl
    dufp run CG --journal-dir /tmp/cg-journal && dufp journal /tmp/cg-journal
    dufp resume /tmp/cg-journal
    dufp coordinate --listen 127.0.0.1:7070 --budget-w 300 --max-epochs 60 &
    dufp agent --connect 127.0.0.1:7070 --node n0 --app HPL --pace-ms 5
    dufp sweep --paper --jobs 8 --out results.jsonl
    dufp sweep --grid grid.toml --jobs 2 --json
    dufp chaos --seed 42 --out scorecard.jsonl
    dufp chaos --scenario byzantine-minority --json
    dufp chaos --net-fault-plan \"drop,p=0.1;byz-nan,peer=0\" --epochs 60
    dufp scenario --print-example > day.toml
    dufp scenario --spec day.toml --seed 7 --out rows.jsonl
    dufp scenario --seed 3 --policies demand-based --json
";

/// A parsed `run` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Application name (BT, CG, ..., HPL, LAMMPS).
    pub app: String,
    /// Controller selector.
    pub controller: ControllerArg,
    /// Tolerated slowdown.
    pub slowdown: Ratio,
    /// Number of sockets to simulate.
    pub sockets: u16,
    /// Repetitions (1 = single run, no statistics).
    pub runs: usize,
    /// RNG seed.
    pub seed: u64,
    /// Emit machine-readable JSON instead of a human summary.
    pub json: bool,
    /// Optional path to a machine description (serialized `SimConfig`).
    pub machine: Option<String>,
    /// Optional JSONL output path for the decision trace (enables
    /// telemetry for the run).
    pub trace_out: Option<String>,
    /// Optional fault plan: a path to a JSON plan file or an inline DSL
    /// string (see `dufp_msr::FaultPlan::parse`). Enables telemetry so the
    /// resilience events land in the decision trace.
    pub fault_plan: Option<String>,
    /// Optional journal directory: makes the run crash-safe (write-ahead
    /// journal + periodic checkpoints, resumable with `dufp resume`).
    pub journal_dir: Option<String>,
    /// Fsync policy for journal appends (`always`, `never`, `every:N`).
    pub fsync: Option<FsyncArg>,
    /// Simulation stepping engine.
    pub engine: EngineArg,
}

/// Parsed `--engine` value. Mirrors `dufp::Engine` so argument parsing
/// stays free of the core crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineArg {
    /// Legacy per-tick stepping — the differential oracle.
    Tick,
    /// Memoized fast path (default), bit-identical to `Tick`.
    #[default]
    Event,
}

fn parse_engine(v: &str) -> Result<EngineArg, String> {
    match v {
        "tick" => Ok(EngineArg::Tick),
        "event" => Ok(EngineArg::Event),
        other => Err(format!("unknown engine {other} (tick|event)")),
    }
}

/// Parsed `--fsync` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncArg {
    /// fsync after every record.
    Always,
    /// Never fsync (the OS decides).
    Never,
    /// fsync after every N records.
    EveryN(u32),
}

fn parse_fsync(v: &str) -> Result<FsyncArg, String> {
    match v {
        "always" => Ok(FsyncArg::Always),
        "never" => Ok(FsyncArg::Never),
        other => {
            let n = other
                .strip_prefix("every:")
                .ok_or_else(|| format!("bad fsync policy {other} (always|never|every:N)"))?;
            let n: u32 = n.parse().map_err(|_| format!("bad fsync interval {n}"))?;
            if n == 0 {
                return Err("fsync every:0 makes no sense; use never".into());
            }
            Ok(FsyncArg::EveryN(n))
        }
    }
}

/// Which controller to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControllerArg {
    /// No actuation.
    Default,
    /// Uncore only.
    Duf,
    /// Uncore + dynamic cap.
    Dufp,
    /// Uncore + direct core frequency + trailing cap (§VII future work).
    DufpF,
    /// The DNPC related-work baseline (frequency-linear model).
    Dnpc,
    /// Fixed whole-run cap.
    StaticCap(Watts),
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The selected subcommand.
    pub command: Command,
}

/// A parsed `record` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordSpec {
    /// Application (model name or .json spec path) to record.
    pub app: String,
    /// Output path for the captured workload file.
    pub out: String,
    /// RNG seed.
    pub seed: u64,
}

/// A parsed `trace` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCmd {
    /// Path to a decision-trace JSONL file (from `run --trace-out`).
    pub file: String,
    /// Tally events per reason instead of listing them.
    pub summary: bool,
}

/// A parsed `resume` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumeCmd {
    /// Journal directory of the crashed run.
    pub dir: String,
    /// Emit machine-readable JSON instead of a human summary.
    pub json: bool,
}

/// A parsed `journal` (inspection) invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalCmd {
    /// Journal directory to inspect.
    pub dir: String,
}

/// A parsed `coordinate` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordinateCmd {
    /// Listen address (`host:port`; `:0` picks a free port).
    pub listen: String,
    /// Global fleet power budget.
    pub budget: Watts,
    /// `static` (even split) or `demand` (demand-based reallocation).
    pub demand_based: bool,
    /// Allocator epoch length in milliseconds.
    pub epoch_ms: u64,
    /// Stop after this many epochs (None = until the fleet drains).
    pub max_epochs: Option<u64>,
    /// Emit machine-readable JSON instead of a human summary.
    pub json: bool,
    /// Optional JSONL output path for the grant/reclaim decision trace.
    pub trace_out: Option<String>,
    /// Journal fleet inputs to this directory (checkpoint+replay
    /// recovery; shared with a warm standby for failover).
    pub journal_dir: Option<String>,
    /// Run as a warm standby: probe this primary address and bind only
    /// after it goes silent. Requires `journal_dir`.
    pub standby_of: Option<String>,
    /// Successor address handed to agents on clean shutdown.
    pub successor: Option<String>,
}

/// A parsed `agent` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentCmd {
    /// Coordinator address (first entry of `--connect`).
    pub connect: String,
    /// Standby coordinator addresses tried in order on reconnect.
    pub standbys: Vec<String>,
    /// Node name announced in the Hello frame.
    pub node: String,
    /// Applications to run back to back.
    pub apps: Vec<String>,
    /// Tolerated slowdown for the node-local DUFP.
    pub slowdown: Ratio,
    /// RNG seed for the simulated node.
    pub seed: u64,
    /// Safe local static cap enforced while unconnected or degraded.
    pub safe_cap: Watts,
    /// Wall-clock pause per 200 ms control interval, in milliseconds.
    pub pace_ms: u64,
    /// Stop after this many control intervals even with work left.
    pub max_intervals: Option<u64>,
    /// Emit machine-readable JSON instead of a human summary.
    pub json: bool,
    /// Optional JSONL output path for the node's decision trace.
    pub trace_out: Option<String>,
}

/// A parsed `chaos` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCmd {
    /// Master seed: the whole scorecard is a pure function of it.
    pub seed: u64,
    /// Fleet size.
    pub agents: usize,
    /// Virtual epochs per scenario.
    pub epochs: u64,
    /// Global fleet budget in watts.
    pub budget_w: f64,
    /// Run one named scenario instead of the whole matrix.
    pub scenario: Option<String>,
    /// Extra network-fault rules merged into every scenario: a path to a
    /// JSON plan (when the value ends in `.json`) or an inline DSL string
    /// (see `dufp_net::NetFaultPlan::parse`).
    pub net_fault_plan: Option<String>,
    /// MSR/actuation fault plan applied on the simulated agents (see
    /// `dufp_msr::FaultPlan::parse`).
    pub fault_plan: Option<String>,
    /// Write the scorecard as JSON Lines to this path.
    pub out: Option<String>,
    /// Print the scorecard as JSON Lines on stdout instead of a table.
    pub json: bool,
}

/// A parsed `scenario` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioCmd {
    /// Path to a scenario TOML spec (`None` = the built-in example).
    pub spec: Option<String>,
    /// Seed: the whole scorecard is a pure function of it.
    pub seed: u64,
    /// Policies to score (labels accepted by `PolicyChoice::parse`).
    pub policies: Vec<String>,
    /// Worker count for the policy runs (`None` = all cores).
    pub jobs: Option<usize>,
    /// Write the scorecard as JSON Lines to this path.
    pub out: Option<String>,
    /// Write the first policy's decision trace as JSON Lines.
    pub trace_out: Option<String>,
    /// Print the scorecard as JSON Lines on stdout instead of a table.
    pub json: bool,
    /// Print the built-in example spec as TOML and exit.
    pub print_example: bool,
}

/// A parsed `sweep` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCmd {
    /// Path to a TOML grid file (`None` with `paper` = the paper grid).
    pub grid: Option<String>,
    /// Run the built-in paper evaluation grid.
    pub paper: bool,
    /// Worker count (`None` = all cores).
    pub jobs: Option<usize>,
    /// Output JSONL path.
    pub out: String,
    /// Emit a machine-readable summary instead of a human one.
    pub json: bool,
    /// Stepping engine override (`None` = whatever the grid file says,
    /// which itself defaults to the fast path).
    pub engine: Option<EngineArg>,
}

/// Subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run an application under a controller.
    Run(RunSpec),
    /// Resume a crashed journaled run.
    Resume(ResumeCmd),
    /// Inspect a journal directory.
    Journal(JournalCmd),
    /// Run once with tracing and render ASCII timelines.
    Timeline(RunSpec),
    /// Capture a counter trace into a workload spec file.
    Record(RecordSpec),
    /// Inspect a decision-trace JSONL file.
    Trace(TraceCmd),
    /// Recommend a tolerated-slowdown setting (§V-H).
    Plan(RunSpec),
    /// Run a batched experiment grid on a worker pool.
    Sweep(SweepCmd),
    /// Serve a fleet power budget over TCP.
    Coordinate(CoordinateCmd),
    /// Run a node agent against a coordinator.
    Agent(AgentCmd),
    /// Run the deterministic adversarial fleet soak.
    Chaos(ChaosCmd),
    /// Run a trace-driven datacenter scenario.
    Scenario(ScenarioCmd),
    /// Print the default platform as editable JSON.
    MachineTemplate,
    /// Print the platform description.
    Platform,
    /// List modeled applications.
    Apps,
    /// Check hardware access paths.
    Probe,
    /// Print usage.
    Help,
}

impl Cli {
    /// Parses `argv` (without the program name).
    pub fn parse(argv: &[String]) -> Result<Cli, String> {
        let mut it = argv.iter();
        let sub = it.next().map(String::as_str).unwrap_or("help");
        match sub {
            "platform" => Ok(Cli {
                command: Command::Platform,
            }),
            "machine-template" => Ok(Cli {
                command: Command::MachineTemplate,
            }),
            "apps" => Ok(Cli {
                command: Command::Apps,
            }),
            "probe" => Ok(Cli {
                command: Command::Probe,
            }),
            "help" | "--help" | "-h" => Ok(Cli {
                command: Command::Help,
            }),
            "trace" => {
                let file = it
                    .next()
                    .ok_or_else(|| format!("trace: missing <FILE.jsonl>\n\n{USAGE}"))?
                    .clone();
                let mut cmd = TraceCmd {
                    file,
                    summary: false,
                };
                for flag in it {
                    match flag.as_str() {
                        "--summary" => cmd.summary = true,
                        other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
                    }
                }
                Ok(Cli {
                    command: Command::Trace(cmd),
                })
            }
            "resume" => {
                let dir = it
                    .next()
                    .ok_or_else(|| format!("resume: missing <DIR>\n\n{USAGE}"))?
                    .clone();
                let mut cmd = ResumeCmd { dir, json: false };
                for flag in it {
                    match flag.as_str() {
                        "--json" => cmd.json = true,
                        other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
                    }
                }
                Ok(Cli {
                    command: Command::Resume(cmd),
                })
            }
            "journal" => {
                let dir = it
                    .next()
                    .ok_or_else(|| format!("journal: missing <DIR>\n\n{USAGE}"))?
                    .clone();
                if let Some(other) = it.next() {
                    return Err(format!("unknown flag {other}\n\n{USAGE}"));
                }
                Ok(Cli {
                    command: Command::Journal(JournalCmd { dir }),
                })
            }
            "record" => {
                let app = it
                    .next()
                    .ok_or_else(|| format!("record: missing <APP>\n\n{USAGE}"))?
                    .clone();
                let mut spec = RecordSpec {
                    app,
                    out: String::new(),
                    seed: 42,
                };
                while let Some(flag) = it.next() {
                    match flag.as_str() {
                        "--out" => spec.out = it.next().ok_or("--out needs a path")?.clone(),
                        "--seed" => {
                            let v = it.next().ok_or("--seed needs a value")?;
                            spec.seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
                        }
                        other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
                    }
                }
                if spec.out.is_empty() {
                    return Err("record: --out FILE.json is required".into());
                }
                Ok(Cli {
                    command: Command::Record(spec),
                })
            }
            "sweep" => {
                let mut cmd = SweepCmd {
                    grid: None,
                    paper: false,
                    jobs: None,
                    out: "results.jsonl".into(),
                    json: false,
                    engine: None,
                };
                while let Some(flag) = it.next() {
                    match flag.as_str() {
                        "--grid" => {
                            cmd.grid = Some(it.next().ok_or("--grid needs a path")?.clone())
                        }
                        "--paper" => cmd.paper = true,
                        "--jobs" => {
                            let v = it.next().ok_or("--jobs needs a value")?;
                            let n: usize = v.parse().map_err(|_| format!("bad job count {v}"))?;
                            if n == 0 {
                                return Err("need at least one worker".into());
                            }
                            cmd.jobs = Some(n);
                        }
                        "--out" => cmd.out = it.next().ok_or("--out needs a path")?.clone(),
                        "--json" => cmd.json = true,
                        "--engine" => {
                            let v = it.next().ok_or("--engine needs tick|event")?;
                            cmd.engine = Some(parse_engine(v)?);
                        }
                        other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
                    }
                }
                match (&cmd.grid, cmd.paper) {
                    (None, false) => {
                        return Err("sweep: pick a grid with --grid FILE.toml or --paper".into())
                    }
                    (Some(_), true) => {
                        return Err("sweep: --grid and --paper are mutually exclusive".into())
                    }
                    _ => {}
                }
                Ok(Cli {
                    command: Command::Sweep(cmd),
                })
            }
            "coordinate" => {
                let mut cmd = CoordinateCmd {
                    listen: String::new(),
                    budget: Watts(0.0),
                    demand_based: true,
                    epoch_ms: 1000,
                    max_epochs: None,
                    json: false,
                    trace_out: None,
                    journal_dir: None,
                    standby_of: None,
                    successor: None,
                };
                let mut budget_seen = false;
                while let Some(flag) = it.next() {
                    match flag.as_str() {
                        "--listen" => {
                            cmd.listen = it.next().ok_or("--listen needs host:port")?.clone()
                        }
                        "--budget-w" => {
                            let v = it.next().ok_or("--budget-w needs a value")?;
                            let w: f64 = v.parse().map_err(|_| format!("bad budget {v}"))?;
                            cmd.budget = Watts(w);
                            budget_seen = true;
                        }
                        "--policy" => {
                            let v = it.next().ok_or("--policy needs static|demand")?;
                            cmd.demand_based = match v.as_str() {
                                "static" => false,
                                "demand" => true,
                                other => {
                                    return Err(format!("unknown policy {other} (static|demand)"))
                                }
                            };
                        }
                        "--epoch-ms" => {
                            let v = it.next().ok_or("--epoch-ms needs a value")?;
                            cmd.epoch_ms = v.parse().map_err(|_| format!("bad epoch {v}"))?;
                            if cmd.epoch_ms == 0 {
                                return Err("epoch must be at least 1 ms".into());
                            }
                        }
                        "--max-epochs" => {
                            let v = it.next().ok_or("--max-epochs needs a value")?;
                            cmd.max_epochs =
                                Some(v.parse().map_err(|_| format!("bad epoch count {v}"))?);
                        }
                        "--json" => cmd.json = true,
                        "--trace-out" => {
                            cmd.trace_out =
                                Some(it.next().ok_or("--trace-out needs a path")?.clone())
                        }
                        "--journal-dir" => {
                            cmd.journal_dir =
                                Some(it.next().ok_or("--journal-dir needs a path")?.clone())
                        }
                        "--standby-of" => {
                            cmd.standby_of =
                                Some(it.next().ok_or("--standby-of needs host:port")?.clone())
                        }
                        "--successor" => {
                            cmd.successor =
                                Some(it.next().ok_or("--successor needs host:port")?.clone())
                        }
                        other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
                    }
                }
                if cmd.listen.is_empty() {
                    return Err("coordinate: --listen host:port is required".into());
                }
                if !budget_seen {
                    return Err("coordinate: --budget-w W is required".into());
                }
                if cmd.standby_of.is_some() && cmd.journal_dir.is_none() {
                    return Err(
                        "coordinate: --standby-of requires --journal-dir (a standby \
                         promotes by replaying the shared journal)"
                            .into(),
                    );
                }
                Ok(Cli {
                    command: Command::Coordinate(cmd),
                })
            }
            "agent" => {
                let mut cmd = AgentCmd {
                    connect: String::new(),
                    standbys: Vec::new(),
                    node: String::new(),
                    apps: vec!["EP".into()],
                    slowdown: Ratio::from_percent(10.0),
                    seed: 42,
                    safe_cap: Watts(90.0),
                    pace_ms: 0,
                    max_intervals: None,
                    json: false,
                    trace_out: None,
                };
                while let Some(flag) = it.next() {
                    match flag.as_str() {
                        "--connect" => {
                            let v = it
                                .next()
                                .ok_or("--connect needs host:port[,host:port...]")?;
                            let mut addrs = v.split(',').map(str::to_string);
                            cmd.connect = addrs.next().unwrap_or_default();
                            cmd.standbys = addrs.collect();
                        }
                        "--node" => cmd.node = it.next().ok_or("--node needs a name")?.clone(),
                        "--app" => {
                            let v = it.next().ok_or("--app needs a name (or list A,B)")?;
                            cmd.apps = v.split(',').map(str::to_string).collect();
                        }
                        "--slowdown" => {
                            let v = it.next().ok_or("--slowdown needs a value")?;
                            let pct: f64 = v.parse().map_err(|_| format!("bad slowdown {v}"))?;
                            if !(0.0..100.0).contains(&pct) {
                                return Err(format!("slowdown {pct} outside [0, 100)"));
                            }
                            cmd.slowdown = Ratio::from_percent(pct);
                        }
                        "--seed" => {
                            let v = it.next().ok_or("--seed needs a value")?;
                            cmd.seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
                        }
                        "--safe-cap" => {
                            let v = it.next().ok_or("--safe-cap needs a value")?;
                            let w: f64 = v.parse().map_err(|_| format!("bad safe cap {v}"))?;
                            cmd.safe_cap = Watts(w);
                        }
                        "--pace-ms" => {
                            let v = it.next().ok_or("--pace-ms needs a value")?;
                            cmd.pace_ms = v.parse().map_err(|_| format!("bad pace {v}"))?;
                        }
                        "--max-intervals" => {
                            let v = it.next().ok_or("--max-intervals needs a value")?;
                            cmd.max_intervals =
                                Some(v.parse().map_err(|_| format!("bad interval count {v}"))?);
                        }
                        "--json" => cmd.json = true,
                        "--trace-out" => {
                            cmd.trace_out =
                                Some(it.next().ok_or("--trace-out needs a path")?.clone())
                        }
                        other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
                    }
                }
                if cmd.connect.is_empty() {
                    return Err("agent: --connect host:port is required".into());
                }
                if cmd.node.is_empty() {
                    return Err("agent: --node NAME is required".into());
                }
                Ok(Cli {
                    command: Command::Agent(cmd),
                })
            }
            "chaos" => {
                let mut cmd = ChaosCmd {
                    seed: 42,
                    agents: 8,
                    epochs: 40,
                    budget_w: 700.0,
                    scenario: None,
                    net_fault_plan: None,
                    fault_plan: None,
                    out: None,
                    json: false,
                };
                while let Some(flag) = it.next() {
                    match flag.as_str() {
                        "--seed" => {
                            let v = it.next().ok_or("--seed needs a value")?;
                            cmd.seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
                        }
                        "--agents" => {
                            let v = it.next().ok_or("--agents needs a value")?;
                            cmd.agents = v.parse().map_err(|_| format!("bad agent count {v}"))?;
                            if cmd.agents == 0 {
                                return Err("need at least one agent".into());
                            }
                        }
                        "--epochs" => {
                            let v = it.next().ok_or("--epochs needs a value")?;
                            cmd.epochs = v.parse().map_err(|_| format!("bad epoch count {v}"))?;
                            if cmd.epochs == 0 {
                                return Err("need at least one epoch".into());
                            }
                        }
                        "--budget-w" => {
                            let v = it.next().ok_or("--budget-w needs a value")?;
                            cmd.budget_w = v.parse().map_err(|_| format!("bad budget {v}"))?;
                        }
                        "--scenario" => {
                            cmd.scenario = Some(it.next().ok_or("--scenario needs a name")?.clone())
                        }
                        "--net-fault-plan" => {
                            cmd.net_fault_plan = Some(
                                it.next()
                                    .ok_or("--net-fault-plan needs a plan string or file")?
                                    .clone(),
                            )
                        }
                        "--fault-plan" => {
                            cmd.fault_plan = Some(
                                it.next()
                                    .ok_or("--fault-plan needs a plan string or file")?
                                    .clone(),
                            )
                        }
                        "--out" => cmd.out = Some(it.next().ok_or("--out needs a path")?.clone()),
                        "--json" => cmd.json = true,
                        other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
                    }
                }
                Ok(Cli {
                    command: Command::Chaos(cmd),
                })
            }
            "scenario" => {
                let mut cmd = ScenarioCmd {
                    spec: None,
                    seed: 42,
                    policies: vec![
                        "uncapped".into(),
                        "static-split".into(),
                        "demand-based".into(),
                    ],
                    jobs: None,
                    out: None,
                    trace_out: None,
                    json: false,
                    print_example: false,
                };
                while let Some(flag) = it.next() {
                    match flag.as_str() {
                        "--spec" => {
                            cmd.spec = Some(it.next().ok_or("--spec needs a path")?.clone())
                        }
                        "--seed" => {
                            let v = it.next().ok_or("--seed needs a value")?;
                            cmd.seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
                        }
                        "--policies" => {
                            let v = it.next().ok_or("--policies needs a comma list")?;
                            cmd.policies = v.split(',').map(|s| s.trim().to_string()).collect();
                            if cmd.policies.iter().any(String::is_empty) {
                                return Err(format!("bad policy list {v}"));
                            }
                        }
                        "--jobs" => {
                            let v = it.next().ok_or("--jobs needs a value")?;
                            let jobs: usize =
                                v.parse().map_err(|_| format!("bad job count {v}"))?;
                            if jobs == 0 {
                                return Err("need at least one job".into());
                            }
                            cmd.jobs = Some(jobs);
                        }
                        "--out" => cmd.out = Some(it.next().ok_or("--out needs a path")?.clone()),
                        "--trace-out" => {
                            cmd.trace_out =
                                Some(it.next().ok_or("--trace-out needs a path")?.clone())
                        }
                        "--json" => cmd.json = true,
                        "--print-example" => cmd.print_example = true,
                        other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
                    }
                }
                Ok(Cli {
                    command: Command::Scenario(cmd),
                })
            }
            "run" | "timeline" | "plan" => {
                let app = it
                    .next()
                    .ok_or_else(|| format!("{sub}: missing <APP>\n\n{USAGE}"))?
                    .clone();
                let mut spec = RunSpec {
                    app,
                    controller: ControllerArg::Dufp,
                    slowdown: Ratio::from_percent(5.0),
                    sockets: 4,
                    runs: 1,
                    seed: 42,
                    json: false,
                    machine: None,
                    trace_out: None,
                    fault_plan: None,
                    journal_dir: None,
                    fsync: None,
                    engine: EngineArg::default(),
                };
                while let Some(flag) = it.next() {
                    match flag.as_str() {
                        "--controller" => {
                            let v = it.next().ok_or("--controller needs a value")?;
                            spec.controller = parse_controller(v)?;
                        }
                        "--slowdown" => {
                            let v = it.next().ok_or("--slowdown needs a value")?;
                            let pct: f64 = v.parse().map_err(|_| format!("bad slowdown {v}"))?;
                            if !(0.0..100.0).contains(&pct) {
                                return Err(format!("slowdown {pct} outside [0, 100)"));
                            }
                            spec.slowdown = Ratio::from_percent(pct);
                        }
                        "--sockets" => {
                            let v = it.next().ok_or("--sockets needs a value")?;
                            spec.sockets =
                                v.parse().map_err(|_| format!("bad socket count {v}"))?;
                            if spec.sockets == 0 {
                                return Err("need at least one socket".into());
                            }
                        }
                        "--runs" => {
                            let v = it.next().ok_or("--runs needs a value")?;
                            spec.runs = v.parse().map_err(|_| format!("bad run count {v}"))?;
                            if spec.runs == 0 {
                                return Err("need at least one run".into());
                            }
                        }
                        "--seed" => {
                            let v = it.next().ok_or("--seed needs a value")?;
                            spec.seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
                        }
                        "--json" => spec.json = true,
                        "--machine" => {
                            spec.machine = Some(it.next().ok_or("--machine needs a path")?.clone())
                        }
                        "--trace-out" => {
                            spec.trace_out =
                                Some(it.next().ok_or("--trace-out needs a path")?.clone())
                        }
                        "--fault-plan" => {
                            spec.fault_plan = Some(
                                it.next()
                                    .ok_or("--fault-plan needs a plan string or file")?
                                    .clone(),
                            )
                        }
                        "--journal-dir" => {
                            spec.journal_dir =
                                Some(it.next().ok_or("--journal-dir needs a path")?.clone())
                        }
                        "--fsync" => {
                            let v = it.next().ok_or("--fsync needs a policy")?;
                            spec.fsync = Some(parse_fsync(v)?);
                        }
                        "--engine" => {
                            let v = it.next().ok_or("--engine needs tick|event")?;
                            spec.engine = parse_engine(v)?;
                        }
                        other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
                    }
                }
                if spec.fsync.is_some() && spec.journal_dir.is_none() {
                    return Err("--fsync only applies to journaled runs; add --journal-dir".into());
                }
                if spec.journal_dir.is_some() && sub != "run" {
                    return Err(format!(
                        "--journal-dir is only valid with `run`, not `{sub}`"
                    ));
                }
                Ok(Cli {
                    command: match sub {
                        "timeline" => Command::Timeline(spec),
                        "plan" => Command::Plan(spec),
                        _ => Command::Run(spec),
                    },
                })
            }
            other => Err(format!("unknown subcommand {other}\n\n{USAGE}")),
        }
    }
}

fn parse_controller(v: &str) -> Result<ControllerArg, String> {
    match v {
        "default" => Ok(ControllerArg::Default),
        "duf" => Ok(ControllerArg::Duf),
        "dufp" => Ok(ControllerArg::Dufp),
        "dufpf" | "dufp-f" => Ok(ControllerArg::DufpF),
        "dnpc" => Ok(ControllerArg::Dnpc),
        other => {
            if let Some(w) = other.strip_prefix("cap:") {
                let watts: f64 = w.parse().map_err(|_| format!("bad cap value {w}"))?;
                if !(1.0..=1000.0).contains(&watts) {
                    return Err(format!("cap {watts} W outside a sane range"));
                }
                Ok(ControllerArg::StaticCap(Watts(watts)))
            } else {
                Err(format!(
                    "unknown controller {other} (default|duf|dufp|dufpf|dnpc|cap:<W>)"
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Cli::parse(&v)
    }

    #[test]
    fn bare_invocation_is_help() {
        assert_eq!(parse(&[]).unwrap().command, Command::Help);
    }

    #[test]
    fn run_with_all_flags() {
        let cli = parse(&[
            "run",
            "CG",
            "--controller",
            "dufp",
            "--slowdown",
            "10",
            "--sockets",
            "2",
            "--runs",
            "5",
            "--seed",
            "7",
            "--json",
        ])
        .unwrap();
        let Command::Run(spec) = cli.command else {
            panic!("expected run");
        };
        assert_eq!(spec.app, "CG");
        assert_eq!(spec.controller, ControllerArg::Dufp);
        assert_eq!(spec.slowdown, Ratio::from_percent(10.0));
        assert_eq!(spec.sockets, 2);
        assert_eq!(spec.runs, 5);
        assert_eq!(spec.seed, 7);
        assert!(spec.json);
    }

    #[test]
    fn record_and_plan_parse() {
        let cli = parse(&["record", "CG", "--out", "/tmp/cg.json", "--seed", "9"]).unwrap();
        let Command::Record(spec) = cli.command else {
            panic!()
        };
        assert_eq!(spec.app, "CG");
        assert_eq!(spec.out, "/tmp/cg.json");
        assert_eq!(spec.seed, 9);
        assert!(parse(&["record", "CG"]).unwrap_err().contains("--out"));

        let cli = parse(&["plan", "EP", "--runs", "4"]).unwrap();
        assert!(matches!(cli.command, Command::Plan(_)));
    }

    #[test]
    fn extension_controllers_parse() {
        for (name, want) in [
            ("dufpf", ControllerArg::DufpF),
            ("dufp-f", ControllerArg::DufpF),
            ("dnpc", ControllerArg::Dnpc),
        ] {
            let cli = parse(&["run", "CG", "--controller", name]).unwrap();
            let Command::Run(spec) = cli.command else {
                panic!()
            };
            assert_eq!(spec.controller, want, "{name}");
        }
    }

    #[test]
    fn trace_subcommand_parses() {
        let cli = parse(&["trace", "/tmp/t.jsonl", "--summary"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Trace(TraceCmd {
                file: "/tmp/t.jsonl".into(),
                summary: true,
            })
        );
        let cli = parse(&["trace", "/tmp/t.jsonl"]).unwrap();
        let Command::Trace(cmd) = cli.command else {
            panic!()
        };
        assert!(!cmd.summary);
        assert!(parse(&["trace"]).unwrap_err().contains("missing <FILE"));

        let cli = parse(&["run", "CG", "--trace-out", "/tmp/t.jsonl"]).unwrap();
        let Command::Run(spec) = cli.command else {
            panic!()
        };
        assert_eq!(spec.trace_out.as_deref(), Some("/tmp/t.jsonl"));
    }

    #[test]
    fn fault_plan_flag_parses() {
        let cli = parse(&["run", "CG", "--fault-plan", "seed=7;write,reg=cap,p=0.01"]).unwrap();
        let Command::Run(spec) = cli.command else {
            panic!()
        };
        assert_eq!(
            spec.fault_plan.as_deref(),
            Some("seed=7;write,reg=cap,p=0.01")
        );
        assert!(parse(&["run", "CG", "--fault-plan"])
            .unwrap_err()
            .contains("--fault-plan"));
    }

    #[test]
    fn journal_flags_parse() {
        let cli = parse(&["run", "EP", "--journal-dir", "/tmp/j", "--fsync", "every:4"]).unwrap();
        let Command::Run(spec) = cli.command else {
            panic!()
        };
        assert_eq!(spec.journal_dir.as_deref(), Some("/tmp/j"));
        assert_eq!(spec.fsync, Some(FsyncArg::EveryN(4)));

        for (v, want) in [("always", FsyncArg::Always), ("never", FsyncArg::Never)] {
            let cli = parse(&["run", "EP", "--journal-dir", "/tmp/j", "--fsync", v]).unwrap();
            let Command::Run(spec) = cli.command else {
                panic!()
            };
            assert_eq!(spec.fsync, Some(want), "{v}");
        }

        assert!(parse(&["run", "EP", "--fsync", "always"])
            .unwrap_err()
            .contains("--journal-dir"));
        assert!(parse(&["run", "EP", "--journal-dir", "/tmp/j", "--fsync", "every:0"]).is_err());
        assert!(parse(&[
            "run",
            "EP",
            "--journal-dir",
            "/tmp/j",
            "--fsync",
            "sometimes"
        ])
        .is_err());
        assert!(parse(&["timeline", "EP", "--journal-dir", "/tmp/j"])
            .unwrap_err()
            .contains("only valid with `run`"));
    }

    #[test]
    fn resume_and_journal_subcommands_parse() {
        let cli = parse(&["resume", "/tmp/j", "--json"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Resume(ResumeCmd {
                dir: "/tmp/j".into(),
                json: true,
            })
        );
        assert!(parse(&["resume"]).unwrap_err().contains("missing <DIR>"));

        let cli = parse(&["journal", "/tmp/j"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Journal(JournalCmd {
                dir: "/tmp/j".into(),
            })
        );
        assert!(parse(&["journal"]).unwrap_err().contains("missing <DIR>"));
        assert!(parse(&["journal", "/tmp/j", "--extra"]).is_err());
    }

    #[test]
    fn coordinate_subcommand_parses() {
        let cli = parse(&[
            "coordinate",
            "--listen",
            "127.0.0.1:7070",
            "--budget-w",
            "300",
            "--policy",
            "static",
            "--epoch-ms",
            "250",
            "--max-epochs",
            "40",
            "--json",
        ])
        .unwrap();
        let Command::Coordinate(cmd) = cli.command else {
            panic!()
        };
        assert_eq!(cmd.listen, "127.0.0.1:7070");
        assert_eq!(cmd.budget, Watts(300.0));
        assert!(!cmd.demand_based);
        assert_eq!(cmd.epoch_ms, 250);
        assert_eq!(cmd.max_epochs, Some(40));
        assert!(cmd.json);

        assert!(parse(&["coordinate", "--budget-w", "300"])
            .unwrap_err()
            .contains("--listen"));
        assert!(parse(&["coordinate", "--listen", "127.0.0.1:0"])
            .unwrap_err()
            .contains("--budget-w"));
        assert!(parse(&[
            "coordinate",
            "--listen",
            "127.0.0.1:0",
            "--budget-w",
            "300",
            "--policy",
            "greedy"
        ])
        .is_err());
    }

    #[test]
    fn coordinate_failover_flags_parse() {
        let cli = parse(&[
            "coordinate",
            "--listen",
            "127.0.0.1:7070",
            "--budget-w",
            "300",
            "--journal-dir",
            "/tmp/fleet-journal",
            "--successor",
            "127.0.0.1:7071",
        ])
        .unwrap();
        let Command::Coordinate(cmd) = cli.command else {
            panic!()
        };
        assert_eq!(cmd.journal_dir.as_deref(), Some("/tmp/fleet-journal"));
        assert_eq!(cmd.successor.as_deref(), Some("127.0.0.1:7071"));
        assert_eq!(cmd.standby_of, None);

        let cli = parse(&[
            "coordinate",
            "--listen",
            "127.0.0.1:7071",
            "--budget-w",
            "300",
            "--journal-dir",
            "/tmp/fleet-journal",
            "--standby-of",
            "127.0.0.1:7070",
        ])
        .unwrap();
        let Command::Coordinate(cmd) = cli.command else {
            panic!()
        };
        assert_eq!(cmd.standby_of.as_deref(), Some("127.0.0.1:7070"));

        // A standby without the shared journal cannot rebuild the fleet.
        let err = parse(&[
            "coordinate",
            "--listen",
            "127.0.0.1:7071",
            "--budget-w",
            "300",
            "--standby-of",
            "127.0.0.1:7070",
        ])
        .unwrap_err();
        assert!(err.contains("--journal-dir"), "{err}");
    }

    #[test]
    fn agent_subcommand_parses() {
        let cli = parse(&[
            "agent",
            "--connect",
            "127.0.0.1:7070",
            "--node",
            "n3",
            "--app",
            "EP,MG",
            "--safe-cap",
            "85",
            "--pace-ms",
            "5",
            "--max-intervals",
            "500",
        ])
        .unwrap();
        let Command::Agent(cmd) = cli.command else {
            panic!()
        };
        assert_eq!(cmd.connect, "127.0.0.1:7070");
        assert_eq!(cmd.node, "n3");
        assert_eq!(cmd.apps, vec!["EP".to_string(), "MG".to_string()]);
        assert_eq!(cmd.safe_cap, Watts(85.0));
        assert_eq!(cmd.pace_ms, 5);
        assert_eq!(cmd.max_intervals, Some(500));

        assert!(parse(&["agent", "--node", "n0"])
            .unwrap_err()
            .contains("--connect"));
        assert!(parse(&["agent", "--connect", "127.0.0.1:7070"])
            .unwrap_err()
            .contains("--node"));
    }

    #[test]
    fn agent_connect_list_splits_into_primary_and_standbys() {
        let cli = parse(&[
            "agent",
            "--connect",
            "127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072",
            "--node",
            "n0",
        ])
        .unwrap();
        let Command::Agent(cmd) = cli.command else {
            panic!()
        };
        assert_eq!(cmd.connect, "127.0.0.1:7070");
        assert_eq!(
            cmd.standbys,
            vec!["127.0.0.1:7071".to_string(), "127.0.0.1:7072".to_string()]
        );
    }

    #[test]
    fn chaos_subcommand_parses() {
        let cli = parse(&[
            "chaos",
            "--seed",
            "7",
            "--agents",
            "12",
            "--epochs",
            "60",
            "--budget-w",
            "900",
            "--scenario",
            "byzantine-minority",
            "--net-fault-plan",
            "drop,p=0.1",
            "--fault-plan",
            "write,reg=cap,p=0.01",
            "--out",
            "/tmp/score.jsonl",
            "--json",
        ])
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Chaos(ChaosCmd {
                seed: 7,
                agents: 12,
                epochs: 60,
                budget_w: 900.0,
                scenario: Some("byzantine-minority".into()),
                net_fault_plan: Some("drop,p=0.1".into()),
                fault_plan: Some("write,reg=cap,p=0.01".into()),
                out: Some("/tmp/score.jsonl".into()),
                json: true,
            })
        );

        // Defaults match the CI matrix shape.
        let cli = parse(&["chaos"]).unwrap();
        let Command::Chaos(cmd) = cli.command else {
            panic!()
        };
        assert_eq!(cmd.seed, 42);
        assert_eq!(cmd.agents, 8);
        assert_eq!(cmd.epochs, 40);
        assert_eq!(cmd.budget_w, 700.0);
        assert_eq!(cmd.scenario, None);

        assert!(parse(&["chaos", "--agents", "0"]).is_err());
        assert!(parse(&["chaos", "--epochs", "0"]).is_err());
        assert!(parse(&["chaos", "--scenario"]).is_err());
    }

    #[test]
    fn scenario_subcommand_parses() {
        let cli = parse(&[
            "scenario",
            "--spec",
            "day.toml",
            "--seed",
            "9",
            "--policies",
            "uncapped, demand-based",
            "--jobs",
            "3",
            "--out",
            "/tmp/rows.jsonl",
            "--trace-out",
            "/tmp/trace.jsonl",
            "--json",
        ])
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Scenario(ScenarioCmd {
                spec: Some("day.toml".into()),
                seed: 9,
                policies: vec!["uncapped".into(), "demand-based".into()],
                jobs: Some(3),
                out: Some("/tmp/rows.jsonl".into()),
                trace_out: Some("/tmp/trace.jsonl".into()),
                json: true,
                print_example: false,
            })
        );

        // Defaults: the example spec, the full policy set, all cores.
        let cli = parse(&["scenario"]).unwrap();
        let Command::Scenario(cmd) = cli.command else {
            panic!()
        };
        assert_eq!(cmd.spec, None);
        assert_eq!(cmd.seed, 42);
        assert_eq!(
            cmd.policies,
            vec!["uncapped", "static-split", "demand-based"]
        );
        assert!(!cmd.print_example);

        let cli = parse(&["scenario", "--print-example"]).unwrap();
        let Command::Scenario(cmd) = cli.command else {
            panic!()
        };
        assert!(cmd.print_example);

        assert!(parse(&["scenario", "--jobs", "0"]).is_err());
        assert!(parse(&["scenario", "--policies", "a,,b"]).is_err());
        assert!(parse(&["scenario", "--spec"]).is_err());
    }

    #[test]
    fn sweep_subcommand_parses() {
        let cli = parse(&[
            "sweep",
            "--paper",
            "--jobs",
            "4",
            "--out",
            "/tmp/r.jsonl",
            "--json",
        ])
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Sweep(SweepCmd {
                grid: None,
                paper: true,
                jobs: Some(4),
                out: "/tmp/r.jsonl".into(),
                json: true,
                engine: None,
            })
        );

        let cli = parse(&["sweep", "--grid", "g.toml"]).unwrap();
        let Command::Sweep(cmd) = cli.command else {
            panic!()
        };
        assert_eq!(cmd.grid.as_deref(), Some("g.toml"));
        assert_eq!(cmd.jobs, None, "default = all cores");
        assert_eq!(cmd.out, "results.jsonl");

        assert!(parse(&["sweep"]).unwrap_err().contains("--grid"));
        assert!(parse(&["sweep", "--grid", "g.toml", "--paper"])
            .unwrap_err()
            .contains("mutually exclusive"));
        assert!(parse(&["sweep", "--paper", "--jobs", "0"]).is_err());
        assert!(parse(&["sweep", "--paper", "--jobs", "lots"]).is_err());
    }

    #[test]
    fn engine_flag_parses_on_run_and_sweep() {
        let cli = parse(&["run", "CG", "--engine", "tick"]).unwrap();
        let Command::Run(spec) = cli.command else {
            panic!()
        };
        assert_eq!(spec.engine, EngineArg::Tick);

        let cli = parse(&["run", "CG"]).unwrap();
        let Command::Run(spec) = cli.command else {
            panic!()
        };
        assert_eq!(spec.engine, EngineArg::Event, "fast path is the default");

        let cli = parse(&["sweep", "--paper", "--engine", "tick"]).unwrap();
        let Command::Sweep(cmd) = cli.command else {
            panic!()
        };
        assert_eq!(cmd.engine, Some(EngineArg::Tick));

        let cli = parse(&["timeline", "CG", "--engine", "event"]).unwrap();
        let Command::Timeline(spec) = cli.command else {
            panic!()
        };
        assert_eq!(spec.engine, EngineArg::Event);

        assert!(parse(&["run", "CG", "--engine", "warp"])
            .unwrap_err()
            .contains("unknown engine"));
        assert!(parse(&["run", "CG", "--engine"]).is_err());
    }

    #[test]
    fn static_cap_controller_parses() {
        let cli = parse(&["run", "EP", "--controller", "cap:100"]).unwrap();
        let Command::Run(spec) = cli.command else {
            panic!()
        };
        assert_eq!(spec.controller, ControllerArg::StaticCap(Watts(100.0)));
    }

    #[test]
    fn defaults_match_paper_tool() {
        let cli = parse(&["run", "LU"]).unwrap();
        let Command::Run(spec) = cli.command else {
            panic!()
        };
        assert_eq!(spec.controller, ControllerArg::Dufp);
        assert_eq!(spec.slowdown, Ratio::from_percent(5.0));
        assert_eq!(spec.sockets, 4);
    }

    #[test]
    fn bad_inputs_are_rejected_with_messages() {
        assert!(parse(&["run"]).unwrap_err().contains("missing <APP>"));
        assert!(parse(&["run", "CG", "--slowdown", "150"])
            .unwrap_err()
            .contains("outside"));
        assert!(parse(&["run", "CG", "--controller", "magic"])
            .unwrap_err()
            .contains("unknown controller"));
        assert!(parse(&["run", "CG", "--sockets", "0"]).is_err());
        assert!(parse(&["run", "CG", "--runs", "0"]).is_err());
        assert!(parse(&["frobnicate"])
            .unwrap_err()
            .contains("unknown subcommand"));
        assert!(parse(&["run", "CG", "--controller", "cap:0"]).is_err());
    }
}
