//! Co-tenant socket sharing: several phase graphs on one package.
//!
//! The paper's testbed runs one application per machine; a production
//! fleet co-schedules tenants on shared sockets. This module simulates one
//! package executing N tenants at once, each an independent
//! [`dufp_workloads::Workload`] phase table driven by an *offered load*
//! (work units arriving per second) rather than a fixed batch:
//!
//! 1. arrivals accrue into a per-tenant backlog (`intensity ×` the phase's
//!    design-point service rate),
//! 2. the cores are split evenly across tenants with backlog; achievable
//!    bandwidth ([`dufp_model::BandwidthModel`]) is partitioned
//!    proportionally to each tenant's roofline demand,
//! 3. each tenant progresses its current phase at the resulting rate and
//!    cycles through its phase table forever (a service loop, not a batch),
//! 4. package power is integrated once for the socket and *attributed* to
//!    tenants by their share of the step's FLOPs and bytes, with the
//!    remainder assigned to the last active tenant so that
//!    `Σ tenant energy == socket energy` holds exactly, step by step.
//!
//! Like [`crate::SocketSim`], everything is deterministic: equal inputs
//! give bit-equal trajectories. There is no RNG here at all — scenario
//! noise lives in the arrival models one layer up.

use dufp_model::{
    BandwidthModel, CapEnforcer, CapEnforcerParams, DramPowerModel, PowerModel, RooflineModel,
    SocketActivity,
};
use dufp_types::{ArchSpec, BytesPerSec, Error, Hertz, Result, Seconds, Watts};
use dufp_workloads::Workload;
use std::sync::Arc;

/// Static description of the shared package: DVFS/uncore ranges, limits
/// and the three physics models. Built from an [`ArchSpec`]; heterogeneous
/// fleets override the models per machine class (a GPU-style node swaps in
/// a nearly-flat uncore transfer function, for example).
#[derive(Debug, Clone)]
pub struct SharedSocketCfg {
    /// Cores contributing compute capability.
    pub cores: u16,
    /// Lowest core P-state.
    pub core_freq_min: Hertz,
    /// Highest all-core frequency.
    pub core_freq_max: Hertz,
    /// DVFS ladder step.
    pub core_freq_step: Hertz,
    /// Lowest uncore frequency.
    pub uncore_min: Hertz,
    /// Highest uncore frequency.
    pub uncore_max: Hertz,
    /// Uncore actuation step.
    pub uncore_step: Hertz,
    /// Default long-term power limit (also the uncapped ceiling).
    pub pl1: Watts,
    /// Default short-term power limit.
    pub pl2: Watts,
    /// PL1 averaging window.
    pub pl1_window: Seconds,
    /// PL2 averaging window.
    pub pl2_window: Seconds,
    /// Lowest ceiling the node will enforce (the paper's 65 W floor).
    pub cap_floor: Watts,
    /// Package power model.
    pub power: PowerModel,
    /// Bandwidth transfer function (the per-class uncore signature).
    pub bandwidth: BandwidthModel,
    /// DRAM power model (measurement-only domain).
    pub dram: DramPowerModel,
    /// RAPL enforcement dynamics.
    pub cap: CapEnforcerParams,
}

impl SharedSocketCfg {
    /// A config for one package of `arch`, with the Xeon Gold 6130 power
    /// coefficients rescaled to the architecture's core count.
    pub fn from_arch(arch: &ArchSpec) -> Self {
        let mut power = PowerModel::xeon_gold_6130();
        power.cores = arch.cores_per_socket;
        let mut bandwidth = BandwidthModel::xeon_gold_6130();
        bandwidth.peak = arch.peak_bandwidth;
        bandwidth.knee_freq = arch.uncore_freq_max * 0.8;
        SharedSocketCfg {
            cores: arch.cores_per_socket,
            core_freq_min: arch.core_freq_min,
            core_freq_max: arch.core_freq_max,
            core_freq_step: arch.core_freq_step,
            uncore_min: arch.uncore_freq_min,
            uncore_max: arch.uncore_freq_max,
            uncore_step: arch.uncore_freq_step,
            pl1: arch.pl1_default,
            pl2: arch.pl2_default,
            pl1_window: arch.pl1_window,
            pl2_window: arch.pl2_window,
            cap_floor: arch.cap_floor,
            power,
            bandwidth,
            dram: DramPowerModel::ddr4_64gib(),
            cap: CapEnforcerParams::default(),
        }
    }
}

/// One tenant's phase table plus its service-loop state.
#[derive(Debug, Clone)]
struct TenantState {
    name: String,
    workload: Arc<Workload>,
    /// Design-point service rate per phase (units/s with the whole socket
    /// at max frequency and peak bandwidth) — the yardstick offered load
    /// and SLO backlog are measured against.
    nominal_rate: Vec<f64>,
    phase_idx: usize,
    units_into_phase: f64,
    backlog_units: f64,
    /// Offered-load multiplier for the current step, set by the scenario
    /// layer from its arrival model (1.0 = design-point load).
    intensity: f64,
    acct: TenantAccount,
}

/// Cumulative per-tenant accounting, exact by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TenantAccount {
    /// Package energy attributed to this tenant (J).
    pub energy_j: f64,
    /// Floating-point operations served.
    pub flops: f64,
    /// Memory traffic served (bytes).
    pub bytes: f64,
    /// Work units offered by the arrival process.
    pub offered_units: f64,
    /// Work units actually served.
    pub served_units: f64,
}

/// What one `step` did, for the scenario layer's gauges and SLO checks.
#[derive(Debug, Clone)]
pub struct SharedStep {
    /// Chosen core frequency.
    pub core_freq: Hertz,
    /// Chosen uncore frequency.
    pub uncore_freq: Hertz,
    /// Package power over the step.
    pub pkg_power: Watts,
    /// Package energy of the step (J).
    pub pkg_energy_j: f64,
    /// DRAM energy of the step (J, measurement-only).
    pub dram_energy_j: f64,
    /// Aggregate achieved bandwidth.
    pub achieved_bw: BytesPerSec,
    /// Per-tenant package energy attributed this step (J); sums exactly
    /// to [`SharedStep::pkg_energy_j`].
    pub tenant_energy_j: Vec<f64>,
}

/// A verified idle fixed point of [`SharedSocketSim::step`], replayed by
/// [`SharedSocketSim::step_fast`] while every tenant queue stays drained.
///
/// The memo is only built after observing one full `step` that left the
/// socket's evolving state (memory pressure, uncore point, firmware
/// averages) bitwise unchanged — the analytic guarantee that replaying the
/// cached outputs is exactly what ticking would produce. A backlogged or
/// loaded socket never fast-forwards: any arrival intensity or queued work
/// fails the idle check and falls through to the full step.
#[derive(Debug, Clone)]
struct IdleMemo {
    dt_bits: u64,
    step: SharedStep,
}

/// A package co-scheduling N tenants under one RAPL ceiling.
#[derive(Debug, Clone)]
pub struct SharedSocketSim {
    cfg: SharedSocketCfg,
    tenants: Vec<TenantState>,
    enforcer: CapEnforcer,
    ceiling: Watts,
    uncore: Hertz,
    /// EMA of achieved-bandwidth utilisation, drives the built-in
    /// DUF-style uncore governor (memory pressure up → uncore up).
    mem_pressure: f64,
    memo: Option<IdleMemo>,
}

impl SharedSocketSim {
    /// Builds the socket with `tenants` (name, phase table) pairs. Tenant
    /// weights are expressed by scaling the table first
    /// ([`Workload::scaled`]); the socket itself treats tenants equally.
    pub fn new(cfg: SharedSocketCfg, tenants: Vec<(String, Arc<Workload>)>) -> Result<Self> {
        if tenants.is_empty() {
            return Err(Error::invalid(
                "tenants",
                "a shared socket needs at least one tenant",
            ));
        }
        let roofline = RooflineModel { cores: cfg.cores };
        let tenants = tenants
            .into_iter()
            .map(|(name, workload)| {
                let nominal_rate: Vec<f64> = workload
                    .phases
                    .iter()
                    .map(|p| {
                        roofline
                            .progress(&p.rates, cfg.core_freq_max, cfg.bandwidth.peak)
                            .units_per_sec
                    })
                    .collect();
                TenantState {
                    name,
                    workload,
                    nominal_rate,
                    phase_idx: 0,
                    units_into_phase: 0.0,
                    backlog_units: 0.0,
                    intensity: 0.0,
                    acct: TenantAccount::default(),
                }
            })
            .collect();
        let enforcer = CapEnforcer::new(cfg.pl1, cfg.pl1_window, cfg.pl2, cfg.pl2_window, cfg.cap);
        let ceiling = cfg.pl1;
        let uncore = cfg.uncore_max;
        Ok(SharedSocketSim {
            cfg,
            tenants,
            enforcer,
            ceiling,
            uncore,
            mem_pressure: 0.5,
            memo: None,
        })
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Tenant names, in slot order.
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants.iter().map(|t| t.name.clone()).collect()
    }

    /// The config the socket was built with.
    pub fn cfg(&self) -> &SharedSocketCfg {
        &self.cfg
    }

    /// Cumulative accounting for tenant `i`.
    pub fn account(&self, i: usize) -> TenantAccount {
        self.tenants.get(i).map(|t| t.acct).unwrap_or_default()
    }

    /// Current backlog of tenant `i`, in seconds of design-point work
    /// (the unit SLO thresholds are expressed in).
    pub fn backlog_seconds(&self, i: usize) -> f64 {
        let Some(t) = self.tenants.get(i) else {
            return 0.0;
        };
        let rate = t.nominal_rate[t.phase_idx];
        if rate > 0.0 {
            t.backlog_units / rate
        } else {
            0.0
        }
    }

    /// Sets tenant `i`'s offered-load multiplier for subsequent steps.
    pub fn set_intensity(&mut self, i: usize, intensity: f64) {
        if let Some(t) = self.tenants.get_mut(i) {
            let v = intensity.clamp(0.0, 8.0);
            // A no-op write (scenario drivers re-assert intensity every
            // tick) must not evict the idle memo.
            if v.to_bits() != t.intensity.to_bits() {
                t.intensity = v;
                self.memo = None;
            }
        }
    }

    /// Applies a new budget ceiling (clamped to `[cap_floor, pl1]`); the
    /// short-term limit keeps the platform's PL2/PL1 ratio.
    pub fn set_ceiling(&mut self, ceiling: Watts) {
        let c = Watts(
            ceiling
                .value()
                .clamp(self.cfg.cap_floor.value(), self.cfg.pl1.value()),
        );
        // Re-asserting the current ceiling (coordinators re-grant the same
        // budget) changes nothing, so it must not evict the idle memo.
        if c.value().to_bits() == self.ceiling.value().to_bits() {
            return;
        }
        self.ceiling = c;
        let ratio = self.cfg.pl2.value() / self.cfg.pl1.value().max(1e-9);
        self.enforcer.set_limits(c, Watts(c.value() * ratio));
        self.memo = None;
    }

    /// The ceiling currently enforced.
    pub fn ceiling(&self) -> Watts {
        self.ceiling
    }

    /// True when any tenant still has backlog.
    pub fn has_backlog(&self) -> bool {
        self.tenants.iter().any(|t| t.backlog_units > 1e-12)
    }

    /// True when no tenant has backlog or offered load — the only regime
    /// the fast path is allowed to fast-forward.
    fn all_idle(&self) -> bool {
        self.tenants
            .iter()
            .all(|t| t.backlog_units <= 1e-12 && t.intensity == 0.0)
    }

    /// [`SharedSocketSim::step`] with idle fast-forwarding: while every
    /// tenant queue is drained, no load is offered and the socket state has
    /// reached a bitwise fixed point, the cached step outputs are replayed
    /// (plus the exact per-tenant energy accrual) instead of re-deriving
    /// them. Bit-identical to calling `step` — proven, not assumed: the
    /// memo is built only from an observed fixed-point step, and any
    /// arrival, backlog, ceiling write or differing `dt` falls back to the
    /// full step. Backlogged co-tenant sockets therefore always tick.
    pub fn step_fast(&mut self, dt: Seconds) -> SharedStep {
        if let Some(memo) = &self.memo {
            if memo.dt_bits == dt.value().to_bits() && self.all_idle() {
                let step = memo.step.clone();
                for (t, &e) in self.tenants.iter_mut().zip(&step.tenant_energy_j) {
                    t.acct.energy_j += e;
                }
                return step;
            }
            self.memo = None;
        }
        let idle_entry = self.all_idle();
        let pre_pressure = self.mem_pressure.to_bits();
        let pre_uncore = self.uncore.value().to_bits();
        let pre_enforcer = self.enforcer.clone();
        let step = self.step(dt);
        if idle_entry
            && self.mem_pressure.to_bits() == pre_pressure
            && self.uncore.value().to_bits() == pre_uncore
            && self.enforcer == pre_enforcer
        {
            self.memo = Some(IdleMemo {
                dt_bits: dt.value().to_bits(),
                step: step.clone(),
            });
        }
        step
    }

    /// Advances the socket by `dt`: arrivals, the core/uncore operating
    /// point, proportional bandwidth sharing, phase progress and exact
    /// energy attribution.
    pub fn step(&mut self, dt: Seconds) -> SharedStep {
        let dt_s = dt.value().max(0.0);

        // 1. Arrivals: offered load accrues into backlogs.
        for t in &mut self.tenants {
            let offered = t.intensity * t.nominal_rate[t.phase_idx] * dt_s;
            t.backlog_units += offered;
            t.acct.offered_units += offered;
        }

        // 2. Uncore: a DUF-style pressure follower — track the EMA of
        // achieved-bandwidth utilisation, snapped to the actuation ladder.
        let span = self.cfg.uncore_max.value() - self.cfg.uncore_min.value();
        let raw = self.cfg.uncore_min.value() + span * self.mem_pressure.clamp(0.0, 1.0);
        let step_hz = self.cfg.uncore_step.value().max(1.0);
        let snapped = self.cfg.uncore_min.value()
            + ((raw - self.cfg.uncore_min.value()) / step_hz).round() * step_hz;
        self.uncore =
            Hertz(snapped.clamp(self.cfg.uncore_min.value(), self.cfg.uncore_max.value()));

        // 3. Core split across tenants with backlog (even shares, the
        // remainder cores to the lowest slots — deterministic).
        let active: Vec<usize> = (0..self.tenants.len())
            .filter(|&i| self.tenants[i].backlog_units > 1e-12)
            .collect();
        let n_active = active.len();
        let mut shares = vec![0u16; self.tenants.len()];
        if n_active > 0 {
            let base = self.cfg.cores / n_active as u16;
            let rem = (self.cfg.cores % n_active as u16) as usize;
            for (rank, &i) in active.iter().enumerate() {
                shares[i] = base + u16::from(rank < rem);
            }
        }

        // 4. Operating point: the governor's activity estimate feeds the
        // cap-allowance frequency inversion, exactly like the single-app
        // socket does.
        let est_util: f64 = active
            .iter()
            .map(|&i| {
                let t = &self.tenants[i];
                f64::from(shares[i]) / f64::from(self.cfg.cores.max(1))
                    * t.workload.phases[t.phase_idx].core_util
            })
            .sum();
        let est_activity = SocketActivity {
            core_util: est_util,
            mem_util: self.mem_pressure,
            active_cores: shares.iter().sum(),
        };
        let allowance = self.enforcer.allowance();
        let f = self.cfg.power.max_frequency_within(
            self.cfg.core_freq_min,
            self.cfg.core_freq_max,
            self.cfg.core_freq_step,
            self.uncore,
            &est_activity,
            allowance,
        );
        let bw_total = self.cfg.bandwidth.achievable(self.uncore, allowance);

        // 5. First pass: unconstrained demand at full bandwidth; second
        // pass: proportional bandwidth shares when demand oversubscribes.
        let mut demand_bw = vec![0.0f64; self.tenants.len()];
        for &i in &active {
            let t = &self.tenants[i];
            let m = RooflineModel { cores: shares[i] };
            demand_bw[i] = m
                .progress(&t.workload.phases[t.phase_idx].rates, f, bw_total)
                .bandwidth
                .value();
        }
        let total_demand: f64 = demand_bw.iter().sum();
        let oversub = total_demand > bw_total.value() && total_demand > 0.0;

        // 6. Serve: progress each tenant at its (possibly shared) rate,
        // cycling phases within the step as boundaries are crossed.
        let mut served_flops = vec![0.0f64; self.tenants.len()];
        let mut served_bytes = vec![0.0f64; self.tenants.len()];
        let mut busy_frac = vec![0.0f64; self.tenants.len()];
        for &i in &active {
            let bw_i = if oversub {
                BytesPerSec(bw_total.value() * demand_bw[i] / total_demand)
            } else {
                bw_total
            };
            let m = RooflineModel { cores: shares[i] };
            let mut time_left = dt_s;
            let t = &mut self.tenants[i];
            // Bounded by phases-per-step in practice; the backlog check
            // terminates the loop when the queue drains.
            while time_left > 1e-12 && t.backlog_units > 1e-12 {
                let phase = &t.workload.phases[t.phase_idx];
                let rate = m.progress(&phase.rates, f, bw_i).units_per_sec;
                if rate <= 0.0 {
                    break;
                }
                let phase_left = (phase.work_units - t.units_into_phase).max(0.0);
                let want = (rate * time_left).min(t.backlog_units);
                let serve = want.min(phase_left.max(1e-12));
                t.backlog_units -= serve;
                t.units_into_phase += serve;
                t.acct.served_units += serve;
                served_flops[i] += serve * phase.rates.flops_per_unit;
                served_bytes[i] += serve * phase.rates.bytes_per_unit;
                time_left -= serve / rate;
                if t.units_into_phase >= phase.work_units - 1e-12 {
                    t.units_into_phase = 0.0;
                    t.phase_idx = (t.phase_idx + 1) % t.workload.phases.len();
                }
            }
            busy_frac[i] = ((dt_s - time_left) / dt_s.max(1e-12)).clamp(0.0, 1.0);
        }

        // 7. Realised activity → power, integrated once for the package.
        let achieved_bw_rate = served_bytes.iter().sum::<f64>() / dt_s.max(1e-12);
        let mem_util =
            (achieved_bw_rate / self.cfg.bandwidth.peak.value().max(1.0)).clamp(0.0, 1.0);
        let core_util: f64 = active
            .iter()
            .map(|&i| {
                let t = &self.tenants[i];
                f64::from(shares[i]) / f64::from(self.cfg.cores.max(1))
                    * t.workload.phases[t.phase_idx].core_util
                    * busy_frac[i]
            })
            .sum();
        let activity = SocketActivity {
            core_util,
            mem_util,
            active_cores: shares.iter().sum(),
        };
        let pkg_power = self.cfg.power.package_total(f, self.uncore, &activity);
        let pkg_energy = pkg_power.value() * dt_s;
        let dram_energy = self.cfg.dram.power(BytesPerSec(achieved_bw_rate)).value() * dt_s;

        // 8. Exact attribution: tenant weights from this step's share of
        // FLOPs and bytes; the last participant absorbs the floating-point
        // remainder so Σ tenant energy == socket energy *exactly*. With no
        // demand at all, idle power splits evenly.
        let n = self.tenants.len();
        let sum_f: f64 = served_flops.iter().sum();
        let sum_b: f64 = served_bytes.iter().sum();
        let mut tenant_energy = vec![0.0f64; n];
        if sum_f <= 0.0 && sum_b <= 0.0 {
            let even = pkg_energy / n as f64;
            for e in tenant_energy.iter_mut().take(n - 1) {
                *e = even;
            }
        } else {
            for i in 0..n - 1 {
                let wf = if sum_f > 0.0 {
                    served_flops[i] / sum_f
                } else {
                    0.0
                };
                let wb = if sum_b > 0.0 {
                    served_bytes[i] / sum_b
                } else {
                    0.0
                };
                let w = match (sum_f > 0.0, sum_b > 0.0) {
                    (true, true) => 0.5 * wf + 0.5 * wb,
                    (true, false) => wf,
                    (false, _) => wb,
                };
                tenant_energy[i] = pkg_energy * w;
            }
        }
        let assigned: f64 = tenant_energy[..n - 1].iter().sum();
        tenant_energy[n - 1] = pkg_energy - assigned;
        // Re-anchor the reported package energy to the left-to-right sum of
        // the attribution: `fl(a + fl(p − a))` can land 1 ulp off `p`, so
        // the conservation invariant is defined over the attribution vector
        // itself (any consumer summing it in order reproduces this value
        // bit-exactly). The ulp-level difference from `power × dt` is far
        // below the model's fidelity.
        let pkg_energy: f64 = tenant_energy.iter().sum();
        for (t, (&e, (&fl, &by))) in self.tenants.iter_mut().zip(
            tenant_energy
                .iter()
                .zip(served_flops.iter().zip(served_bytes.iter())),
        ) {
            t.acct.energy_j += e;
            t.acct.flops += fl;
            t.acct.bytes += by;
        }

        // 9. Firmware and pressure state advance for the next step.
        self.enforcer.step(dt, pkg_power);
        let alpha = (dt_s / 0.2).clamp(0.0, 1.0);
        self.mem_pressure += alpha * (mem_util - self.mem_pressure);

        SharedStep {
            core_freq: f,
            uncore_freq: self.uncore,
            pkg_power,
            pkg_energy_j: pkg_energy,
            dram_energy_j: dram_energy,
            achieved_bw: BytesPerSec(achieved_bw_rate),
            tenant_energy_j: tenant_energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dufp_workloads::{Boundness, MaterializeCtx, PhaseSpec};

    fn ctx() -> MaterializeCtx {
        MaterializeCtx::from_arch(&ArchSpec::yeti())
    }

    fn mixed_workload(name: &str) -> Arc<Workload> {
        let specs = [
            PhaseSpec {
                name: "stream".into(),
                seconds_at_default: 2.0,
                oi: 0.06,
                boundness: Boundness::MemoryBound { headroom: 1.5 },
                core_util: 0.5,
                overlap_penalty: 0.0,
            },
            PhaseSpec {
                name: "crunch".into(),
                seconds_at_default: 2.0,
                oi: 150.0,
                boundness: Boundness::ComputeBound { mem_frac: 0.2 },
                core_util: 0.95,
                overlap_penalty: 0.0,
            },
        ];
        Arc::new(Workload::from_specs(name, &specs, &ctx()).unwrap())
    }

    fn two_tenant_socket() -> SharedSocketSim {
        let cfg = SharedSocketCfg::from_arch(&ArchSpec::yeti());
        SharedSocketSim::new(
            cfg,
            vec![
                ("a".into(), mixed_workload("a")),
                ("b".into(), mixed_workload("b")),
            ],
        )
        .unwrap()
    }

    #[test]
    fn rejects_empty_tenant_mix() {
        let cfg = SharedSocketCfg::from_arch(&ArchSpec::yeti());
        assert!(SharedSocketSim::new(cfg, vec![]).is_err());
    }

    #[test]
    fn energy_attribution_is_exact_every_step() {
        let mut s = two_tenant_socket();
        s.set_intensity(0, 0.8);
        s.set_intensity(1, 0.4);
        for _ in 0..500 {
            let step = s.step(Seconds(0.01));
            let sum: f64 = step.tenant_energy_j.iter().sum();
            assert_eq!(sum, step.pkg_energy_j, "attribution must be exact");
        }
        let total: f64 = (0..2).map(|i| s.account(i).energy_j).sum();
        assert!(total > 0.0);
    }

    #[test]
    fn service_keeps_up_at_low_intensity_and_lags_under_deep_cap() {
        let mut s = two_tenant_socket();
        s.set_intensity(0, 0.3);
        s.set_intensity(1, 0.3);
        for _ in 0..1000 {
            s.step(Seconds(0.01));
        }
        assert!(s.backlog_seconds(0) < 0.5, "light load must not queue");

        let mut capped = two_tenant_socket();
        capped.set_ceiling(Watts(65.0));
        capped.set_intensity(0, 1.2);
        capped.set_intensity(1, 1.2);
        for _ in 0..1000 {
            capped.step(Seconds(0.01));
        }
        assert!(
            capped.backlog_seconds(0) > s.backlog_seconds(0),
            "a deep cap under heavy co-tenant load must build backlog"
        );
    }

    #[test]
    fn deeper_ceiling_saves_energy() {
        let run = |ceiling: Option<Watts>| {
            let mut s = two_tenant_socket();
            if let Some(c) = ceiling {
                s.set_ceiling(c);
            }
            s.set_intensity(0, 0.5);
            s.set_intensity(1, 0.5);
            let mut e = 0.0;
            for _ in 0..1000 {
                e += s.step(Seconds(0.01)).pkg_energy_j;
            }
            e
        };
        let uncapped = run(None);
        let capped = run(Some(Watts(80.0)));
        assert!(capped < uncapped, "capping must reduce package energy");
    }

    #[test]
    fn ceiling_clamps_to_floor_and_pl1() {
        let mut s = two_tenant_socket();
        s.set_ceiling(Watts(10.0));
        assert_eq!(s.ceiling(), Watts(65.0));
        s.set_ceiling(Watts(500.0));
        assert_eq!(s.ceiling(), Watts(125.0));
    }

    /// Bitwise signature of one step, for differential comparison.
    fn sig(st: &SharedStep) -> Vec<u64> {
        let mut v = vec![
            st.core_freq.value().to_bits(),
            st.uncore_freq.value().to_bits(),
            st.pkg_power.value().to_bits(),
            st.pkg_energy_j.to_bits(),
            st.dram_energy_j.to_bits(),
            st.achieved_bw.value().to_bits(),
        ];
        v.extend(st.tenant_energy_j.iter().map(|e| e.to_bits()));
        v
    }

    #[test]
    fn step_fast_is_bit_identical_through_busy_idle_cycles() {
        let mut oracle = two_tenant_socket();
        let mut fast = two_tenant_socket();
        let dt = Seconds(0.01);
        // Trajectory: busy → drain to idle fixed point → ceiling write mid
        // idle → idle again → busy burst → idle. Every regime transition
        // the memo has to survive, in one run. Idle windows are long
        // because "steady" is a *bitwise* fixed point: the memory-pressure
        // EMA decays geometrically (~0.95/step at this dt) and only pins
        // after ~15k steps, which is exactly when fast-forwarding becomes
        // legal.
        let schedule: [(usize, Option<(f64, f64)>, Option<Watts>); 6] = [
            (300, Some((0.7, 0.9)), None),
            (17_000, Some((0.0, 0.0)), None),
            (4_000, None, Some(Watts(90.0))),
            (500, None, None),
            (200, Some((1.1, 0.4)), None),
            (17_000, Some((0.0, 0.0)), None),
        ];
        let mut memo_hits = 0usize;
        for (steps, intensities, ceiling) in schedule {
            for s in [&mut oracle, &mut fast] {
                if let Some((a, b)) = intensities {
                    s.set_intensity(0, a);
                    s.set_intensity(1, b);
                }
                if let Some(c) = ceiling {
                    s.set_ceiling(c);
                }
            }
            for _ in 0..steps {
                let had_memo = fast.memo.is_some();
                let a = oracle.step(dt);
                let b = fast.step_fast(dt);
                if had_memo && fast.memo.is_some() {
                    memo_hits += 1;
                }
                assert_eq!(sig(&a), sig(&b), "step_fast diverged from step");
            }
        }
        for i in 0..2 {
            assert_eq!(
                oracle.account(i),
                fast.account(i),
                "tenant {i} accounts diverged"
            );
        }
        assert!(
            memo_hits > 1000,
            "fast path never engaged ({memo_hits} hits) — the test is vacuous"
        );
        assert!(!fast.has_backlog());
    }

    #[test]
    fn deterministic_replay_is_bit_equal() {
        let run = || {
            let mut s = two_tenant_socket();
            s.set_intensity(0, 0.7);
            s.set_intensity(1, 0.9);
            let mut sig = Vec::new();
            for _ in 0..200 {
                let st = s.step(Seconds(0.01));
                sig.push((
                    st.pkg_power.value().to_bits(),
                    st.tenant_energy_j[0].to_bits(),
                ));
            }
            sig
        };
        assert_eq!(run(), run());
    }
}
