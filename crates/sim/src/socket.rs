//! Per-socket simulation state and tick logic.

use crate::config::SimConfig;
use crate::trace::{Trace, TracePoint};
use dufp_model::{CapEnforcer, CapGains, LadderPoint, PowerModel, RooflineModel, SocketActivity};
use dufp_msr::registers::{PerfCtl, PkgPowerLimit, RaplPowerUnit, UncoreRatioLimit};
use dufp_telemetry::{Counter, Gauge, Telemetry};
use dufp_types::{Hertz, Instant, Seconds, Watts};
use dufp_workloads::Workload;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Pre-registered per-socket instruments, resolved once at attach time so
/// the tick path never touches the registry's name map.
#[derive(Debug)]
struct SocketGauges {
    pkg_power: Arc<Gauge>,
    dram_power: Arc<Gauge>,
    flops: Arc<Gauge>,
    bandwidth: Arc<Gauge>,
    core_freq: Arc<Gauge>,
    uncore_freq: Arc<Gauge>,
    ticks: Arc<Counter>,
}

impl SocketGauges {
    fn new(tel: &Telemetry, socket_index: u16) -> Self {
        let name = |metric: &str| format!("sim.socket{socket_index}.{metric}");
        SocketGauges {
            pkg_power: tel.gauge(&name("pkg_power_w")),
            dram_power: tel.gauge(&name("dram_power_w")),
            flops: tel.gauge(&name("flops_per_sec")),
            bandwidth: tel.gauge(&name("bytes_per_sec")),
            core_freq: tel.gauge(&name("core_freq_hz")),
            uncore_freq: tel.gauge(&name("uncore_freq_hz")),
            ticks: tel.counter(&name("ticks")),
        }
    }
}

/// Monotonic counters a socket accumulates (telemetry surface).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Accumulators {
    /// FLOPs retired.
    pub flops: f64,
    /// Bytes moved to/from DRAM.
    pub bytes: f64,
    /// Package energy in joules.
    pub pkg_energy: f64,
    /// DRAM energy in joules.
    pub dram_energy: f64,
    /// Actual core cycles (APERF).
    pub aperf: f64,
    /// Reference cycles at base clock (MPERF).
    pub mperf: f64,
}

/// The memoized operating point of [`SocketSim::tick_fast`]'s fast path.
///
/// A full [`SocketSim::tick`] spends almost all of its time re-deriving
/// values that are constant across a steady stretch: the DVFS ladder
/// search (~19 power-model evaluations), achievable bandwidth, roofline
/// progress rates and the package power base. This memo caches those
/// outputs *bitwise* along with the entry-state fingerprint and allowance
/// interval over which `tick` is guaranteed to recompute them identically;
/// while the memo validates, a tick reduces to the RNG draws, the noise
/// multiplies and the accumulator additions — the exact f64 operations the
/// full tick performs, in the same order, on the same cached bit patterns.
#[derive(Debug, Clone, Copy)]
struct StepMemo {
    /// Workload phase index the memo was derived for.
    phase_idx: usize,
    /// Whether the socket was done (idle) when the memo was derived.
    done: bool,
    /// Bit pattern of the entry `mem_util` the cached activity used.
    mem_util_bits: u64,
    /// Tick duration in seconds.
    dt: Seconds,
    /// Cap-enforcer EMA/settle coefficients for `dt`.
    gains: CapGains,
    /// Effective uncore frequency.
    uncore: Hertz,
    /// Bit pattern of `bandwidth.achievable(uncore, allowance)` at build
    /// time; the fast path recomputes it each tick (three multiplies) and
    /// bails to a full tick the moment the bits move.
    bw_bits: u64,
    /// Cached `bandwidth.uncore_factor(uncore)` — a pure function of the
    /// memo's fixed uncore frequency, so its bits are exactly what
    /// `achievable` would recompute; caching it turns the per-tick
    /// bandwidth check from a `powf` into two multiplies.
    uf: f64,
    /// The ladder rung the cap inversion chose, with its stability bounds.
    /// `None` for an idle (done) socket, which performs no search.
    ladder: Option<LadderPoint>,
    /// Applied core frequency (ladder result bounded by the ceiling).
    core_freq: Hertz,
    /// Noise-free achieved-bandwidth rate (bytes/s).
    progress_bw: f64,
    /// Noise-free FLOP rate (FLOP/s).
    flops_rate: f64,
    /// Noise-free work-unit completion rate (units/s).
    units_rate: f64,
    /// The `mem_util` value this tick writes back (noise-free).
    new_mem_util: f64,
    /// Package power before the multiplicative power noise (W).
    pkg_power_base: f64,
}

/// One simulated processor package plus its share of the workload.
#[derive(Debug)]
pub struct SocketSim {
    cfg: SimConfig,
    /// Register-visible uncore band (from `MSR_UNCORE_RATIO_LIMIT`).
    uncore_raw: UncoreRatioLimit,
    /// Register-visible power-limit word (from `MSR_PKG_POWER_LIMIT`).
    limit_raw: u64,
    /// Register-visible P-state request (from `IA32_PERF_CTL`). Caps the
    /// frequency the governor may pick; the architectural ladder still
    /// bounds it.
    perf_ctl: PerfCtl,
    enforcer: CapEnforcer,
    core_freq: Hertz,
    /// Bandwidth utilization of the previous tick (feeds power prediction).
    mem_util: f64,
    workload: Option<Workload>,
    phase_idx: usize,
    units_done: f64,
    acc: Accumulators,
    rng: ChaCha8Rng,
    run_perf_factor: f64,
    run_power_factor: f64,
    walk: f64,
    trace: Option<Trace>,
    trace_stride: u32,
    ticks: u64,
    /// Ground-truth workload phase transitions: `(time, new_phase_index)`.
    phase_log: Vec<(Instant, usize)>,
    gauges: Option<SocketGauges>,
    /// Fast-path memo; `None` whenever the cached operating point may be
    /// stale (after any register write or workload load).
    memo: Option<StepMemo>,
}

impl SocketSim {
    /// Creates an idle socket in the default configuration: uncore band
    /// `[min, max]`, PL1/PL2 at the architecture defaults, performance
    /// governor at max turbo.
    pub fn new(cfg: SimConfig, socket_index: u16) -> Self {
        let arch = &cfg.arch;
        let uncore_raw = UncoreRatioLimit {
            max_ratio: arch.uncore_freq_max.as_ratio_100mhz(),
            min_ratio: arch.uncore_freq_min.as_ratio_100mhz(),
        };
        let units = RaplPowerUnit::skylake_sp();
        let limit_raw = PkgPowerLimit::defaults(
            arch.pl1_default,
            arch.pl1_window,
            arch.pl2_default,
            arch.pl2_window,
        )
        .encode(&units)
        .expect("default limits encode");
        let enforcer = CapEnforcer::new(
            arch.pl1_default,
            arch.pl1_window,
            arch.pl2_default,
            arch.pl2_window,
            cfg.cap,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(
            cfg.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(socket_index) + 1)),
        );
        let run_perf_factor = 1.0 + cfg.noise.run_sigma * sym(&mut rng);
        let run_power_factor = 1.0 + cfg.noise.run_sigma * sym(&mut rng);
        let core_freq = arch.core_freq_max;
        let perf_ctl = PerfCtl::capped_at(arch.core_freq_max);
        SocketSim {
            cfg,
            uncore_raw,
            limit_raw,
            perf_ctl,
            enforcer,
            core_freq,
            mem_util: 0.0,
            workload: None,
            phase_idx: 0,
            units_done: 0.0,
            acc: Accumulators::default(),
            rng,
            run_perf_factor,
            run_power_factor,
            walk: 0.0,
            trace: None,
            trace_stride: 1,
            ticks: 0,
            phase_log: Vec::new(),
            gauges: None,
            memo: None,
        }
    }

    /// Publishes this socket's per-tick state (power, FLOPS/s, bandwidth,
    /// frequencies) as gauges on `tel`. A disabled handle detaches.
    pub fn attach_telemetry(&mut self, tel: &Telemetry, socket_index: u16) {
        self.gauges = tel
            .is_enabled()
            .then(|| SocketGauges::new(tel, socket_index));
    }

    /// Assigns a workload; counters keep accumulating across assignments.
    pub fn load(&mut self, workload: Workload) {
        self.workload = Some(workload);
        self.phase_idx = 0;
        self.units_done = 0.0;
        self.phase_log.clear();
        self.memo = None;
    }

    /// Ground-truth phase transitions so far: `(time, new_phase_index)`.
    /// The run start counts as a transition into phase 0.
    pub fn phase_log(&self) -> &[(Instant, usize)] {
        &self.phase_log
    }

    /// True once every phase has completed (or no workload is loaded).
    pub fn done(&self) -> bool {
        match &self.workload {
            None => true,
            Some(w) => self.phase_idx >= w.phases.len(),
        }
    }

    /// Starts recording a trace with the given stride (in ticks).
    pub fn enable_trace(&mut self, stride: u32) {
        self.trace = Some(Trace::default());
        self.trace_stride = stride.max(1);
    }

    /// Takes the recorded trace, if any.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Current raw counter values.
    pub fn accumulators(&self) -> &Accumulators {
        &self.acc
    }

    /// The uncore ratio register content.
    pub fn uncore_raw(&self) -> UncoreRatioLimit {
        self.uncore_raw
    }

    /// Programs the uncore ratio register (what an `0x620` write does).
    pub fn write_uncore(&mut self, raw: UncoreRatioLimit) {
        self.uncore_raw = raw;
        self.memo = None;
    }

    /// The power-limit register content.
    pub fn limit_raw(&self) -> u64 {
        self.limit_raw
    }

    /// Programs the power-limit register (what an `0x610` write does).
    pub fn write_limit(&mut self, raw: u64) {
        self.limit_raw = raw;
        let units = RaplPowerUnit::skylake_sp();
        let decoded = PkgPowerLimit::decode(raw, &units);
        let pl1 = if decoded.pl1.enabled {
            decoded.pl1.power
        } else {
            self.cfg.arch.pl1_default
        };
        let pl2 = if decoded.pl2.enabled {
            decoded.pl2.power
        } else {
            self.cfg.arch.pl2_default
        };
        self.enforcer.set_limits(pl1, pl2);
        self.memo = None;
    }

    /// Applied core frequency (what APERF/MPERF or Fig. 5's traces show).
    pub fn core_freq(&self) -> Hertz {
        self.core_freq
    }

    /// The P-state request register content.
    pub fn perf_ctl(&self) -> PerfCtl {
        self.perf_ctl
    }

    /// Programs the P-state request (what an `IA32_PERF_CTL` write does).
    pub fn write_perf_ctl(&mut self, raw: PerfCtl) {
        self.perf_ctl = raw;
        self.memo = None;
    }

    /// The effective frequency ceiling: the architectural maximum bounded
    /// by the `IA32_PERF_CTL` request.
    fn freq_ceiling(&self) -> Hertz {
        self.cfg
            .arch
            .snap_core_freq(self.perf_ctl.freq())
            .min(self.cfg.arch.core_freq_max)
    }

    /// The uncore frequency the hardware is running.
    ///
    /// With a pinned band this is the pinned value; otherwise the default
    /// hardware UFS heuristic applies: the band maximum whenever the socket
    /// is active (the conservative behaviour that "fails to adapt to the
    /// application needs" per the paper's §I), the minimum when idle.
    pub fn effective_uncore(&self) -> Hertz {
        let (lo, hi) = self.uncore_raw.band();
        let lo = self.cfg.arch.snap_uncore_freq(lo);
        let hi = self.cfg.arch.snap_uncore_freq(hi);
        if self.done() {
            lo
        } else {
            hi
        }
    }

    /// Advances the socket by one tick. `now` is the time at the *start*
    /// of the tick.
    pub fn tick(&mut self, now: Instant) {
        let dt = self.cfg.tick.as_seconds();
        let uncore = self.effective_uncore();
        let allowance = self.enforcer.allowance();

        // Noise evolution.
        let n = self.cfg.noise;
        if n.walk_sigma > 0.0 {
            self.walk = 0.98 * self.walk + n.walk_sigma * sym(&mut self.rng);
        }
        let perf_noise =
            (self.run_perf_factor + self.walk + n.tick_sigma * sym(&mut self.rng)).max(0.1);
        let power_noise =
            (self.run_power_factor + self.walk + n.tick_sigma * sym(&mut self.rng)).max(0.1);

        // Achievable bandwidth under current uncore and cap pressure.
        let bw = self.cfg.bandwidth.achievable(uncore, allowance);

        let (activity, progress_bw, flops_rate, units_rate) = if self.done() {
            (SocketActivity::idle(), 0.0, 0.0, 0.0)
        } else {
            let w = self.workload.as_ref().expect("not done implies loaded");
            let phase = &w.phases[self.phase_idx];
            let activity = SocketActivity {
                core_util: phase.core_util,
                mem_util: self.mem_util,
                active_cores: self.cfg.arch.cores_per_socket,
            };
            // The governor requests a frequency from the phase's compute
            // share; PERF_CTL bounds the request and RAPL then picks the
            // highest ladder frequency whose predicted power fits the
            // allowance.
            let n = f64::from(self.cfg.arch.cores_per_socket);
            let fmax = self.cfg.arch.core_freq_max;
            let tc = if phase.rates.flops_per_core_cycle > 0.0 {
                phase.rates.flops_per_unit / (phase.rates.flops_per_core_cycle * n * fmax.value())
            } else {
                0.0
            };
            let tm = phase.rates.bytes_per_unit / bw.value().max(1.0);
            let compute_share = if tc.max(tm) > 0.0 {
                tc / tc.max(tm)
            } else {
                1.0
            };
            let requested =
                self.cfg
                    .governor
                    .request(self.cfg.arch.core_freq_min, fmax, compute_share);
            let ceiling = self
                .cfg
                .arch
                .snap_core_freq(requested)
                .min(self.freq_ceiling());
            self.core_freq =
                solve_frequency(&self.cfg, &self.cfg.power, uncore, &activity, allowance)
                    .min(ceiling);
            let roofline = RooflineModel {
                cores: self.cfg.arch.cores_per_socket,
            };
            let pr = roofline.progress(&phase.rates, self.core_freq, bw);
            (
                activity,
                pr.bandwidth.value(),
                pr.flops.value(),
                pr.units_per_sec,
            )
        };
        if self.done() {
            self.core_freq = self.cfg.arch.core_freq_min;
        }

        // Progress the workload.
        let advanced_units = units_rate * dt.value() * perf_noise;
        self.acc.flops += flops_rate * dt.value() * perf_noise;
        self.acc.bytes += progress_bw * dt.value() * perf_noise;
        self.mem_util = (progress_bw / self.cfg.bandwidth.peak.value()).clamp(0.0, 1.0);
        self.advance_phase(advanced_units, now);

        // Power accounting.
        let pkg_power = Watts(
            self.cfg
                .power
                .package_total(self.core_freq, uncore, &activity)
                .value()
                * power_noise,
        );
        let dram_power = self
            .cfg
            .dram
            .power(dufp_types::BytesPerSec(progress_bw * perf_noise));
        self.acc.pkg_energy += (pkg_power * dt).value();
        self.acc.dram_energy += (dram_power * dt).value();
        self.acc.aperf += self.core_freq.value() * dt.value();
        self.acc.mperf += self.cfg.arch.core_freq_base.value() * dt.value();

        // RAPL firmware reacts to the measured power.
        self.enforcer.step(dt, pkg_power);

        if let Some(g) = &self.gauges {
            g.pkg_power.set(pkg_power.value());
            g.dram_power.set(dram_power.value());
            g.flops.set(flops_rate * perf_noise);
            g.bandwidth.set(progress_bw * perf_noise);
            g.core_freq.set(self.core_freq.value());
            g.uncore_freq.set(uncore.value());
            g.ticks.inc();
        }

        // Trace.
        if self.ticks.is_multiple_of(u64::from(self.trace_stride)) {
            let pl1 = self.enforcer.pl1();
            if let Some(tr) = self.trace.as_mut() {
                tr.points.push(TracePoint {
                    at: now,
                    core_freq: self.core_freq,
                    uncore_freq: uncore,
                    pkg_power,
                    allowance,
                    pl1,
                });
            }
        }
        self.ticks += 1;
    }

    /// Advances the socket by one tick, exactly like [`SocketSim::tick`]
    /// but through a memoized fast path whenever the cached operating
    /// point is *provably* what `tick` would recompute — same phase, same
    /// entry `mem_util` bits, bandwidth bits unmoved, and the allowance
    /// still inside the ladder rung's stability interval. Every observable
    /// (accumulators, RNG stream, enforcer state, gauges, trace points,
    /// phase log) is bit-identical to per-tick stepping; `tick` stays the
    /// untouched differential oracle.
    pub fn tick_fast(&mut self, now: Instant) {
        match self.memo {
            Some(memo) if self.memo_valid(&memo) => self.apply_memo(&memo, now),
            _ => {
                self.tick(now);
                self.memo = Some(self.build_memo());
            }
        }
    }


    /// True when the memo's cached outputs are exactly what `tick` would
    /// recompute from the current state.
    fn memo_valid(&self, memo: &StepMemo) -> bool {
        if memo.done != self.done()
            || memo.phase_idx != self.phase_idx
            || memo.mem_util_bits != self.mem_util.to_bits()
        {
            return false;
        }
        if memo.done {
            // An idle socket's tick does not depend on the allowance at
            // all (bandwidth is computed but unused, no ladder search).
            return true;
        }
        let Some(ladder) = memo.ladder else {
            return false;
        };
        let allowance = self.enforcer.allowance();
        // `achievable` with the powf factor pre-resolved: `memo.uf` holds
        // the bits `uncore_factor(memo.uncore)` returns, so this product
        // is bit-for-bit the same value.
        let bw = self.cfg.bandwidth.peak * memo.uf * self.cfg.bandwidth.cap_factor(allowance);
        bw.value().to_bits() == memo.bw_bits && ladder.stable_for(allowance)
    }

    /// Derives a fresh memo from the *current* state — the same
    /// computation the next `tick` would perform, expression for
    /// expression, so the cached bits match what it would produce.
    fn build_memo(&self) -> StepMemo {
        let dt = self.cfg.tick.as_seconds();
        let gains = self.enforcer.gains(dt);
        let done = self.done();
        let uncore = self.effective_uncore();
        let allowance = self.enforcer.allowance();
        if done {
            let activity = SocketActivity::idle();
            let core_freq = self.cfg.arch.core_freq_min;
            return StepMemo {
                phase_idx: self.phase_idx,
                done,
                mem_util_bits: self.mem_util.to_bits(),
                dt,
                gains,
                uncore,
                bw_bits: 0,
                uf: self.cfg.bandwidth.uncore_factor(uncore),
                ladder: None,
                core_freq,
                progress_bw: 0.0,
                flops_rate: 0.0,
                units_rate: 0.0,
                new_mem_util: (0.0 / self.cfg.bandwidth.peak.value()).clamp(0.0, 1.0),
                pkg_power_base: self
                    .cfg
                    .power
                    .package_total(core_freq, uncore, &activity)
                    .value(),
            };
        }
        let bw = self.cfg.bandwidth.achievable(uncore, allowance);
        let w = self.workload.as_ref().expect("not done implies loaded");
        let phase = &w.phases[self.phase_idx];
        let activity = SocketActivity {
            core_util: phase.core_util,
            mem_util: self.mem_util,
            active_cores: self.cfg.arch.cores_per_socket,
        };
        let n = f64::from(self.cfg.arch.cores_per_socket);
        let fmax = self.cfg.arch.core_freq_max;
        let tc = if phase.rates.flops_per_core_cycle > 0.0 {
            phase.rates.flops_per_unit / (phase.rates.flops_per_core_cycle * n * fmax.value())
        } else {
            0.0
        };
        let tm = phase.rates.bytes_per_unit / bw.value().max(1.0);
        let compute_share = if tc.max(tm) > 0.0 {
            tc / tc.max(tm)
        } else {
            1.0
        };
        let requested = self
            .cfg
            .governor
            .request(self.cfg.arch.core_freq_min, fmax, compute_share);
        let ceiling = self
            .cfg
            .arch
            .snap_core_freq(requested)
            .min(self.freq_ceiling());
        let ladder = self.cfg.power.ladder_search(
            self.cfg.arch.core_freq_min,
            self.cfg.arch.core_freq_max,
            self.cfg.arch.core_freq_step,
            uncore,
            &activity,
            allowance,
        );
        let core_freq = ladder.freq.min(ceiling);
        let roofline = RooflineModel {
            cores: self.cfg.arch.cores_per_socket,
        };
        let pr = roofline.progress(&phase.rates, core_freq, bw);
        StepMemo {
            phase_idx: self.phase_idx,
            done,
            mem_util_bits: self.mem_util.to_bits(),
            dt,
            gains,
            uncore,
            bw_bits: bw.value().to_bits(),
            uf: self.cfg.bandwidth.uncore_factor(uncore),
            ladder: Some(ladder),
            core_freq,
            progress_bw: pr.bandwidth.value(),
            flops_rate: pr.flops.value(),
            units_rate: pr.units_per_sec,
            new_mem_util: (pr.bandwidth.value() / self.cfg.bandwidth.peak.value()).clamp(0.0, 1.0),
            pkg_power_base: self
                .cfg
                .power
                .package_total(core_freq, uncore, &activity)
                .value(),
        }
    }

    /// The fast tick: replays `tick`'s per-tick arithmetic — RNG draws,
    /// noise multiplies, accumulator additions, enforcer EMA update, gauge
    /// and trace emission — against the memo's cached bit patterns.
    fn apply_memo(&mut self, memo: &StepMemo, now: Instant) {
        let dt = memo.dt;
        let uncore = memo.uncore;
        let allowance = self.enforcer.allowance();

        // Noise evolution — the same draws, in the same order, as `tick`.
        let n = self.cfg.noise;
        if n.walk_sigma > 0.0 {
            self.walk = 0.98 * self.walk + n.walk_sigma * sym(&mut self.rng);
        }
        let perf_noise =
            (self.run_perf_factor + self.walk + n.tick_sigma * sym(&mut self.rng)).max(0.1);
        let power_noise =
            (self.run_power_factor + self.walk + n.tick_sigma * sym(&mut self.rng)).max(0.1);

        self.core_freq = memo.core_freq;

        // Progress the workload from the cached noise-free rates.
        let advanced_units = memo.units_rate * dt.value() * perf_noise;
        self.acc.flops += memo.flops_rate * dt.value() * perf_noise;
        self.acc.bytes += memo.progress_bw * dt.value() * perf_noise;
        self.mem_util = memo.new_mem_util;
        self.advance_phase(advanced_units, now);

        // Power accounting.
        let pkg_power = Watts(memo.pkg_power_base * power_noise);
        let dram_power = self
            .cfg
            .dram
            .power(dufp_types::BytesPerSec(memo.progress_bw * perf_noise));
        self.acc.pkg_energy += (pkg_power * dt).value();
        self.acc.dram_energy += (dram_power * dt).value();
        self.acc.aperf += self.core_freq.value() * dt.value();
        self.acc.mperf += self.cfg.arch.core_freq_base.value() * dt.value();

        // RAPL firmware reacts to the measured power.
        self.enforcer.step_with_gains(pkg_power, &memo.gains);

        if let Some(g) = &self.gauges {
            g.pkg_power.set(pkg_power.value());
            g.dram_power.set(dram_power.value());
            g.flops.set(memo.flops_rate * perf_noise);
            g.bandwidth.set(memo.progress_bw * perf_noise);
            g.core_freq.set(self.core_freq.value());
            g.uncore_freq.set(uncore.value());
            g.ticks.inc();
        }

        // Trace.
        if self.ticks.is_multiple_of(u64::from(self.trace_stride)) {
            let pl1 = self.enforcer.pl1();
            if let Some(tr) = self.trace.as_mut() {
                tr.points.push(TracePoint {
                    at: now,
                    core_freq: self.core_freq,
                    uncore_freq: uncore,
                    pkg_power,
                    allowance,
                    pl1,
                });
            }
        }
        self.ticks += 1;
    }

    /// Runs up to `max` consecutive fast ticks in one tight loop — the
    /// same per-tick operations as [`SocketSim::apply_memo`], in the same
    /// order, with every batch-invariant load hoisted out of the loop and
    /// the bitwise no-op writes (the fixed-point `mem_util` store, the
    /// no-crossing half of `advance_phase`) reduced to their observable
    /// effect. Returns the number of ticks advanced; stops early right
    /// after a workload phase boundary or done transition, or right
    /// before the first tick where the memo stops validating — the caller
    /// falls back to the per-tick path, which rebuilds it.
    pub(crate) fn tick_fast_batch(&mut self, start: Instant, tick_us: u64, max: u64) -> u64 {
        let Some(memo) = self.memo else { return 0 };
        if max == 0 || !self.memo_valid(&memo) {
            return 0;
        }
        // Batching also needs `mem_util` at its fixed point; the opening
        // ticks of a phase (where it still converges) invalidate the memo
        // every tick and belong to the per-tick path.
        if memo.new_mem_util.to_bits() != memo.mem_util_bits {
            return 0;
        }
        let dtv = memo.dt.value();
        let noise = self.cfg.noise;
        let walk_on = noise.walk_sigma > 0.0;
        let aperf_inc = memo.core_freq.value() * dtv;
        let mperf_inc = self.cfg.arch.core_freq_base.value() * dtv;
        let peak = self.cfg.bandwidth.peak;
        let ladder = memo.ladder;
        let plain = self.gauges.is_none() && self.trace.is_none();
        // Work units left before the next phase boundary; an idle socket
        // progresses nothing and never crosses.
        let cur_work = if memo.done {
            f64::MAX
        } else {
            let w = self.workload.as_ref().expect("not done implies loaded");
            w.phases[memo.phase_idx].work_units
        };
        let seed_log = !memo.done && self.phase_log.is_empty();
        self.core_freq = memo.core_freq;

        let mut advanced = 0u64;
        while advanced < max {
            let allowance = self.enforcer.allowance();
            if !memo.done {
                // The per-tick `memo_valid` residue: everything else it
                // checks is constant across the batch by construction.
                let bw = peak * memo.uf * self.cfg.bandwidth.cap_factor(allowance);
                let rung = ladder.expect("busy memo has a ladder");
                if bw.value().to_bits() != memo.bw_bits || !rung.stable_for(allowance) {
                    break;
                }
            }
            let now = Instant(start.0 + advanced * tick_us);
            if walk_on {
                self.walk = 0.98 * self.walk + noise.walk_sigma * sym(&mut self.rng);
            }
            let perf_noise =
                (self.run_perf_factor + self.walk + noise.tick_sigma * sym(&mut self.rng)).max(0.1);
            let power_noise =
                (self.run_power_factor + self.walk + noise.tick_sigma * sym(&mut self.rng)).max(0.1);
            let advanced_units = memo.units_rate * dtv * perf_noise;
            self.acc.flops += memo.flops_rate * dtv * perf_noise;
            self.acc.bytes += memo.progress_bw * dtv * perf_noise;
            // `mem_util = new_mem_util` is a bitwise no-op at the fixed
            // point (entry precondition), so the store is elided.
            let crossing = !memo.done && self.units_done + advanced_units >= cur_work;
            if crossing || (seed_log && advanced == 0) {
                // Phase boundaries and the first-ever tick (which seeds
                // the phase log) take the exact per-tick code.
                self.advance_phase(advanced_units, now);
            } else if !memo.done {
                // The no-crossing body of `advance_phase`, verbatim.
                self.units_done += advanced_units;
            }
            let pkg_power = Watts(memo.pkg_power_base * power_noise);
            let dram_power = self
                .cfg
                .dram
                .power(dufp_types::BytesPerSec(memo.progress_bw * perf_noise));
            self.acc.pkg_energy += (pkg_power * memo.dt).value();
            self.acc.dram_energy += (dram_power * memo.dt).value();
            self.acc.aperf += aperf_inc;
            self.acc.mperf += mperf_inc;
            self.enforcer.step_with_gains(pkg_power, &memo.gains);
            if !plain {
                if let Some(g) = &self.gauges {
                    g.pkg_power.set(pkg_power.value());
                    g.dram_power.set(dram_power.value());
                    g.flops.set(memo.flops_rate * perf_noise);
                    g.bandwidth.set(memo.progress_bw * perf_noise);
                    g.core_freq.set(self.core_freq.value());
                    g.uncore_freq.set(memo.uncore.value());
                    g.ticks.inc();
                }
                if self.ticks.is_multiple_of(u64::from(self.trace_stride)) {
                    let pl1 = self.enforcer.pl1();
                    if let Some(tr) = self.trace.as_mut() {
                        tr.points.push(TracePoint {
                            at: now,
                            core_freq: self.core_freq,
                            uncore_freq: memo.uncore,
                            pkg_power,
                            allowance,
                            pl1,
                        });
                    }
                }
            }
            self.ticks += 1;
            advanced += 1;
            if crossing {
                // The memo's phase fingerprint is stale now.
                break;
            }
        }
        advanced
    }

    fn advance_phase(&mut self, units: f64, now: Instant) {
        let Some(w) = self.workload.as_ref() else {
            return;
        };
        if self.phase_log.is_empty() {
            self.phase_log.push((now, 0));
        }
        self.units_done += units;
        while self.phase_idx < w.phases.len()
            && self.units_done >= w.phases[self.phase_idx].work_units
        {
            self.units_done -= w.phases[self.phase_idx].work_units;
            self.phase_idx += 1;
            if self.phase_idx < w.phases.len() {
                self.phase_log.push((now, self.phase_idx));
            }
        }
        if self.phase_idx >= w.phases.len() {
            self.units_done = 0.0;
        }
    }
}

/// Highest DVFS ladder frequency whose predicted package power fits the
/// allowance (delegates to the analytic inversion in `dufp-model`).
fn solve_frequency(
    cfg: &SimConfig,
    power: &PowerModel,
    uncore: Hertz,
    activity: &SocketActivity,
    allowance: Watts,
) -> Hertz {
    let arch = &cfg.arch;
    power.max_frequency_within(
        arch.core_freq_min,
        arch.core_freq_max,
        arch.core_freq_step,
        uncore,
        activity,
        allowance,
    )
}

fn sym(rng: &mut ChaCha8Rng) -> f64 {
    // Uniform on [-√3, √3): zero mean, unit variance.
    (rng.gen::<f64>() - 0.5) * 2.0 * 1.732_050_807_568_877_2
}

/// Converts an energy accumulator in joules to the 32-bit RAPL counter
/// domain (wrapping), given the per-unit energy.
pub fn energy_to_rapl_counter(joules: f64, energy_unit: f64) -> u64 {
    let ticks = (joules / energy_unit) as u128;
    (ticks % (1u128 << 32)) as u64
}

/// Reads a RAPL-domain energy accumulator back into joules, handling one
/// wrap between consecutive readings.
pub fn rapl_counter_delta_joules(prev: u64, cur: u64, energy_unit: f64) -> f64 {
    let delta = if cur >= prev {
        cur - prev
    } else {
        cur + (1u64 << 32) - prev
    };
    delta as f64 * energy_unit
}

/// Convenience for tests and the machine: total seconds a workload needs
/// in the default configuration.
pub fn nominal_seconds(cfg: &SimConfig, w: &Workload) -> Seconds {
    let ctx = dufp_workloads::MaterializeCtx::from_arch(&cfg.arch);
    w.nominal_duration(&ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dufp_types::Duration;
    use dufp_workloads::{apps, MaterializeCtx};

    fn cfg() -> SimConfig {
        SimConfig::deterministic(42)
    }

    fn run_to_completion(sock: &mut SocketSim, tick: Duration, max_secs: f64) -> f64 {
        let mut now = Instant::ZERO;
        let max_ticks = (max_secs * 1e6 / tick.as_micros() as f64) as u64;
        let mut n = 0u64;
        while !sock.done() {
            sock.tick(now);
            now += tick;
            n += 1;
            assert!(n < max_ticks, "did not finish within {max_secs}s");
        }
        now.as_seconds().value()
    }

    #[test]
    fn default_run_matches_nominal_duration() {
        let c = cfg();
        let ctx = MaterializeCtx::from_arch(&c.arch);
        let w = apps::ep(&ctx).unwrap();
        let nominal = w.nominal_duration(&ctx).value();
        let mut s = SocketSim::new(c.clone(), 0);
        s.load(w);
        let t = run_to_completion(&mut s, c.tick, 200.0);
        assert!(
            (t - nominal).abs() / nominal < 0.02,
            "sim {t}s vs nominal {nominal}s"
        );
    }

    #[test]
    fn compute_app_runs_at_max_turbo_by_default() {
        let c = cfg();
        let ctx = MaterializeCtx::from_arch(&c.arch);
        let mut s = SocketSim::new(c.clone(), 0);
        s.load(apps::ep(&ctx).unwrap());
        s.enable_trace(10);
        for i in 0..5000 {
            s.tick(Instant(i * 1000));
        }
        let tr = s.take_trace().unwrap();
        let avg = tr.avg_core_freq().unwrap();
        assert!(
            avg.as_ghz() > 2.7,
            "performance governor should pin near 2.8 GHz, got {avg:?}"
        );
    }

    #[test]
    fn capping_reduces_frequency_and_power() {
        let c = cfg();
        let ctx = MaterializeCtx::from_arch(&c.arch);
        let units = RaplPowerUnit::skylake_sp();

        let run = |cap: Option<f64>| {
            let mut s = SocketSim::new(c.clone(), 0);
            s.load(apps::ep(&ctx).unwrap());
            if let Some(w) = cap {
                let reg = PkgPowerLimit::defaults(Watts(w), Seconds(1.0), Watts(w), Seconds(0.01));
                s.write_limit(reg.encode(&units).unwrap());
            }
            s.enable_trace(10);
            for i in 0..10_000 {
                s.tick(Instant(i * 1000));
            }
            let tr = s.take_trace().unwrap();
            (
                tr.avg_core_freq().unwrap().as_ghz(),
                tr.avg_pkg_power().unwrap().value(),
            )
        };

        let (f_free, p_free) = run(None);
        let (f_cap, p_cap) = run(Some(100.0));
        assert!(f_cap < f_free - 0.1, "capped freq {f_cap} vs free {f_free}");
        assert!(
            p_cap < p_free - 10.0,
            "capped power {p_cap} vs free {p_free}"
        );
        // The long-run average under a 100 W cap must respect it closely.
        assert!(p_cap <= 103.0, "avg power {p_cap} exceeds 100 W cap");
    }

    #[test]
    fn memory_app_is_insensitive_to_moderate_caps() {
        let c = cfg();
        let ctx = MaterializeCtx::from_arch(&c.arch);
        let units = RaplPowerUnit::skylake_sp();
        let mut specs = vec![];
        specs.extend(dufp_workloads::spec::repeat(
            &[dufp_workloads::PhaseSpec {
                name: "stream".into(),
                seconds_at_default: 10.0,
                oi: 0.01,
                boundness: dufp_workloads::Boundness::MemoryBound { headroom: 2.0 },
                core_util: 0.3,
                overlap_penalty: 0.0,
            }],
            1,
        ));
        let w = dufp_workloads::Workload::from_specs("stream", &specs, &ctx).unwrap();

        let run = |cap: Option<f64>| {
            let mut s = SocketSim::new(c.clone(), 0);
            s.load(w.clone());
            // The paper's 65–70 W caps on memory phases are always applied
            // with DUF managing the uncore; park it at the bandwidth knee.
            s.write_uncore(UncoreRatioLimit::pinned(Hertz::from_ghz(2.0)));
            if let Some(wc) = cap {
                let reg =
                    PkgPowerLimit::defaults(Watts(wc), Seconds(1.0), Watts(wc), Seconds(0.01));
                s.write_limit(reg.encode(&units).unwrap());
            }
            run_to_completion(&mut SocketSim::clone_for_test(&s), c.tick, 100.0)
        };
        let t_free = run(None);
        let t_cap = run(Some(70.0));
        // A one-off cold cap write incurs a ~1 s enforcement transient
        // (window average still reflects the uncapped past), so allow a few
        // percent; steady-state capping of a pure-memory phase is free.
        assert!(
            (t_cap - t_free) / t_free < 0.05,
            "70 W cap slowed a pure-memory phase: {t_free} -> {t_cap}"
        );
    }

    #[test]
    fn pinning_uncore_changes_effective_frequency() {
        let c = cfg();
        let mut s = SocketSim::new(c.clone(), 0);
        let ctx = MaterializeCtx::from_arch(&c.arch);
        s.load(apps::cg(&ctx).unwrap());
        assert_eq!(s.effective_uncore(), c.arch.uncore_freq_max);
        s.write_uncore(UncoreRatioLimit::pinned(Hertz::from_ghz(1.5)));
        assert_eq!(s.effective_uncore(), Hertz::from_ghz(1.5));
    }

    #[test]
    fn idle_socket_sits_at_min_frequencies() {
        let c = cfg();
        let mut s = SocketSim::new(c.clone(), 0);
        for i in 0..100 {
            s.tick(Instant(i * 1000));
        }
        assert_eq!(s.core_freq(), c.arch.core_freq_min);
        assert_eq!(s.effective_uncore(), c.arch.uncore_freq_min);
        assert!(s.accumulators().flops == 0.0);
        assert!(s.accumulators().pkg_energy > 0.0, "idle still burns power");
    }

    #[test]
    fn perf_ctl_ceiling_bounds_the_governor() {
        let c = cfg();
        let ctx = MaterializeCtx::from_arch(&c.arch);
        let mut s = SocketSim::new(c.clone(), 0);
        s.load(apps::ep(&ctx).unwrap());
        s.write_perf_ctl(PerfCtl::capped_at(Hertz::from_ghz(2.0)));
        s.enable_trace(10);
        for i in 0..3000 {
            s.tick(Instant(i * 1000));
        }
        let tr = s.take_trace().unwrap();
        for p in &tr.points {
            assert!(
                p.core_freq <= Hertz::from_ghz(2.0),
                "governor exceeded PERF_CTL: {:?}",
                p.core_freq
            );
        }
        // And the cap still applies underneath: EP at 2.0 GHz burns less.
        assert!(tr.avg_pkg_power().unwrap().value() < 110.0);
    }

    #[test]
    fn perf_ctl_out_of_ladder_requests_are_snapped() {
        let c = cfg();
        let ctx = MaterializeCtx::from_arch(&c.arch);
        let mut s = SocketSim::new(c.clone(), 0);
        s.load(apps::ep(&ctx).unwrap());
        // Request far above the ladder: clamps to the all-core turbo.
        s.write_perf_ctl(PerfCtl { target_ratio: 60 });
        for i in 0..100 {
            s.tick(Instant(i * 1000));
        }
        assert!(s.core_freq() <= c.arch.core_freq_max);
        // Request below the ladder: clamps to fmin, work still progresses.
        s.write_perf_ctl(PerfCtl { target_ratio: 1 });
        let before = s.accumulators().flops;
        for i in 100..200 {
            s.tick(Instant(i * 1000));
        }
        assert_eq!(s.core_freq(), c.arch.core_freq_min);
        assert!(s.accumulators().flops > before);
    }

    #[test]
    fn powersave_governor_clocks_down_memory_phases() {
        use crate::governor::Governor;
        let mut c = cfg();
        c.governor = Governor::Powersave { bias: 0.25 };
        let ctx = MaterializeCtx::from_arch(&c.arch);
        let w = apps::cg(&ctx).unwrap();

        let run = |cfg: &SimConfig| {
            let mut s = SocketSim::new(cfg.clone(), 0);
            s.load(w.clone());
            s.enable_trace(20);
            let mut now = Instant::ZERO;
            while !s.done() {
                s.tick(now);
                now += cfg.tick;
            }
            let tr = s.take_trace().unwrap();
            (
                now.as_seconds().value(),
                tr.avg_core_freq().unwrap().as_ghz(),
                tr.avg_pkg_power().unwrap().value(),
            )
        };
        let (t_save, f_save, p_save) = run(&c);
        let (t_perf, f_perf, p_perf) = run(&cfg());
        // CG's compute headroom is thin (≈1.1), so the schedutil-style
        // estimate only trims ~100-150 MHz on the main phase (plus deeper
        // cuts on the prologue) — but it must trim.
        assert!(
            f_save < f_perf - 0.08,
            "powersave {f_save} vs performance {f_perf}"
        );
        assert!(
            p_save < p_perf - 2.0,
            "powersave power {p_save} vs {p_perf}"
        );
        // CG is memory-bound: the clock cut must cost little time.
        assert!(
            t_save < t_perf * 1.10,
            "powersave slowed CG too much: {t_perf} -> {t_save}"
        );
    }

    #[test]
    fn energy_counters_wrap_correctly() {
        let unit = 6.103515625e-5;
        let a = energy_to_rapl_counter(262143.9, unit); // just below wrap
        let b = energy_to_rapl_counter(262144.1, unit); // just above
        assert!(b < a, "counter must wrap");
        let delta = rapl_counter_delta_joules(a, b, unit);
        assert!((delta - 0.2).abs() < 0.01, "delta {delta}");
    }

    /// Drives a tick-stepped and a fast-path socket in lockstep through
    /// mid-run register writes, asserting every observable stays
    /// bit-identical tick by tick.
    fn assert_fast_path_equivalent(c: SimConfig, writes: &[(u64, &dyn Fn(&mut SocketSim))]) {
        let ctx = MaterializeCtx::from_arch(&c.arch);
        let w = apps::cg(&ctx).unwrap();
        let mut slow = SocketSim::new(c.clone(), 0);
        let mut fast = SocketSim::new(c.clone(), 0);
        slow.load(w.clone());
        fast.load(w);
        slow.enable_trace(7);
        fast.enable_trace(7);
        let tick_us = c.tick.as_micros();
        for i in 0..150_000u64 {
            for (at, write) in writes {
                if *at == i {
                    write(&mut slow);
                    write(&mut fast);
                }
            }
            let now = Instant(i * tick_us);
            slow.tick(now);
            fast.tick_fast(now);
            let a = slow.accumulators();
            let b = fast.accumulators();
            assert_eq!(a.pkg_energy.to_bits(), b.pkg_energy.to_bits(), "tick {i}");
            assert_eq!(a.flops.to_bits(), b.flops.to_bits(), "tick {i}");
            if slow.done() && fast.done() {
                break;
            }
        }
        assert!(slow.done(), "run must complete inside the tick budget");
        assert_eq!(slow.done(), fast.done());
        assert_eq!(slow.accumulators(), fast.accumulators());
        assert_eq!(slow.core_freq(), fast.core_freq());
        assert_eq!(slow.phase_log(), fast.phase_log());
        assert_eq!(
            slow.take_trace().unwrap().points,
            fast.take_trace().unwrap().points
        );
    }

    #[test]
    fn fast_path_matches_tick_with_noise() {
        assert_fast_path_equivalent(SimConfig::yeti_single_socket(3), &[]);
    }

    #[test]
    fn fast_path_matches_tick_noise_free() {
        assert_fast_path_equivalent(SimConfig::deterministic(9), &[]);
    }

    #[test]
    fn fast_path_matches_tick_across_register_writes() {
        let units = RaplPowerUnit::skylake_sp();
        let cap = move |w: f64| {
            let raw = PkgPowerLimit::defaults(Watts(w), Seconds(1.0), Watts(w), Seconds(0.01))
                .encode(&units)
                .unwrap();
            move |s: &mut SocketSim| s.write_limit(raw)
        };
        // A deep cap (65 W, below the 68 W bandwidth knee) forces the
        // varying-bandwidth regime where the memo must keep falling back;
        // a mid cap and an uncore pin exercise rung changes and the
        // pressure-band boundary; PERF_CTL exercises the ceiling path.
        let deep = cap(65.0);
        let mid = cap(95.0);
        let lift = cap(125.0);
        let pin = |s: &mut SocketSim| s.write_uncore(UncoreRatioLimit::pinned(Hertz::from_ghz(1.6)));
        let ceil = |s: &mut SocketSim| s.write_perf_ctl(PerfCtl::capped_at(Hertz::from_ghz(2.2)));
        let writes: [(u64, &dyn Fn(&mut SocketSim)); 5] = [
            (2_000, &mid),
            (6_000, &deep),
            (10_000, &lift),
            (14_000, &pin),
            (18_000, &ceil),
        ];
        assert_fast_path_equivalent(SimConfig::yeti_single_socket(17), &writes);
    }

    #[test]
    fn same_seed_same_run() {
        let c = SimConfig::yeti_single_socket(7);
        let ctx = MaterializeCtx::from_arch(&c.arch);
        let mut a = SocketSim::new(c.clone(), 0);
        let mut b = SocketSim::new(c.clone(), 0);
        a.load(apps::cg(&ctx).unwrap());
        b.load(apps::cg(&ctx).unwrap());
        for i in 0..5000 {
            a.tick(Instant(i * 1000));
            b.tick(Instant(i * 1000));
        }
        assert_eq!(a.accumulators(), b.accumulators());
    }

    impl SocketSim {
        /// Test-only deep copy (the RNG and enforcer state are cloneable).
        fn clone_for_test(other: &Self) -> Self {
            SocketSim {
                cfg: other.cfg.clone(),
                uncore_raw: other.uncore_raw,
                limit_raw: other.limit_raw,
                perf_ctl: other.perf_ctl,
                enforcer: other.enforcer.clone(),
                core_freq: other.core_freq,
                mem_util: other.mem_util,
                workload: other.workload.clone(),
                phase_idx: other.phase_idx,
                units_done: other.units_done,
                acc: other.acc,
                rng: other.rng.clone(),
                run_perf_factor: other.run_perf_factor,
                run_power_factor: other.run_power_factor,
                walk: other.walk,
                trace: other.trace.clone(),
                trace_stride: other.trace_stride,
                ticks: other.ticks,
                phase_log: other.phase_log.clone(),
                gauges: None,
                memo: None,
            }
        }
    }
}
