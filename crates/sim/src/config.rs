//! Simulator configuration.

use crate::governor::Governor;
use dufp_model::{CapEnforcerParams, DramPowerModel, PowerModel};
use dufp_types::{ArchSpec, Duration};
use serde::{Deserialize, Serialize};

/// Measurement / execution noise configuration.
///
/// Three components, all multiplicative:
///
/// * a per-run factor (σ = `run_sigma`) — run-to-run variation, what the
///   paper's error bars show (< 2 % for most configurations, §V),
/// * a slowly-varying random walk (step σ = `walk_sigma`, reverting to 1),
/// * per-tick jitter (σ = `tick_sigma`) — averages out over a 200 ms
///   sampling interval but gives the controllers realistic measurement
///   wiggle, which the paper's "equivalent with respect to the considered
///   measurement error" branch must absorb.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Std-dev of the per-run performance/power factor.
    pub run_sigma: f64,
    /// Std-dev of each random-walk step (applied per tick, mean-reverting).
    pub walk_sigma: f64,
    /// Std-dev of independent per-tick jitter.
    pub tick_sigma: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            run_sigma: 0.004,
            walk_sigma: 0.0015,
            tick_sigma: 0.01,
        }
    }
}

impl NoiseConfig {
    /// Noise-free configuration, for exactness-sensitive tests.
    pub fn none() -> Self {
        NoiseConfig {
            run_sigma: 0.0,
            walk_sigma: 0.0,
            tick_sigma: 0.0,
        }
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Architecture being simulated (Table I values).
    pub arch: ArchSpec,
    /// Package power model.
    pub power: PowerModel,
    /// DRAM power model (per socket's NUMA node).
    pub dram: DramPowerModel,
    /// Bandwidth transfer function.
    pub bandwidth: dufp_model::BandwidthModel,
    /// RAPL enforcement dynamics.
    pub cap: CapEnforcerParams,
    /// Simulation tick.
    pub tick: Duration,
    /// Noise model.
    pub noise: NoiseConfig,
    /// Master seed; per-socket streams derive from it.
    pub seed: u64,
    /// CPU frequency governor (the paper uses the performance governor).
    #[serde(default)]
    pub governor: Governor,
}

impl SimConfig {
    /// The paper's platform: four Xeon Gold 6130 packages.
    pub fn yeti(seed: u64) -> Self {
        SimConfig {
            arch: ArchSpec::yeti(),
            power: PowerModel::xeon_gold_6130(),
            dram: DramPowerModel::ddr4_64gib(),
            bandwidth: dufp_model::BandwidthModel::xeon_gold_6130(),
            cap: CapEnforcerParams::default(),
            tick: Duration::from_millis(1),
            noise: NoiseConfig::default(),
            seed,
            governor: Governor::Performance,
        }
    }

    /// Single-socket YETI variant for fast unit tests.
    pub fn yeti_single_socket(seed: u64) -> Self {
        let mut c = Self::yeti(seed);
        c.arch.sockets = 1;
        c
    }

    /// Noise-free single-socket variant for exactness-sensitive tests.
    pub fn deterministic(seed: u64) -> Self {
        let mut c = Self::yeti_single_socket(seed);
        c.noise = NoiseConfig::none();
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yeti_config_matches_table1() {
        let c = SimConfig::yeti(0);
        assert_eq!(c.arch.sockets, 4);
        assert_eq!(c.arch.total_cores(), 64);
        assert_eq!(c.tick, Duration::from_millis(1));
    }

    #[test]
    fn deterministic_config_has_no_noise() {
        let c = SimConfig::deterministic(0);
        assert_eq!(c.noise, NoiseConfig::none());
        assert_eq!(c.arch.sockets, 1);
    }
}
