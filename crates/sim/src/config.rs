//! Simulator configuration.

use crate::governor::Governor;
use dufp_model::{CapEnforcerParams, DramPowerModel, PowerModel};
use dufp_types::{ArchSpec, Duration, Error, Result};
use serde::{Deserialize, Serialize};

/// Measurement / execution noise configuration.
///
/// Three components, all multiplicative:
///
/// * a per-run factor (σ = `run_sigma`) — run-to-run variation, what the
///   paper's error bars show (< 2 % for most configurations, §V),
/// * a slowly-varying random walk (step σ = `walk_sigma`, reverting to 1),
/// * per-tick jitter (σ = `tick_sigma`) — averages out over a 200 ms
///   sampling interval but gives the controllers realistic measurement
///   wiggle, which the paper's "equivalent with respect to the considered
///   measurement error" branch must absorb.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Std-dev of the per-run performance/power factor.
    pub run_sigma: f64,
    /// Std-dev of each random-walk step (applied per tick, mean-reverting).
    pub walk_sigma: f64,
    /// Std-dev of independent per-tick jitter.
    pub tick_sigma: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            run_sigma: 0.004,
            walk_sigma: 0.0015,
            tick_sigma: 0.01,
        }
    }
}

impl NoiseConfig {
    /// Noise-free configuration, for exactness-sensitive tests.
    pub fn none() -> Self {
        NoiseConfig {
            run_sigma: 0.0,
            walk_sigma: 0.0,
            tick_sigma: 0.0,
        }
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Architecture being simulated (Table I values).
    pub arch: ArchSpec,
    /// Package power model.
    pub power: PowerModel,
    /// DRAM power model (per socket's NUMA node).
    pub dram: DramPowerModel,
    /// Bandwidth transfer function.
    pub bandwidth: dufp_model::BandwidthModel,
    /// RAPL enforcement dynamics.
    pub cap: CapEnforcerParams,
    /// Simulation tick.
    pub tick: Duration,
    /// Noise model.
    pub noise: NoiseConfig,
    /// Master seed; per-socket streams derive from it.
    pub seed: u64,
    /// CPU frequency governor (the paper uses the performance governor).
    #[serde(default)]
    pub governor: Governor,
}

impl SimConfig {
    /// The paper's platform: four Xeon Gold 6130 packages.
    pub fn yeti(seed: u64) -> Self {
        SimConfig {
            arch: ArchSpec::yeti(),
            power: PowerModel::xeon_gold_6130(),
            dram: DramPowerModel::ddr4_64gib(),
            bandwidth: dufp_model::BandwidthModel::xeon_gold_6130(),
            cap: CapEnforcerParams::default(),
            tick: Duration::from_millis(1),
            noise: NoiseConfig::default(),
            seed,
            governor: Governor::Performance,
        }
    }

    /// Single-socket YETI variant for fast unit tests.
    pub fn yeti_single_socket(seed: u64) -> Self {
        let mut c = Self::yeti(seed);
        c.arch.sockets = 1;
        c
    }

    /// Noise-free single-socket variant for exactness-sensitive tests.
    pub fn deterministic(seed: u64) -> Self {
        let mut c = Self::yeti_single_socket(seed);
        c.noise = NoiseConfig::none();
        c
    }

    /// Rejects machine descriptions the simulator cannot run — a zero
    /// tick period, zero sockets/cores, NaN or negative noise, inverted
    /// frequency ladders, a cap floor above PL1 — with a typed
    /// [`Error::InvalidValue`] naming the offending field. Called on every
    /// run and by anything deserializing a `--machine` file.
    pub fn validate(&self) -> Result<()> {
        if self.tick.as_micros() == 0 {
            return Err(Error::invalid("tick", "zero tick period"));
        }
        if self.arch.sockets == 0 {
            return Err(Error::invalid("sockets", "need at least one socket"));
        }
        if self.arch.cores_per_socket == 0 {
            return Err(Error::invalid(
                "cores_per_socket",
                "need at least one core per socket",
            ));
        }
        for (name, v) in [
            ("noise.run_sigma", self.noise.run_sigma),
            ("noise.walk_sigma", self.noise.walk_sigma),
            ("noise.tick_sigma", self.noise.tick_sigma),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(Error::invalid(
                    name,
                    format!("{v} must be finite and non-negative"),
                ));
            }
        }
        for (name, v) in [
            ("core_freq_min", self.arch.core_freq_min.value()),
            ("core_freq_max", self.arch.core_freq_max.value()),
            ("uncore_freq_min", self.arch.uncore_freq_min.value()),
            ("uncore_freq_max", self.arch.uncore_freq_max.value()),
            ("pl1_default", self.arch.pl1_default.value()),
            ("pl2_default", self.arch.pl2_default.value()),
            ("cap_step", self.arch.cap_step.value()),
            ("cap_floor", self.arch.cap_floor.value()),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(Error::invalid(
                    name,
                    format!("{v} must be finite and positive"),
                ));
            }
        }
        if self.arch.core_freq_min > self.arch.core_freq_max {
            return Err(Error::invalid(
                "core_freq_min",
                format!(
                    "{:.2} GHz above core_freq_max {:.2} GHz",
                    self.arch.core_freq_min.as_ghz(),
                    self.arch.core_freq_max.as_ghz()
                ),
            ));
        }
        if self.arch.uncore_freq_min > self.arch.uncore_freq_max {
            return Err(Error::invalid(
                "uncore_freq_min",
                format!(
                    "{:.2} GHz above uncore_freq_max {:.2} GHz",
                    self.arch.uncore_freq_min.as_ghz(),
                    self.arch.uncore_freq_max.as_ghz()
                ),
            ));
        }
        if self.arch.cap_floor > self.arch.pl1_default {
            return Err(Error::invalid(
                "cap_floor",
                format!(
                    "{:.0} W above the PL1 default {:.0} W",
                    self.arch.cap_floor.value(),
                    self.arch.pl1_default.value()
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yeti_config_matches_table1() {
        let c = SimConfig::yeti(0);
        assert_eq!(c.arch.sockets, 4);
        assert_eq!(c.arch.total_cores(), 64);
        assert_eq!(c.tick, Duration::from_millis(1));
    }

    #[test]
    fn deterministic_config_has_no_noise() {
        let c = SimConfig::deterministic(0);
        assert_eq!(c.noise, NoiseConfig::none());
        assert_eq!(c.arch.sockets, 1);
    }

    #[test]
    fn default_configs_validate() {
        SimConfig::yeti(0).validate().unwrap();
        SimConfig::deterministic(0).validate().unwrap();
    }

    #[test]
    fn broken_configs_are_rejected_with_the_offending_field() {
        use dufp_types::{Hertz, Watts};
        let check = |mutate: &dyn Fn(&mut SimConfig), field: &str| {
            let mut c = SimConfig::yeti(0);
            mutate(&mut c);
            let err = c.validate().unwrap_err().to_string();
            assert!(err.contains(field), "expected {field} in: {err}");
        };
        check(&|c| c.tick = Duration::ZERO, "tick");
        check(&|c| c.arch.sockets = 0, "socket");
        check(&|c| c.arch.cores_per_socket = 0, "core");
        check(&|c| c.noise.tick_sigma = f64::NAN, "tick_sigma");
        check(&|c| c.noise.run_sigma = -0.1, "run_sigma");
        check(&|c| c.arch.pl1_default = Watts(f64::NAN), "pl1_default");
        check(&|c| c.arch.cap_floor = Watts(-5.0), "cap_floor");
        check(&|c| c.arch.cap_floor = Watts(500.0), "cap_floor");
        check(
            &|c| c.arch.uncore_freq_min = Hertz::from_ghz(3.0),
            "uncore_freq_min",
        );
        check(
            &|c| c.arch.core_freq_max = Hertz::from_ghz(0.5),
            "core_freq_min",
        );
    }
}
