//! The whole simulated node: sockets, clock, and the hardware interfaces.

use crate::config::SimConfig;
use crate::socket::{energy_to_rapl_counter, SocketSim};
use crate::trace::Trace;
use dufp_counters::{CounterSnapshot, Telemetry};
use dufp_msr::registers::{
    PerfCtl, RaplPowerUnit, UncoreRatioLimit, IA32_APERF, IA32_MPERF, IA32_PERF_CTL,
    MSR_DRAM_ENERGY_STATUS, MSR_DRAM_POWER_LIMIT, MSR_PKG_ENERGY_STATUS, MSR_PKG_POWER_INFO,
    MSR_PKG_POWER_LIMIT, MSR_PLATFORM_INFO, MSR_RAPL_POWER_UNIT, MSR_UNCORE_RATIO_LIMIT,
    SKYLAKE_SP_POWER_UNIT_RAW,
};
use dufp_msr::{FaultInjector, FaultOp, FaultPlan, InjectorSnapshot, MsrIo};
use dufp_types::{Duration, Error, Instant, Joules, Result, SocketId};
use dufp_workloads::Workload;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A simulated multi-socket node.
///
/// Thread-safe: controllers access it through [`MsrIo`] and [`Telemetry`]
/// (`&self`), while the experiment driver advances time with
/// [`Machine::tick`] (also `&self`; per-socket state lives behind mutexes).
///
/// ```
/// use dufp_sim::{Machine, SimConfig};
/// use dufp_counters::Telemetry;
/// use dufp_types::SocketId;
/// use dufp_workloads::{apps, MaterializeCtx};
///
/// let machine = Machine::new(SimConfig::deterministic(1));
/// let ctx = MaterializeCtx::from_arch(&machine.config().arch);
/// machine.load_all(&apps::ep(&ctx).unwrap());
/// for _ in 0..1000 {
///     machine.tick(); // one simulated second
/// }
/// let snap = machine.sample(SocketId(0)).unwrap();
/// assert!(snap.flops > 0.0 && snap.pkg_energy.value() > 50.0);
/// ```
pub struct Machine {
    cfg: SimConfig,
    sockets: Vec<Mutex<SocketSim>>,
    /// Microseconds since simulation start.
    now_us: AtomicU64,
    /// Armed fault plan, if any; consulted on every MSR access and
    /// telemetry sample with the simulator tick as the clock.
    injector: Mutex<Option<Arc<FaultInjector>>>,
}

impl Machine {
    /// Builds an idle machine for `cfg`.
    pub fn new(cfg: SimConfig) -> Self {
        let sockets = (0..cfg.arch.sockets)
            .map(|i| Mutex::new(SocketSim::new(cfg.clone(), i)))
            .collect();
        Machine {
            cfg,
            sockets,
            now_us: AtomicU64::new(0),
            injector: Mutex::new(None),
        }
    }

    /// Arms a [`FaultPlan`] against this machine's hardware surfaces: MSR
    /// reads/writes and the counter-sampling path. Scheduled rules
    /// (`at=`, `window=`) are evaluated against the simulator tick, so a
    /// plan plus a seed reproduces the exact same chaos run.
    pub fn inject_faults(&self, plan: FaultPlan) {
        *self.injector.lock() = if plan.is_empty() {
            None
        } else {
            Some(Arc::new(FaultInjector::new(plan)))
        };
    }

    /// Snapshot of the armed injector's mutable state (RNG position and
    /// per-rule hit counters) for checkpoints. `None` when no plan is armed.
    pub fn injector_snapshot(&self) -> Option<InjectorSnapshot> {
        self.injector.lock().as_ref().map(|i| i.snapshot())
    }

    /// Arms `plan` and restores a checkpointed injector state, so the fault
    /// stream continues exactly where the checkpointed run left off rather
    /// than replaying probabilistic faults from the beginning.
    pub fn inject_faults_with_state(&self, plan: FaultPlan, snap: &InjectorSnapshot) -> Result<()> {
        if plan.is_empty() {
            return Err(Error::Precondition(
                "cannot restore injector state onto an empty fault plan".to_owned(),
            ));
        }
        let inj = FaultInjector::new(plan);
        inj.restore(snap)?;
        *self.injector.lock() = Some(Arc::new(inj));
        Ok(())
    }

    /// Current tick index (the fault clock).
    fn tick_index(&self) -> u64 {
        self.now_us.load(Ordering::Relaxed) / self.cfg.tick.as_micros()
    }

    fn check_fault(&self, op: FaultOp, cpu: usize, address: u32) -> Result<()> {
        let injector = self.injector.lock().clone();
        if let Some(inj) = injector {
            if inj.should_fail_at(op, cpu, address, Some(self.tick_index())) {
                return Err(Error::msr(address, format!("injected {op:?} fault (plan)")));
            }
        }
        Ok(())
    }

    /// The configuration this machine runs.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Publishes every socket's per-tick state (power, FLOPS/s, bandwidth,
    /// frequencies) as gauges on `tel`; see
    /// [`crate::socket::SocketSim::attach_telemetry`].
    pub fn attach_telemetry(&self, tel: &dufp_telemetry::Telemetry) {
        for (i, s) in self.sockets.iter().enumerate() {
            s.lock().attach_telemetry(tel, i as u16);
        }
    }

    /// Loads a copy of `workload` onto every socket (the paper runs each
    /// application across all four packages).
    pub fn load_all(&self, workload: &Workload) {
        for s in &self.sockets {
            s.lock().load(workload.clone());
        }
    }

    /// Loads a workload onto one socket.
    pub fn load(&self, socket: SocketId, workload: Workload) -> Result<()> {
        self.socket(socket)?.lock().load(workload);
        Ok(())
    }

    /// Loads `workload` onto every socket with a per-socket work scale
    /// (real nodes never balance perfectly; rank 0 usually carries extra
    /// work). A factor of `1.0` is the nominal share.
    pub fn load_imbalanced(&self, workload: &Workload, factors: &[f64]) -> Result<()> {
        if factors.len() != self.sockets.len() {
            return Err(Error::Precondition(format!(
                "{} factors for {} sockets",
                factors.len(),
                self.sockets.len()
            )));
        }
        for (s, &factor) in self.sockets.iter().zip(factors) {
            if !(factor.is_finite() && factor > 0.0) {
                return Err(Error::invalid("imbalance factor", format!("{factor}")));
            }
            let mut scaled = workload.clone();
            for p in &mut scaled.phases {
                p.work_units *= factor;
            }
            s.lock().load(scaled);
        }
        Ok(())
    }

    /// Current simulated time.
    pub fn now(&self) -> Instant {
        Instant(self.now_us.load(Ordering::Relaxed))
    }

    /// True when every socket has finished its workload.
    pub fn done(&self) -> bool {
        self.sockets.iter().all(|s| s.lock().done())
    }

    /// Advances the whole machine by one tick.
    pub fn tick(&self) {
        let now = self.now();
        for s in &self.sockets {
            s.lock().tick(now);
        }
        self.now_us
            .fetch_add(self.cfg.tick.as_micros(), Ordering::Relaxed);
    }

    /// Advances up to `max_ticks` ticks through the sockets' memoized fast
    /// path ([`SocketSim::tick_fast`]), stopping early — *after* the
    /// completing tick, matching the tick-engine's `tick(); done()` order —
    /// once every socket has finished. Returns the number of ticks actually
    /// advanced.
    ///
    /// Each socket is locked once for the whole batch and the clock is
    /// published once at the end, which is observationally equivalent to
    /// per-tick stepping because MSR accesses, telemetry samples and fault
    /// injection only happen between driver batches, never mid-batch.
    pub fn advance(&self, max_ticks: u64) -> u64 {
        let tick_us = self.cfg.tick.as_micros();
        if let [only] = &self.sockets[..] {
            // Single-socket machines (the paper sweep shape) hand whole
            // batches to the socket's tight kernel, dropping to per-tick
            // stepping only on ticks that must rebuild the memo.
            let base = self.now_us.load(Ordering::Relaxed);
            let mut g = only.lock();
            let mut advanced = 0u64;
            while advanced < max_ticks {
                if g.done() {
                    // An already-idle machine still performs the tick the
                    // per-tick loop would before noticing it is done.
                    g.tick_fast(Instant(base + advanced * tick_us));
                    advanced += 1;
                    break;
                }
                advanced += g.tick_fast_batch(
                    Instant(base + advanced * tick_us),
                    tick_us,
                    max_ticks - advanced,
                );
                if g.done() || advanced >= max_ticks {
                    break;
                }
                g.tick_fast(Instant(base + advanced * tick_us));
                advanced += 1;
                if g.done() {
                    break;
                }
            }
            drop(g);
            self.now_us.fetch_add(advanced * tick_us, Ordering::Relaxed);
            return advanced;
        }
        let mut guards: Vec<_> = self.sockets.iter().map(|s| s.lock()).collect();
        let mut now = self.now_us.load(Ordering::Relaxed);
        let mut advanced = 0u64;
        while advanced < max_ticks {
            let mut all_done = true;
            for g in guards.iter_mut() {
                g.tick_fast(Instant(now));
                all_done &= g.done();
            }
            now += tick_us;
            advanced += 1;
            if all_done {
                break;
            }
        }
        self.now_us
            .fetch_add(advanced * tick_us, Ordering::Relaxed);
        advanced
    }

    /// Runs until every socket finishes or `max` elapses; returns the
    /// elapsed simulated time.
    pub fn run_to_completion(&self, max: Duration) -> Result<Duration> {
        let start = self.now();
        while !self.done() {
            if self.now().duration_since(start) >= max {
                return Err(Error::Precondition(format!(
                    "workload did not finish within {max}"
                )));
            }
            self.tick();
        }
        Ok(self.now().duration_since(start))
    }

    /// Enables per-tick tracing on one socket.
    pub fn enable_trace(&self, socket: SocketId, stride: u32) -> Result<()> {
        self.socket(socket)?.lock().enable_trace(stride);
        Ok(())
    }

    /// Takes the trace recorded on one socket.
    pub fn take_trace(&self, socket: SocketId) -> Result<Option<Trace>> {
        Ok(self.socket(socket)?.lock().take_trace())
    }

    /// Ground-truth phase transitions of one socket's workload.
    pub fn phase_log(&self, socket: SocketId) -> Result<Vec<(Instant, usize)>> {
        Ok(self.socket(socket)?.lock().phase_log().to_vec())
    }

    /// Runs `f` with the socket simulation locked (test/diagnostic hook).
    pub fn with_socket<T>(
        &self,
        socket: SocketId,
        f: impl FnOnce(&mut SocketSim) -> T,
    ) -> Result<T> {
        Ok(f(&mut self.socket(socket)?.lock()))
    }

    fn socket(&self, id: SocketId) -> Result<&Mutex<SocketSim>> {
        self.sockets
            .get(id.as_usize())
            .ok_or_else(|| Error::NoSuchComponent(id.to_string()))
    }

    fn socket_of_cpu(&self, cpu: usize) -> Result<&Mutex<SocketSim>> {
        let per = usize::from(self.cfg.arch.cores_per_socket);
        let idx = cpu / per;
        if cpu >= per * self.sockets.len() {
            return Err(Error::NoSuchComponent(format!("cpu{cpu}")));
        }
        Ok(&self.sockets[idx])
    }
}

impl MsrIo for Machine {
    fn read(&self, cpu: usize, address: u32) -> Result<u64> {
        let sock = self.socket_of_cpu(cpu)?;
        self.check_fault(FaultOp::Read, cpu, address)?;
        let units = RaplPowerUnit::skylake_sp();
        let s = sock.lock();
        match address {
            MSR_RAPL_POWER_UNIT => Ok(SKYLAKE_SP_POWER_UNIT_RAW),
            MSR_UNCORE_RATIO_LIMIT => Ok(s.uncore_raw().encode()),
            MSR_PKG_POWER_LIMIT => Ok(s.limit_raw()),
            MSR_PKG_ENERGY_STATUS => Ok(energy_to_rapl_counter(
                s.accumulators().pkg_energy,
                units.energy_unit,
            )),
            MSR_DRAM_ENERGY_STATUS => Ok(energy_to_rapl_counter(
                s.accumulators().dram_energy,
                units.energy_unit,
            )),
            MSR_PKG_POWER_INFO => {
                // Bits 14:0 — TDP in power units.
                let ticks =
                    (self.cfg.arch.pl1_default.value() / units.power_unit.value()).round() as u64;
                Ok(ticks & 0x7FFF)
            }
            MSR_PLATFORM_INFO => Ok(u64::from(self.cfg.arch.core_freq_base.as_ratio_100mhz()) << 8),
            IA32_PERF_CTL => Ok(s.perf_ctl().encode()),
            IA32_APERF => Ok(s.accumulators().aperf as u64),
            IA32_MPERF => Ok(s.accumulators().mperf as u64),
            other => Err(Error::msr(other, "unmodelled register".to_owned())),
        }
    }

    fn write(&self, cpu: usize, address: u32, value: u64) -> Result<()> {
        let sock = self.socket_of_cpu(cpu)?;
        self.check_fault(FaultOp::Write, cpu, address)?;
        let mut s = sock.lock();
        match address {
            MSR_UNCORE_RATIO_LIMIT => {
                s.write_uncore(UncoreRatioLimit::decode(value));
                Ok(())
            }
            MSR_PKG_POWER_LIMIT => {
                s.write_limit(value);
                Ok(())
            }
            IA32_PERF_CTL => {
                s.write_perf_ctl(PerfCtl::decode(value));
                Ok(())
            }
            MSR_DRAM_POWER_LIMIT => {
                // Matches the paper's platform: "memory power capping is not
                // available on the processor that we used" (§II-B).
                Err(Error::Unsupported("DRAM power capping on Skylake-SP"))
            }
            other => Err(Error::msr(other, "read-only or unmodelled".to_owned())),
        }
    }

    fn cpu_count(&self) -> usize {
        usize::from(self.cfg.arch.cores_per_socket) * self.sockets.len()
    }
}

impl Telemetry for Machine {
    fn sample(&self, socket: SocketId) -> Result<CounterSnapshot> {
        let lead_cpu = socket.as_usize() * usize::from(self.cfg.arch.cores_per_socket);
        self.check_fault(FaultOp::Sample, lead_cpu, 0)?;
        let s = self.socket(socket)?.lock();
        let acc = s.accumulators();
        Ok(CounterSnapshot {
            at: self.now(),
            flops: acc.flops,
            bytes: acc.bytes,
            pkg_energy: Joules(acc.pkg_energy),
            dram_energy: Joules(acc.dram_energy),
            avg_core_freq: s.core_freq(),
        })
    }

    fn socket_count(&self) -> usize {
        self.sockets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dufp_msr::registers::{PkgPowerLimit, PowerLimit};
    use dufp_types::{Hertz, Seconds, Watts};
    use dufp_workloads::{apps, MaterializeCtx};

    fn machine() -> Machine {
        Machine::new(SimConfig::deterministic(11))
    }

    #[test]
    fn msr_surface_defaults() {
        let m = machine();
        assert_eq!(
            m.read(0, MSR_RAPL_POWER_UNIT).unwrap(),
            SKYLAKE_SP_POWER_UNIT_RAW
        );
        let unc = UncoreRatioLimit::decode(m.read(0, MSR_UNCORE_RATIO_LIMIT).unwrap());
        assert_eq!(unc.max_ratio, 24);
        assert_eq!(unc.min_ratio, 12);
        let units = RaplPowerUnit::skylake_sp();
        let lim = PkgPowerLimit::decode(m.read(0, MSR_PKG_POWER_LIMIT).unwrap(), &units);
        assert_eq!(lim.pl1.power, Watts(125.0));
        assert_eq!(lim.pl2.power, Watts(150.0));
        // TDP via POWER_INFO.
        assert_eq!(m.read(0, MSR_PKG_POWER_INFO).unwrap(), 1000);
    }

    #[test]
    fn dram_power_limit_is_unsupported() {
        let m = machine();
        let err = m.write(0, MSR_DRAM_POWER_LIMIT, 0).unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)));
    }

    #[test]
    fn unknown_registers_error() {
        let m = machine();
        assert!(m.read(0, 0xDEAD).is_err());
        assert!(m.write(0, 0x611, 0).is_err(), "energy counter is read-only");
    }

    #[test]
    fn cpu_to_socket_mapping() {
        let cfg = SimConfig::yeti(3);
        let m = Machine::new(cfg);
        // 64 CPUs over 4 sockets.
        assert_eq!(m.cpu_count(), 64);
        // Pin socket 2's uncore via cpu 37 (37/16 = 2).
        m.write(
            37,
            MSR_UNCORE_RATIO_LIMIT,
            UncoreRatioLimit::pinned(Hertz::from_ghz(1.5)).encode(),
        )
        .unwrap();
        let s2 = UncoreRatioLimit::decode(m.read(32, MSR_UNCORE_RATIO_LIMIT).unwrap());
        assert_eq!(s2.max_ratio, 15);
        let s0 = UncoreRatioLimit::decode(m.read(0, MSR_UNCORE_RATIO_LIMIT).unwrap());
        assert_eq!(s0.max_ratio, 24, "socket 0 unaffected");
        assert!(m.read(64, MSR_UNCORE_RATIO_LIMIT).is_err());
    }

    #[test]
    fn telemetry_counters_advance_with_work() {
        let m = machine();
        let ctx = MaterializeCtx::from_arch(&m.config().arch);
        m.load_all(&apps::cg(&ctx).unwrap());
        let before = m.sample(SocketId(0)).unwrap();
        for _ in 0..500 {
            m.tick();
        }
        let after = m.sample(SocketId(0)).unwrap();
        assert!(after.flops > before.flops);
        assert!(after.bytes > before.bytes);
        assert!(after.pkg_energy > before.pkg_energy);
        assert!(after.dram_energy > before.dram_energy);
        assert_eq!(
            after.at.duration_since(before.at),
            Duration::from_millis(500)
        );
    }

    #[test]
    fn run_to_completion_terminates_and_reports_duration() {
        let m = machine();
        let ctx = MaterializeCtx::from_arch(&m.config().arch);
        let w = apps::ep(&ctx).unwrap();
        let nominal = w.nominal_duration(&ctx).value();
        m.load_all(&w);
        let elapsed = m.run_to_completion(Duration::from_secs(200)).unwrap();
        let t = elapsed.as_seconds().value();
        assert!((t - nominal).abs() / nominal < 0.02, "{t} vs {nominal}");
    }

    #[test]
    fn run_to_completion_times_out() {
        let m = machine();
        let ctx = MaterializeCtx::from_arch(&m.config().arch);
        m.load_all(&apps::ep(&ctx).unwrap());
        assert!(m.run_to_completion(Duration::from_secs(1)).is_err());
    }

    #[test]
    fn lowering_pl1_is_visible_in_power_telemetry() {
        let m = machine();
        let ctx = MaterializeCtx::from_arch(&m.config().arch);
        m.load_all(&apps::hpl(&ctx).unwrap());
        // Warm up uncapped.
        for _ in 0..2000 {
            m.tick();
        }
        let a = m.sample(SocketId(0)).unwrap();
        for _ in 0..2000 {
            m.tick();
        }
        let b = m.sample(SocketId(0)).unwrap();
        let p_free = (b.pkg_energy - a.pkg_energy).value() / 2.0;

        let units = RaplPowerUnit::skylake_sp();
        let reg = PkgPowerLimit {
            pl1: PowerLimit {
                power: Watts(90.0),
                enabled: true,
                clamp: true,
                window: Seconds(1.0),
            },
            pl2: PowerLimit {
                power: Watts(90.0),
                enabled: true,
                clamp: true,
                window: Seconds(0.01),
            },
            lock: false,
        };
        m.write(0, MSR_PKG_POWER_LIMIT, reg.encode(&units).unwrap())
            .unwrap();
        for _ in 0..2000 {
            m.tick();
        }
        let c = m.sample(SocketId(0)).unwrap();
        for _ in 0..2000 {
            m.tick();
        }
        let d = m.sample(SocketId(0)).unwrap();
        let p_capped = (d.pkg_energy - c.pkg_energy).value() / 2.0;
        assert!(
            p_capped < 93.0 && p_capped < p_free - 15.0,
            "capped {p_capped} vs free {p_free}"
        );
    }

    #[test]
    fn imbalanced_sockets_finish_at_different_times() {
        let cfg = SimConfig::yeti(9);
        let m = Machine::new(cfg);
        let ctx = MaterializeCtx::from_arch(&m.config().arch);
        let w = apps::ep(&ctx).unwrap();
        m.load_imbalanced(&w, &[1.0, 1.2, 0.8, 1.0]).unwrap();
        // Run until socket 2 (the lightest) is done.
        let mut done2_at = None;
        for i in 0..60_000 {
            m.tick();
            let done2 = m.with_socket(SocketId(2), |s| s.done()).unwrap();
            if done2 {
                done2_at = Some(i);
                break;
            }
        }
        let done2_at = done2_at.expect("socket 2 finishes first");
        assert!(
            !m.with_socket(SocketId(1), |s| s.done()).unwrap(),
            "socket 1 carries 20% extra work and must still be running at tick {done2_at}"
        );
        // Wrong factor counts and bad factors are rejected.
        assert!(m.load_imbalanced(&w, &[1.0, 1.0]).is_err());
        assert!(m.load_imbalanced(&w, &[1.0, 0.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn advance_is_bit_identical_to_per_tick_stepping() {
        let units = RaplPowerUnit::skylake_sp();
        let cap = PkgPowerLimit::defaults(Watts(90.0), Seconds(1.0), Watts(100.0), Seconds(0.01))
            .encode(&units)
            .unwrap();
        let run = |fast: bool| -> Vec<(u64, u64, u64)> {
            let m = Machine::new(SimConfig::yeti(5));
            let ctx = MaterializeCtx::from_arch(&m.config().arch);
            // Imbalanced loads make the sockets finish at different times,
            // exercising the done-socket fast path alongside busy ones.
            m.load_imbalanced(&apps::cg(&ctx).unwrap(), &[1.0, 1.1, 0.9, 1.0])
                .unwrap();
            let mut sig = Vec::new();
            for round in 0..600 {
                if round == 40 {
                    m.write(0, MSR_PKG_POWER_LIMIT, cap).unwrap();
                }
                if fast {
                    m.advance(200);
                } else {
                    for _ in 0..200 {
                        m.tick();
                        if m.done() {
                            break;
                        }
                    }
                }
                let s = m.sample(SocketId(1)).unwrap();
                sig.push((
                    m.now().0,
                    s.pkg_energy.value().to_bits(),
                    s.flops.to_bits(),
                ));
                if m.done() {
                    break;
                }
            }
            assert!(m.done(), "workload must finish inside the round budget");
            sig
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn fault_plan_follows_the_simulated_clock() {
        let m = Machine::new(SimConfig::yeti(11));
        // Cap writes on socket 0 (cpus 0-15) fail during ticks [5, 8).
        m.inject_faults(FaultPlan::parse("write,reg=cap,cpu=0-15,window=5+3;sample,at=5").unwrap());
        let write_cap = |m: &Machine| m.write(0, MSR_PKG_POWER_LIMIT, 0x00DD_8000);
        assert!(write_cap(&m).is_ok(), "tick 0: before the window");
        for _ in 0..5 {
            m.tick();
        }
        assert!(write_cap(&m).is_err(), "tick 5: inside the window");
        assert!(m.sample(SocketId(0)).is_err(), "sampler path also faulted");
        assert!(
            m.write(16, MSR_PKG_POWER_LIMIT, 0x00DD_8000).is_ok(),
            "socket 1 unaffected"
        );
        for _ in 0..3 {
            m.tick();
        }
        assert!(write_cap(&m).is_ok(), "tick 8: window over");
        assert!(m.sample(SocketId(0)).is_ok());
        m.inject_faults(FaultPlan::none());
        assert!(write_cap(&m).is_ok());
    }

    #[test]
    fn injector_state_round_trips_through_a_rebuilt_machine() {
        let plan = || FaultPlan::parse("seed=7;write,reg=cap,p=0.5").unwrap();
        let m = Machine::new(SimConfig::deterministic(11));
        assert!(m.injector_snapshot().is_none(), "no plan armed yet");
        m.inject_faults(plan());
        // Burn a few accesses so the RNG and hit counters move.
        for _ in 0..3 {
            let _ = m.write(0, MSR_PKG_POWER_LIMIT, 0x00DD_8000);
        }
        let snap = m.injector_snapshot().expect("armed injector");
        let expected: Vec<bool> = (0..8)
            .map(|_| m.write(0, MSR_PKG_POWER_LIMIT, 0x00DD_8000).is_err())
            .collect();

        let m2 = Machine::new(SimConfig::deterministic(11));
        m2.inject_faults_with_state(plan(), &snap).unwrap();
        let resumed: Vec<bool> = (0..8)
            .map(|_| m2.write(0, MSR_PKG_POWER_LIMIT, 0x00DD_8000).is_err())
            .collect();
        assert_eq!(resumed, expected, "fault stream continues bit-identically");

        assert!(
            m2.inject_faults_with_state(FaultPlan::none(), &snap)
                .is_err(),
            "empty plan cannot carry restored state"
        );
    }

    #[test]
    fn trace_round_trip() {
        let m = machine();
        let ctx = MaterializeCtx::from_arch(&m.config().arch);
        m.load_all(&apps::cg(&ctx).unwrap());
        m.enable_trace(SocketId(0), 10).unwrap();
        for _ in 0..100 {
            m.tick();
        }
        let tr = m.take_trace(SocketId(0)).unwrap().unwrap();
        assert_eq!(tr.points.len(), 10);
        assert!(m.take_trace(SocketId(0)).unwrap().is_none());
    }
}
