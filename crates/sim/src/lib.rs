//! Discrete-time socket simulator.
//!
//! This crate stands in for the paper's hardware testbed (four Intel Xeon
//! Gold 6130 packages on Grid'5000's YETI cluster). It advances an integer
//! microsecond clock in fixed ticks (default 1 ms) and, per socket and
//! tick:
//!
//! 1. derives achievable memory bandwidth from the pinned uncore frequency
//!    and the current cap pressure ([`dufp_model::BandwidthModel`]),
//! 2. picks the highest DVFS ladder frequency whose predicted package power
//!    fits the RAPL enforcer's current allowance (the performance governor
//!    runs flat-out otherwise, exactly like the paper's Intel Pstate
//!    setup),
//! 3. progresses the current workload phase along the roofline
//!    ([`dufp_model::RooflineModel`]),
//! 4. integrates package and DRAM energy and steps the cap enforcer.
//!
//! The simulator is driven *only* through the same interfaces a real node
//! offers: [`dufp_msr::MsrIo`] for actuation (uncore ratio register, RAPL
//! power-limit register) and [`dufp_counters::Telemetry`] for observation.
//! Controllers cannot tell it apart from hardware, which is the point.
//!
//! Determinism: all noise comes from a `ChaCha8` stream seeded from
//! [`SimConfig::seed`]; equal seeds give bit-equal runs.

#![warn(missing_docs)]

pub mod config;
pub mod governor;
pub mod machine;
pub mod shared;
pub mod socket;
pub mod trace;

pub use config::{NoiseConfig, SimConfig};
pub use governor::Governor;
pub use machine::Machine;
pub use shared::{SharedSocketCfg, SharedSocketSim, SharedStep, TenantAccount};
pub use socket::SocketSim;
pub use trace::{Trace, TracePoint};
