//! Per-tick operating-point traces (the data behind the paper's Fig. 5).

use dufp_types::{Hertz, Instant, Watts};
use serde::{Deserialize, Serialize};

/// One sampled operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Simulated time of the sample.
    pub at: Instant,
    /// Core frequency applied by the governor/RAPL.
    pub core_freq: Hertz,
    /// Uncore frequency in effect.
    pub uncore_freq: Hertz,
    /// Instantaneous package power.
    pub pkg_power: Watts,
    /// The RAPL enforcer's instantaneous allowance.
    pub allowance: Watts,
    /// Programmed long-term limit (PL1).
    pub pl1: Watts,
}

/// A recorded trace with a fixed sampling stride.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Sampled points in time order.
    pub points: Vec<TracePoint>,
}

impl Trace {
    /// Time-weighted (uniform-stride) average core frequency — the paper
    /// reports 2.8 GHz for DUF vs 2.5 GHz for DUFP on CG at 10 %.
    pub fn avg_core_freq(&self) -> Option<Hertz> {
        if self.points.is_empty() {
            return None;
        }
        let sum: f64 = self.points.iter().map(|p| p.core_freq.value()).sum();
        Some(Hertz(sum / self.points.len() as f64))
    }

    /// Average package power over the trace.
    pub fn avg_pkg_power(&self) -> Option<Watts> {
        if self.points.is_empty() {
            return None;
        }
        let sum: f64 = self.points.iter().map(|p| p.pkg_power.value()).sum();
        Some(Watts(sum / self.points.len() as f64))
    }

    /// Residency of the programmed PL1 cap: `(cap, fraction of samples)`
    /// sorted by cap. The time-in-state view of the controller's behaviour
    /// (how long did DUFP actually hold each cap level?).
    pub fn cap_residency(&self) -> Vec<(Watts, f64)> {
        residency(self.points.iter().map(|p| p.pl1.value()))
            .into_iter()
            .map(|(v, f)| (Watts(v), f))
            .collect()
    }

    /// Residency of the effective uncore frequency.
    pub fn uncore_residency(&self) -> Vec<(Hertz, f64)> {
        residency(self.points.iter().map(|p| p.uncore_freq.value()))
            .into_iter()
            .map(|(v, f)| (Hertz(v), f))
            .collect()
    }

    /// Residency of the applied core frequency.
    pub fn core_freq_residency(&self) -> Vec<(Hertz, f64)> {
        residency(self.points.iter().map(|p| p.core_freq.value()))
            .into_iter()
            .map(|(v, f)| (Hertz(v), f))
            .collect()
    }

    /// Number of PL1 changes over the trace — the cap actuation count,
    /// which on real hardware is an MSR write each (overhead discussion,
    /// §IV-D).
    pub fn cap_transitions(&self) -> usize {
        transitions(self.points.iter().map(|p| p.pl1.value()))
    }

    /// Number of uncore frequency changes over the trace.
    pub fn uncore_transitions(&self) -> usize {
        transitions(self.points.iter().map(|p| p.uncore_freq.value()))
    }
}

/// Collects `(value, fraction)` residency over a sample stream, keyed by
/// the value rounded to 3 decimals to absorb float noise.
fn residency(values: impl Iterator<Item = f64>) -> Vec<(f64, f64)> {
    let mut counts: std::collections::BTreeMap<i64, (f64, usize)> = Default::default();
    let mut total = 0usize;
    for v in values {
        let key = (v * 1e3).round() as i64;
        let e = counts.entry(key).or_insert((v, 0));
        e.1 += 1;
        total += 1;
    }
    if total == 0 {
        return Vec::new();
    }
    counts
        .into_values()
        .map(|(v, c)| (v, c as f64 / total as f64))
        .collect()
}

fn transitions(values: impl Iterator<Item = f64>) -> usize {
    let mut prev: Option<f64> = None;
    let mut n = 0;
    for v in values {
        if let Some(p) = prev {
            if (p - v).abs() > 1e-9 {
                n += 1;
            }
        }
        prev = Some(v);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(ghz: f64, w: f64) -> TracePoint {
        TracePoint {
            at: Instant(0),
            core_freq: Hertz::from_ghz(ghz),
            uncore_freq: Hertz::from_ghz(2.4),
            pkg_power: Watts(w),
            allowance: Watts(125.0),
            pl1: Watts(125.0),
        }
    }

    #[test]
    fn empty_trace_has_no_averages() {
        let t = Trace::default();
        assert!(t.avg_core_freq().is_none());
        assert!(t.avg_pkg_power().is_none());
    }

    #[test]
    fn averages_are_means() {
        let t = Trace {
            points: vec![pt(2.0, 100.0), pt(3.0, 120.0)],
        };
        assert_eq!(t.avg_core_freq().unwrap(), Hertz::from_ghz(2.5));
        assert_eq!(t.avg_pkg_power().unwrap(), Watts(110.0));
    }

    fn pt_cap(pl1: f64) -> TracePoint {
        TracePoint {
            at: Instant(0),
            core_freq: Hertz::from_ghz(2.8),
            uncore_freq: Hertz::from_ghz(2.4),
            pkg_power: Watts(100.0),
            allowance: Watts(pl1),
            pl1: Watts(pl1),
        }
    }

    #[test]
    fn cap_residency_fractions_sum_to_one() {
        let t = Trace {
            points: vec![pt_cap(125.0), pt_cap(125.0), pt_cap(120.0), pt_cap(115.0)],
        };
        let r = t.cap_residency();
        assert_eq!(r.len(), 3);
        let total: f64 = r.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Sorted ascending; 125 W holds half the time.
        assert_eq!(r[0].0, Watts(115.0));
        assert_eq!(r[2], (Watts(125.0), 0.5));
    }

    #[test]
    fn transition_counting() {
        let t = Trace {
            points: vec![
                pt_cap(125.0),
                pt_cap(120.0),
                pt_cap(120.0),
                pt_cap(125.0),
                pt_cap(125.0),
            ],
        };
        assert_eq!(t.cap_transitions(), 2);
        assert_eq!(t.uncore_transitions(), 0);
    }

    #[test]
    fn empty_trace_has_empty_residency() {
        let t = Trace::default();
        assert!(t.cap_residency().is_empty());
        assert_eq!(t.cap_transitions(), 0);
    }
}
