//! CPU frequency governor models.
//!
//! The paper's platform "runs under Intel Pstate with performance
//! governor" (§IV-A) — the governor requests the maximum and RAPL throttles
//! below it when a cap binds. §V-G asks whether CPU frequency is "properly
//! managed under power capping"; modeling alternative governors makes that
//! question experimentally accessible:
//!
//! * [`Governor::Performance`] — always request the maximum (the paper's
//!   setup, and the default),
//! * [`Governor::Powersave`] — a schedutil-flavoured policy: request a
//!   frequency proportional to the phase's compute share (memory-stalled
//!   cores don't need clocks), plus a configurable headroom bias,
//! * [`Governor::Fixed`] — pin the request (userspace governor).

use dufp_types::Hertz;
use serde::{Deserialize, Serialize};

/// The frequency-request policy of the simulated OS driver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Governor {
    /// Always request the maximum (intel_pstate + performance).
    #[default]
    Performance,
    /// Request tracks the workload's compute share with a headroom bias in
    /// `[0, 1]` (0 = exactly the compute share, 1 = always maximum).
    Powersave {
        /// Fraction of the remaining range added on top of the estimate.
        bias: f64,
    },
    /// Userspace-pinned request.
    Fixed(Hertz),
}

impl Governor {
    /// The frequency this governor requests, before RAPL and `IA32_PERF_CTL`
    /// clamp it.
    ///
    /// `compute_share` is the fraction of the phase's critical path spent
    /// compute-bound (`T_c / max(T_c, T_m)` capped at 1), the signal a
    /// schedutil-style governor derives from stall counters.
    pub fn request(&self, min: Hertz, max: Hertz, compute_share: f64) -> Hertz {
        match *self {
            Governor::Performance => max,
            Governor::Powersave { bias } => {
                let share = compute_share.clamp(0.0, 1.0);
                let bias = bias.clamp(0.0, 1.0);
                let eff = share + (1.0 - share) * bias;
                Hertz(min.value() + (max.value() - min.value()) * eff)
            }
            Governor::Fixed(f) => Hertz(f.value().clamp(min.value(), max.value())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const MIN: Hertz = Hertz(1.0e9);
    const MAX: Hertz = Hertz(2.8e9);

    #[test]
    fn performance_always_requests_max() {
        for share in [0.0, 0.3, 1.0] {
            assert_eq!(Governor::Performance.request(MIN, MAX, share), MAX);
        }
    }

    #[test]
    fn powersave_tracks_compute_share() {
        let g = Governor::Powersave { bias: 0.0 };
        assert_eq!(g.request(MIN, MAX, 0.0), MIN);
        assert_eq!(g.request(MIN, MAX, 1.0), MAX);
        let mid = g.request(MIN, MAX, 0.5);
        assert!((mid.value() - 1.9e9).abs() < 1e-3);
    }

    #[test]
    fn bias_lifts_the_request() {
        let share = 0.4;
        let lazy = Governor::Powersave { bias: 0.0 }.request(MIN, MAX, share);
        let eager = Governor::Powersave { bias: 0.5 }.request(MIN, MAX, share);
        assert!(eager > lazy);
        assert_eq!(
            Governor::Powersave { bias: 1.0 }.request(MIN, MAX, share),
            MAX
        );
    }

    #[test]
    fn fixed_clamps_to_the_ladder() {
        assert_eq!(Governor::Fixed(Hertz(5.0e9)).request(MIN, MAX, 1.0), MAX);
        assert_eq!(Governor::Fixed(Hertz(0.1e9)).request(MIN, MAX, 1.0), MIN);
        assert_eq!(
            Governor::Fixed(Hertz(2.0e9)).request(MIN, MAX, 0.0),
            Hertz(2.0e9)
        );
    }

    proptest! {
        #[test]
        fn requests_always_inside_the_range(share in -1.0f64..2.0, bias in -1.0f64..2.0) {
            for g in [
                Governor::Performance,
                Governor::Powersave { bias },
                Governor::Fixed(Hertz(2.0e9)),
            ] {
                let f = g.request(MIN, MAX, share);
                prop_assert!(f >= MIN && f <= MAX, "{g:?} -> {f:?}");
            }
        }

        #[test]
        fn powersave_monotone_in_share(a in 0.0f64..1.0, b in 0.0f64..1.0) {
            let g = Governor::Powersave { bias: 0.2 };
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(g.request(MIN, MAX, lo) <= g.request(MIN, MAX, hi));
        }
    }
}
