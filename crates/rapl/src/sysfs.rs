//! The powercap sysfs backend (`/sys/class/powercap/intel-rapl:*`).
//!
//! This is the access path of the powercap library the paper uses. The
//! kernel exposes, per package `intel-rapl:<n>`:
//!
//! ```text
//! energy_uj                      cumulative energy, microjoules
//! constraint_0_name              "long_term"
//! constraint_0_power_limit_uw    PL1 in microwatts
//! constraint_1_name              "short_term"
//! constraint_1_power_limit_uw    PL2 in microwatts
//! intel-rapl:<n>:0/              the DRAM subzone (name = "dram")
//! ```
//!
//! The root directory is relocatable so tests can operate on a fixture
//! tree; [`SysfsRapl::create_fixture`] builds one.

use crate::capper::{Constraint, PowerCapper};
use dufp_types::{Error, Joules, Result, SocketId, Watts};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Wrap window of the kernel's `energy_uj` file: the kernel itself widens
/// the 32-bit hardware counter, but still wraps at `max_energy_range_uj`.
const DEFAULT_MAX_ENERGY_RANGE_UJ: u64 = 262_143_328_850;

/// RAPL capping via the powercap sysfs tree.
#[derive(Debug)]
pub struct SysfsRapl {
    root: PathBuf,
    sockets: usize,
    defaults: Vec<(Watts, Watts)>,
    energy_state: Mutex<HashMap<(SocketId, bool), (u64, f64)>>,
    max_energy_range_uj: u64,
}

impl SysfsRapl {
    /// Opens the standard location.
    pub fn open() -> Result<Self> {
        Self::open_at("/sys/class/powercap")
    }

    /// Opens a relocated powercap tree (fixtures, containers).
    pub fn open_at(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        let mut sockets = 0;
        while root.join(format!("intel-rapl:{sockets}")).is_dir() {
            sockets += 1;
        }
        if sockets == 0 {
            return Err(Error::Unsupported(
                "no intel-rapl zones found (powercap not available)",
            ));
        }
        let mut defaults = Vec::with_capacity(sockets);
        for s in 0..sockets {
            let id = SocketId(s as u16);
            let pl1 = read_uw(&zone_path(&root, id, false).join("constraint_0_power_limit_uw"))?;
            let pl2 = read_uw(&zone_path(&root, id, false).join("constraint_1_power_limit_uw"))?;
            defaults.push((pl1, pl2));
        }
        Ok(SysfsRapl {
            root,
            sockets,
            defaults,
            energy_state: Mutex::new(HashMap::new()),
            max_energy_range_uj: DEFAULT_MAX_ENERGY_RANGE_UJ,
        })
    }

    /// Number of package zones found.
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// Builds a fixture tree with `sockets` packages at `root`, each with
    /// the given default limits, a DRAM subzone and zeroed energy counters.
    pub fn create_fixture(
        root: &Path,
        sockets: usize,
        pl1: Watts,
        pl2: Watts,
    ) -> std::io::Result<()> {
        for s in 0..sockets {
            let pkg = root.join(format!("intel-rapl:{s}"));
            let dram = pkg.join(format!("intel-rapl:{s}:0"));
            std::fs::create_dir_all(&dram)?;
            std::fs::write(pkg.join("name"), format!("package-{s}\n"))?;
            std::fs::write(pkg.join("energy_uj"), "0\n")?;
            std::fs::write(
                pkg.join("max_energy_range_uj"),
                format!("{DEFAULT_MAX_ENERGY_RANGE_UJ}\n"),
            )?;
            std::fs::write(pkg.join("constraint_0_name"), "long_term\n")?;
            std::fs::write(
                pkg.join("constraint_0_power_limit_uw"),
                format!("{}\n", (pl1.value() * 1e6) as u64),
            )?;
            std::fs::write(pkg.join("constraint_1_name"), "short_term\n")?;
            std::fs::write(
                pkg.join("constraint_1_power_limit_uw"),
                format!("{}\n", (pl2.value() * 1e6) as u64),
            )?;
            std::fs::write(dram.join("name"), "dram\n")?;
            std::fs::write(dram.join("energy_uj"), "0\n")?;
        }
        Ok(())
    }

    fn energy_of(&self, socket: SocketId, dram: bool) -> Result<Joules> {
        if socket.as_usize() >= self.sockets {
            return Err(Error::NoSuchComponent(socket.to_string()));
        }
        let path = zone_path(&self.root, socket, dram).join("energy_uj");
        let raw: u64 = std::fs::read_to_string(&path)?
            .trim()
            .parse()
            .map_err(|e| Error::invalid("energy_uj", format!("{e}")))?;
        let mut state = self.energy_state.lock();
        let entry = state.entry((socket, dram)).or_insert((raw, 0.0));
        let delta_uj = if raw >= entry.0 {
            raw - entry.0
        } else {
            raw + self.max_energy_range_uj - entry.0
        };
        entry.1 += delta_uj as f64 * 1e-6;
        entry.0 = raw;
        Ok(Joules(entry.1))
    }

    fn constraint_file(&self, socket: SocketId, which: Constraint) -> Result<PathBuf> {
        if socket.as_usize() >= self.sockets {
            return Err(Error::NoSuchComponent(socket.to_string()));
        }
        let idx = match which {
            Constraint::LongTerm => 0,
            Constraint::ShortTerm => 1,
        };
        Ok(zone_path(&self.root, socket, false).join(format!("constraint_{idx}_power_limit_uw")))
    }
}

fn zone_path(root: &Path, socket: SocketId, dram: bool) -> PathBuf {
    let s = socket.0;
    if dram {
        root.join(format!("intel-rapl:{s}"))
            .join(format!("intel-rapl:{s}:0"))
    } else {
        root.join(format!("intel-rapl:{s}"))
    }
}

fn read_uw(path: &Path) -> Result<Watts> {
    let raw: u64 = std::fs::read_to_string(path)?
        .trim()
        .parse()
        .map_err(|e| Error::invalid("power_limit_uw", format!("{e}")))?;
    Ok(Watts(raw as f64 * 1e-6))
}

impl PowerCapper for SysfsRapl {
    fn set_limit(&self, socket: SocketId, which: Constraint, limit: Watts) -> Result<()> {
        if !limit.is_finite() || limit.value() < 0.0 {
            return Err(Error::invalid("power limit", format!("{limit:?}")));
        }
        let path = self.constraint_file(socket, which)?;
        std::fs::write(&path, format!("{}\n", (limit.value() * 1e6) as u64))?;
        Ok(())
    }

    fn limit(&self, socket: SocketId, which: Constraint) -> Result<Watts> {
        read_uw(&self.constraint_file(socket, which)?)
    }

    fn defaults(&self, socket: SocketId) -> Result<(Watts, Watts)> {
        self.defaults
            .get(socket.as_usize())
            .copied()
            .ok_or_else(|| Error::NoSuchComponent(socket.to_string()))
    }

    fn package_energy(&self, socket: SocketId) -> Result<Joules> {
        self.energy_of(socket, false)
    }

    fn dram_energy(&self, socket: SocketId) -> Result<Joules> {
        self.energy_of(socket, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (PathBuf, SysfsRapl) {
        let dir = std::env::temp_dir().join(format!(
            "dufp-powercap-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        SysfsRapl::create_fixture(&dir, 2, Watts(125.0), Watts(150.0)).unwrap();
        let r = SysfsRapl::open_at(&dir).unwrap();
        (dir, r)
    }

    #[test]
    fn discovers_zones_and_defaults() {
        let (dir, r) = fixture();
        assert_eq!(r.sockets(), 2);
        assert_eq!(
            r.defaults(SocketId(0)).unwrap(),
            (Watts(125.0), Watts(150.0))
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn missing_tree_is_unsupported() {
        let err = SysfsRapl::open_at("/nonexistent-powercap").unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)));
    }

    #[test]
    fn limits_round_trip_through_files() {
        let (dir, r) = fixture();
        r.set_both(SocketId(1), Watts(85.0)).unwrap();
        assert_eq!(
            r.limit(SocketId(1), Constraint::LongTerm).unwrap(),
            Watts(85.0)
        );
        assert_eq!(
            r.limit(SocketId(1), Constraint::ShortTerm).unwrap(),
            Watts(85.0)
        );
        // The file itself holds microwatts.
        let raw =
            std::fs::read_to_string(dir.join("intel-rapl:1").join("constraint_0_power_limit_uw"))
                .unwrap();
        assert_eq!(raw.trim(), "85000000");
        r.reset(SocketId(1)).unwrap();
        assert_eq!(
            r.limit(SocketId(1), Constraint::LongTerm).unwrap(),
            Watts(125.0)
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn energy_accumulates_across_kernel_wrap() {
        let (dir, r) = fixture();
        let e_file = dir.join("intel-rapl:0").join("energy_uj");
        std::fs::write(&e_file, format!("{}\n", DEFAULT_MAX_ENERGY_RANGE_UJ - 50)).unwrap();
        let _ = r.package_energy(SocketId(0)).unwrap(); // prime near wrap
        std::fs::write(&e_file, "150\n").unwrap();
        let e = r.package_energy(SocketId(0)).unwrap();
        assert!((e.value() - 200e-6).abs() < 1e-9, "{e:?}");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn dram_subzone_is_separate() {
        let (dir, r) = fixture();
        std::fs::write(
            dir.join("intel-rapl:0")
                .join("intel-rapl:0:0")
                .join("energy_uj"),
            "1000000\n",
        )
        .unwrap();
        let _ = r.dram_energy(SocketId(0)).unwrap();
        std::fs::write(
            dir.join("intel-rapl:0")
                .join("intel-rapl:0:0")
                .join("energy_uj"),
            "3000000\n",
        )
        .unwrap();
        let e = r.dram_energy(SocketId(0)).unwrap();
        assert!((e.value() - 2.0).abs() < 1e-9);
        // Package counter unaffected.
        let p = r.package_energy(SocketId(0)).unwrap();
        assert_eq!(p, Joules(0.0));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn invalid_limit_rejected() {
        let (dir, r) = fixture();
        assert!(r
            .set_limit(SocketId(0), Constraint::LongTerm, Watts(-5.0))
            .is_err());
        assert!(r
            .set_limit(SocketId(0), Constraint::LongTerm, Watts(f64::NAN))
            .is_err());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn unknown_socket_errors() {
        let (dir, r) = fixture();
        assert!(r.limit(SocketId(7), Constraint::LongTerm).is_err());
        assert!(r.package_energy(SocketId(7)).is_err());
        std::fs::remove_dir_all(dir).unwrap();
    }
}
