//! The power-capping backend abstraction.

use dufp_types::{Joules, Result, SocketId, Watts};

/// Which RAPL constraint a limit applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Constraint {
    /// `constraint_0`, "long_term" — PL1, defaults to TDP.
    LongTerm,
    /// `constraint_1`, "short_term" — PL2.
    ShortTerm,
}

/// Package-level power capping and energy measurement.
///
/// Implementations must be thread-safe; DUFP drives one socket per thread.
pub trait PowerCapper: Send + Sync {
    /// Sets one constraint's power limit.
    fn set_limit(&self, socket: SocketId, which: Constraint, limit: Watts) -> Result<()>;

    /// Reads one constraint's power limit.
    fn limit(&self, socket: SocketId, which: Constraint) -> Result<Watts>;

    /// Sets both constraints at once (DUFP's cap *decrease* writes the same
    /// value to both, §III).
    fn set_both(&self, socket: SocketId, limit: Watts) -> Result<()> {
        self.set_limit(socket, Constraint::LongTerm, limit)?;
        self.set_limit(socket, Constraint::ShortTerm, limit)
    }

    /// The platform-default limits `(long_term, short_term)`.
    fn defaults(&self, socket: SocketId) -> Result<(Watts, Watts)>;

    /// Restores both constraints to their defaults (DUFP's cap *reset*).
    fn reset(&self, socket: SocketId) -> Result<()> {
        let (pl1, pl2) = self.defaults(socket)?;
        self.set_limit(socket, Constraint::LongTerm, pl1)?;
        self.set_limit(socket, Constraint::ShortTerm, pl2)
    }

    /// Monotonic, wrap-corrected package energy since the handle was
    /// created.
    fn package_energy(&self, socket: SocketId) -> Result<Joules>;

    /// Monotonic, wrap-corrected DRAM energy since the handle was created.
    fn dram_energy(&self, socket: SocketId) -> Result<Joules>;
}

impl<T: PowerCapper + ?Sized> PowerCapper for std::sync::Arc<T> {
    fn set_limit(&self, socket: SocketId, which: Constraint, limit: Watts) -> Result<()> {
        (**self).set_limit(socket, which, limit)
    }
    fn limit(&self, socket: SocketId, which: Constraint) -> Result<Watts> {
        (**self).limit(socket, which)
    }
    fn defaults(&self, socket: SocketId) -> Result<(Watts, Watts)> {
        (**self).defaults(socket)
    }
    fn package_energy(&self, socket: SocketId) -> Result<Joules> {
        (**self).package_energy(socket)
    }
    fn dram_energy(&self, socket: SocketId) -> Result<Joules> {
        (**self).dram_energy(socket)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dufp_types::Error;
    use parking_lot::Mutex;
    use std::collections::HashMap;

    /// Minimal in-memory capper to exercise the trait's default methods.
    struct MemCapper {
        limits: Mutex<HashMap<(SocketId, Constraint), Watts>>,
    }

    impl PowerCapper for MemCapper {
        fn set_limit(&self, s: SocketId, w: Constraint, l: Watts) -> Result<()> {
            self.limits.lock().insert((s, w), l);
            Ok(())
        }
        fn limit(&self, s: SocketId, w: Constraint) -> Result<Watts> {
            self.limits
                .lock()
                .get(&(s, w))
                .copied()
                .ok_or_else(|| Error::Precondition("unset".into()))
        }
        fn defaults(&self, _: SocketId) -> Result<(Watts, Watts)> {
            Ok((Watts(125.0), Watts(150.0)))
        }
        fn package_energy(&self, _: SocketId) -> Result<Joules> {
            Ok(Joules(0.0))
        }
        fn dram_energy(&self, _: SocketId) -> Result<Joules> {
            Ok(Joules(0.0))
        }
    }

    #[test]
    fn set_both_writes_both_constraints() {
        let c = MemCapper {
            limits: Mutex::new(HashMap::new()),
        };
        c.set_both(SocketId(0), Watts(90.0)).unwrap();
        assert_eq!(
            c.limit(SocketId(0), Constraint::LongTerm).unwrap(),
            Watts(90.0)
        );
        assert_eq!(
            c.limit(SocketId(0), Constraint::ShortTerm).unwrap(),
            Watts(90.0)
        );
    }

    #[test]
    fn reset_restores_defaults() {
        let c = MemCapper {
            limits: Mutex::new(HashMap::new()),
        };
        c.set_both(SocketId(1), Watts(70.0)).unwrap();
        c.reset(SocketId(1)).unwrap();
        assert_eq!(
            c.limit(SocketId(1), Constraint::LongTerm).unwrap(),
            Watts(125.0)
        );
        assert_eq!(
            c.limit(SocketId(1), Constraint::ShortTerm).unwrap(),
            Watts(150.0)
        );
    }
}
