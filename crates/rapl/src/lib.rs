//! RAPL power-capping access, in the object model of the `powercap`
//! library the paper uses (§IV-C: "power capping is performed by using the
//! power cap library").
//!
//! The powercap sysfs tree exposes, per package zone, an energy counter and
//! two constraints — `constraint_0` ("long_term", PL1) and `constraint_1`
//! ("short_term", PL2) — each with a power limit and a time window. This
//! crate reproduces that model over two backends:
//!
//! * [`msr::MsrRapl`] — direct `MSR_PKG_POWER_LIMIT` access through any
//!   [`dufp_msr::MsrIo`] (the simulator or `/dev/cpu/N/msr`),
//! * [`sysfs::SysfsRapl`] — the `/sys/class/powercap/intel-rapl:*` file
//!   tree (with a relocatable root so tests can run against fixtures).
//!
//! Energy counters are wrap-corrected: the 32-bit hardware accumulator
//! wraps every ≈35 minutes at 125 W, well within one application run.

#![warn(missing_docs)]

pub mod capper;
pub mod faulty;
pub mod msr;
pub mod sysfs;

pub use capper::{Constraint, PowerCapper};
pub use faulty::FaultyCapper;
pub use msr::MsrRapl;
pub use sysfs::SysfsRapl;
