//! A fault-injecting [`PowerCapper`] decorator for chaos tests.
//!
//! Wraps any capper and consults a [`FaultInjector`] before every
//! operation, mapping the capper API onto the MSR-level fault vocabulary
//! so one [`FaultPlan`](dufp_msr::FaultPlan) can drive both the raw MSR
//! fakes and a capper-level fake: limit writes count as writes of
//! `MSR_PKG_POWER_LIMIT`, energy reads as reads of the energy-status
//! registers, all attributed to the socket's lead CPU.

use crate::capper::{Constraint, PowerCapper};
use dufp_msr::registers::{MSR_DRAM_ENERGY_STATUS, MSR_PKG_ENERGY_STATUS, MSR_PKG_POWER_LIMIT};
use dufp_msr::{FaultInjector, FaultOp, FaultPlan};
use dufp_types::{Joules, Result, SocketId, Watts};
use std::sync::Arc;

/// [`PowerCapper`] decorator that injects faults from a plan.
pub struct FaultyCapper<C> {
    inner: C,
    injector: Arc<FaultInjector>,
    cpus_per_socket: usize,
}

impl<C: PowerCapper> FaultyCapper<C> {
    /// Wraps `inner`. `cpus_per_socket` maps a socket id to its lead CPU
    /// so `cpu=A-B` rules scope capper faults exactly like MSR faults.
    pub fn new(inner: C, plan: FaultPlan, cpus_per_socket: usize) -> Self {
        FaultyCapper {
            inner,
            injector: Arc::new(FaultInjector::new(plan)),
            cpus_per_socket: cpus_per_socket.max(1),
        }
    }

    /// The wrapped capper.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    fn check(&self, op: FaultOp, socket: SocketId, register: u32) -> Result<()> {
        self.injector
            .check_msr(op, socket.as_usize() * self.cpus_per_socket, register)
    }
}

impl<C: PowerCapper> PowerCapper for FaultyCapper<C> {
    fn set_limit(&self, socket: SocketId, which: Constraint, limit: Watts) -> Result<()> {
        self.check(FaultOp::Write, socket, MSR_PKG_POWER_LIMIT)?;
        self.inner.set_limit(socket, which, limit)
    }

    fn limit(&self, socket: SocketId, which: Constraint) -> Result<Watts> {
        self.check(FaultOp::Read, socket, MSR_PKG_POWER_LIMIT)?;
        self.inner.limit(socket, which)
    }

    fn defaults(&self, socket: SocketId) -> Result<(Watts, Watts)> {
        self.inner.defaults(socket)
    }

    fn package_energy(&self, socket: SocketId) -> Result<Joules> {
        self.check(FaultOp::Read, socket, MSR_PKG_ENERGY_STATUS)?;
        self.inner.package_energy(socket)
    }

    fn dram_energy(&self, socket: SocketId) -> Result<Joules> {
        self.check(FaultOp::Read, socket, MSR_DRAM_ENERGY_STATUS)?;
        self.inner.dram_energy(socket)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msr::MsrRapl;
    use dufp_msr::registers::{PkgPowerLimit, RaplPowerUnit, SKYLAKE_SP_POWER_UNIT_RAW};
    use dufp_msr::{registers::MSR_RAPL_POWER_UNIT, FakeMsr};
    use dufp_types::Seconds;

    fn rig(plan: &str) -> FaultyCapper<MsrRapl<Arc<FakeMsr>>> {
        let msr = Arc::new(FakeMsr::new(32));
        msr.seed(MSR_RAPL_POWER_UNIT, SKYLAKE_SP_POWER_UNIT_RAW);
        let units = RaplPowerUnit::skylake_sp();
        let reg = PkgPowerLimit::defaults(Watts(125.0), Seconds(1.0), Watts(150.0), Seconds(0.01));
        msr.seed(MSR_PKG_POWER_LIMIT, reg.encode(&units).unwrap());
        let capper = MsrRapl::new(Arc::clone(&msr), 2, 16).unwrap();
        FaultyCapper::new(capper, FaultPlan::parse(plan).unwrap(), 16)
    }

    #[test]
    fn scoped_write_faults_hit_only_the_target_socket() {
        let c = rig("write,reg=cap,cpu=16-31");
        assert!(c
            .set_limit(SocketId(1), Constraint::LongTerm, Watts(90.0))
            .is_err());
        assert!(c
            .set_limit(SocketId(0), Constraint::LongTerm, Watts(90.0))
            .is_ok());
        assert!(
            c.limit(SocketId(1), Constraint::LongTerm).is_ok(),
            "reads pass"
        );
    }

    #[test]
    fn energy_read_faults_are_separate_from_cap_faults() {
        let c = rig("read,reg=energy");
        assert!(c.package_energy(SocketId(0)).is_err());
        assert!(c.dram_energy(SocketId(0)).is_ok());
        assert!(c.limit(SocketId(0), Constraint::LongTerm).is_ok());
    }

    #[test]
    fn default_reset_path_goes_through_checked_writes() {
        let c = rig("write,reg=cap,window=0+100");
        assert!(
            c.reset(SocketId(0)).is_err(),
            "reset uses set_limit, which faults"
        );
    }
}
