//! MSR-backed RAPL capping.

use crate::capper::{Constraint, PowerCapper};
use dufp_msr::registers::{
    PkgPowerLimit, RaplPowerUnit, MSR_DRAM_ENERGY_STATUS, MSR_PKG_ENERGY_STATUS,
    MSR_PKG_POWER_INFO, MSR_PKG_POWER_LIMIT, MSR_RAPL_POWER_UNIT,
};
use dufp_msr::MsrIo;
use dufp_types::{Joules, Result, Seconds, SocketId, Watts};
use parking_lot::Mutex;

/// Per-socket wrap-correction state for one energy counter.
#[derive(Debug, Clone, Copy, Default)]
struct EnergyTrack {
    last_raw: u64,
    accumulated: f64,
    primed: bool,
}

impl EnergyTrack {
    fn update(&mut self, raw: u64, unit: f64) -> Joules {
        if self.primed {
            let delta = if raw >= self.last_raw {
                raw - self.last_raw
            } else {
                raw + (1u64 << 32) - self.last_raw
            };
            self.accumulated += delta as f64 * unit;
        }
        self.last_raw = raw;
        self.primed = true;
        Joules(self.accumulated)
    }
}

/// RAPL capping through `MSR_PKG_POWER_LIMIT` on any [`MsrIo`] backend.
///
/// Reads the unit register once, tracks 32-bit energy counter wraps, and
/// preserves enable/clamp bits and time windows across limit writes —
/// exactly what the powercap library does via sysfs.
pub struct MsrRapl<M: MsrIo> {
    msr: M,
    cores_per_socket: usize,
    units: RaplPowerUnit,
    defaults: Vec<(Watts, Watts)>,
    pkg_track: Vec<Mutex<EnergyTrack>>,
    dram_track: Vec<Mutex<EnergyTrack>>,
}

impl<M: MsrIo> MsrRapl<M> {
    /// Opens the RAPL surface of `msr`, reading units and recording the
    /// boot-time limits as the defaults to reset to.
    pub fn new(msr: M, sockets: usize, cores_per_socket: usize) -> Result<Self> {
        let units = RaplPowerUnit::decode(msr.read(0, MSR_RAPL_POWER_UNIT)?);
        let mut defaults = Vec::with_capacity(sockets);
        for s in 0..sockets {
            let cpu = s * cores_per_socket;
            let raw = msr.read(cpu, MSR_PKG_POWER_LIMIT)?;
            let reg = PkgPowerLimit::decode(raw, &units);
            defaults.push((reg.pl1.power, reg.pl2.power));
        }
        Ok(MsrRapl {
            msr,
            cores_per_socket,
            units,
            defaults,
            pkg_track: (0..sockets)
                .map(|_| Mutex::new(EnergyTrack::default()))
                .collect(),
            dram_track: (0..sockets)
                .map(|_| Mutex::new(EnergyTrack::default()))
                .collect(),
        })
    }

    /// The decoded unit scaling factors.
    pub fn units(&self) -> RaplPowerUnit {
        self.units
    }

    /// TDP as reported by `MSR_PKG_POWER_INFO`.
    pub fn tdp(&self, socket: SocketId) -> Result<Watts> {
        let raw = self.msr.read(self.lead_cpu(socket), MSR_PKG_POWER_INFO)?;
        Ok(Watts((raw & 0x7FFF) as f64 * self.units.power_unit.value()))
    }

    fn lead_cpu(&self, socket: SocketId) -> usize {
        socket.as_usize() * self.cores_per_socket
    }

    fn read_reg(&self, socket: SocketId) -> Result<PkgPowerLimit> {
        let raw = self.msr.read(self.lead_cpu(socket), MSR_PKG_POWER_LIMIT)?;
        Ok(PkgPowerLimit::decode(raw, &self.units))
    }

    fn write_reg(&self, socket: SocketId, reg: &PkgPowerLimit) -> Result<()> {
        let raw = reg.encode(&self.units)?;
        self.msr
            .write(self.lead_cpu(socket), MSR_PKG_POWER_LIMIT, raw)
    }
}

impl<M: MsrIo> PowerCapper for MsrRapl<M> {
    fn set_limit(&self, socket: SocketId, which: Constraint, limit: Watts) -> Result<()> {
        let mut reg = self.read_reg(socket)?;
        let slot = match which {
            Constraint::LongTerm => &mut reg.pl1,
            Constraint::ShortTerm => &mut reg.pl2,
        };
        slot.power = limit;
        slot.enabled = true;
        if slot.window.value() <= 0.0 {
            slot.window = Seconds(0.01);
        }
        self.write_reg(socket, &reg)
    }

    fn limit(&self, socket: SocketId, which: Constraint) -> Result<Watts> {
        let reg = self.read_reg(socket)?;
        Ok(match which {
            Constraint::LongTerm => reg.pl1.power,
            Constraint::ShortTerm => reg.pl2.power,
        })
    }

    fn defaults(&self, socket: SocketId) -> Result<(Watts, Watts)> {
        self.defaults
            .get(socket.as_usize())
            .copied()
            .ok_or_else(|| dufp_types::Error::NoSuchComponent(socket.to_string()))
    }

    fn package_energy(&self, socket: SocketId) -> Result<Joules> {
        let raw = self
            .msr
            .read(self.lead_cpu(socket), MSR_PKG_ENERGY_STATUS)?;
        let track = self
            .pkg_track
            .get(socket.as_usize())
            .ok_or_else(|| dufp_types::Error::NoSuchComponent(socket.to_string()))?;
        Ok(track
            .lock()
            .update(raw & 0xFFFF_FFFF, self.units.energy_unit))
    }

    fn dram_energy(&self, socket: SocketId) -> Result<Joules> {
        let raw = self
            .msr
            .read(self.lead_cpu(socket), MSR_DRAM_ENERGY_STATUS)?;
        let track = self
            .dram_track
            .get(socket.as_usize())
            .ok_or_else(|| dufp_types::Error::NoSuchComponent(socket.to_string()))?;
        Ok(track
            .lock()
            .update(raw & 0xFFFF_FFFF, self.units.energy_unit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dufp_msr::registers::SKYLAKE_SP_POWER_UNIT_RAW;
    use dufp_msr::FakeMsr;

    fn fake() -> FakeMsr {
        let m = FakeMsr::new(32); // 2 sockets × 16 cores
        m.seed(MSR_RAPL_POWER_UNIT, SKYLAKE_SP_POWER_UNIT_RAW);
        let units = RaplPowerUnit::skylake_sp();
        let reg = PkgPowerLimit::defaults(Watts(125.0), Seconds(1.0), Watts(150.0), Seconds(0.01));
        m.seed(MSR_PKG_POWER_LIMIT, reg.encode(&units).unwrap());
        m.seed(MSR_PKG_POWER_INFO, 1000);
        m
    }

    #[test]
    fn captures_boot_defaults() {
        let r = MsrRapl::new(fake(), 2, 16).unwrap();
        assert_eq!(
            r.defaults(SocketId(0)).unwrap(),
            (Watts(125.0), Watts(150.0))
        );
        assert_eq!(r.tdp(SocketId(1)).unwrap(), Watts(125.0));
    }

    #[test]
    fn set_limit_touches_only_selected_constraint() {
        let r = MsrRapl::new(fake(), 2, 16).unwrap();
        r.set_limit(SocketId(0), Constraint::LongTerm, Watts(100.0))
            .unwrap();
        assert_eq!(
            r.limit(SocketId(0), Constraint::LongTerm).unwrap(),
            Watts(100.0)
        );
        assert_eq!(
            r.limit(SocketId(0), Constraint::ShortTerm).unwrap(),
            Watts(150.0)
        );
        // Other socket untouched.
        assert_eq!(
            r.limit(SocketId(1), Constraint::LongTerm).unwrap(),
            Watts(125.0)
        );
    }

    #[test]
    fn set_both_then_reset_round_trips() {
        let r = MsrRapl::new(fake(), 2, 16).unwrap();
        r.set_both(SocketId(1), Watts(80.0)).unwrap();
        assert_eq!(
            r.limit(SocketId(1), Constraint::LongTerm).unwrap(),
            Watts(80.0)
        );
        assert_eq!(
            r.limit(SocketId(1), Constraint::ShortTerm).unwrap(),
            Watts(80.0)
        );
        r.reset(SocketId(1)).unwrap();
        assert_eq!(
            r.limit(SocketId(1), Constraint::LongTerm).unwrap(),
            Watts(125.0)
        );
        assert_eq!(
            r.limit(SocketId(1), Constraint::ShortTerm).unwrap(),
            Watts(150.0)
        );
    }

    #[test]
    fn energy_accumulates_and_survives_wrap() {
        let m = fake();
        let unit = RaplPowerUnit::skylake_sp().energy_unit;
        let near_wrap = (1u64 << 32) - 100;
        m.seed(MSR_PKG_ENERGY_STATUS, near_wrap);
        let r = MsrRapl::new(m, 2, 16).unwrap();
        let e0 = r.package_energy(SocketId(0)).unwrap();
        assert_eq!(e0, Joules(0.0), "first read primes");
        // Advance past the wrap: raw counter is now small again.
        r.msr.seed_cpu(0, MSR_PKG_ENERGY_STATUS, 400);
        let e1 = r.package_energy(SocketId(0)).unwrap();
        let expect = 500.0 * unit;
        assert!((e1.value() - expect).abs() < 1e-9, "{e1:?} vs {expect}");
    }

    #[test]
    fn double_wrap_across_a_long_gap_accumulates_both_wraps() {
        // The 32-bit counter wraps twice over a long run; as long as each
        // wrap is straddled by at least one read (at ~250 W a full lap of
        // the counter takes ≈ 260 s against a 200 ms sampling interval),
        // both laps land in the accumulator.
        let m = fake();
        let unit = RaplPowerUnit::skylake_sp().energy_unit;
        let near_wrap = (1u64 << 32) - 100;
        m.seed(MSR_PKG_ENERGY_STATUS, near_wrap);
        let r = MsrRapl::new(m, 2, 16).unwrap();
        assert_eq!(r.package_energy(SocketId(0)).unwrap(), Joules(0.0));

        // First wrap: 100 units up to the wrap, 400 past it.
        r.msr.seed_cpu(0, MSR_PKG_ENERGY_STATUS, 400);
        let e1 = r.package_energy(SocketId(0)).unwrap();
        // Long quiet stretch climbing back toward the wrap point...
        r.msr.seed_cpu(0, MSR_PKG_ENERGY_STATUS, near_wrap);
        let e2 = r.package_energy(SocketId(0)).unwrap();
        // ...then the second wrap: another 100 up to it, 300 past it.
        r.msr.seed_cpu(0, MSR_PKG_ENERGY_STATUS, 300);
        let e3 = r.package_energy(SocketId(0)).unwrap();

        let expect1 = 500.0 * unit;
        let expect2 = (near_wrap - 400) as f64 * unit + expect1;
        let expect3 = 400.0 * unit + expect2;
        assert!((e1.value() - expect1).abs() < 1e-9, "{e1:?} vs {expect1}");
        assert!((e2.value() - expect2).abs() < 1e-6, "{e2:?} vs {expect2}");
        assert!((e3.value() - expect3).abs() < 1e-6, "{e3:?} vs {expect3}");
        // Monotone despite the raw counter going backwards twice.
        assert!(e3 > e2 && e2 > e1);
    }

    #[test]
    fn wrap_state_is_tracked_per_counter_and_per_socket() {
        // A wrap on socket 0's package counter must not leak phantom
        // energy into its DRAM counter or into socket 1: each counter
        // carries its own EnergyTrack.
        let m = fake();
        let unit = RaplPowerUnit::skylake_sp().energy_unit;
        m.seed_cpu(0, MSR_PKG_ENERGY_STATUS, (1u64 << 32) - 50);
        m.seed_cpu(0, MSR_DRAM_ENERGY_STATUS, 1_000);
        m.seed_cpu(16, MSR_PKG_ENERGY_STATUS, 2_000);
        let r = MsrRapl::new(m, 2, 16).unwrap();
        // Prime all three counters.
        assert_eq!(r.package_energy(SocketId(0)).unwrap(), Joules(0.0));
        assert_eq!(r.dram_energy(SocketId(0)).unwrap(), Joules(0.0));
        assert_eq!(r.package_energy(SocketId(1)).unwrap(), Joules(0.0));

        // Socket 0's package counter wraps; the others advance modestly.
        r.msr.seed_cpu(0, MSR_PKG_ENERGY_STATUS, 150);
        r.msr.seed_cpu(0, MSR_DRAM_ENERGY_STATUS, 1_250);
        r.msr.seed_cpu(16, MSR_PKG_ENERGY_STATUS, 2_400);

        let pkg0 = r.package_energy(SocketId(0)).unwrap();
        let dram0 = r.dram_energy(SocketId(0)).unwrap();
        let pkg1 = r.package_energy(SocketId(1)).unwrap();
        assert!((pkg0.value() - 200.0 * unit).abs() < 1e-9, "{pkg0:?}");
        assert!((dram0.value() - 250.0 * unit).abs() < 1e-9, "{dram0:?}");
        assert!((pkg1.value() - 400.0 * unit).abs() < 1e-9, "{pkg1:?}");
    }

    #[test]
    fn msr_fault_propagates() {
        let m = fake();
        m.inject(dufp_msr::io::Fault::WriteOf(MSR_PKG_POWER_LIMIT));
        let r = MsrRapl::new(m, 2, 16).unwrap();
        assert!(r.set_both(SocketId(0), Watts(100.0)).is_err());
    }

    #[test]
    fn out_of_range_socket_errors() {
        let r = MsrRapl::new(fake(), 2, 16).unwrap();
        assert!(r.defaults(SocketId(5)).is_err());
        assert!(r.package_energy(SocketId(5)).is_err());
    }
}
