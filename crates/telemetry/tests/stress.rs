//! Concurrency stress tests: the decision-event ring and the metrics
//! registry hammered from a sweep-style worker pool.
//!
//! The sweep engine shares one `Telemetry` handle across a work-stealing
//! pool, so the sinks must be thread-safe without serializing the pool:
//! no lost events, no duplicated events, exact per-job accounting, and —
//! when the ring does overflow — retained + dropped must equal emitted.

use dufp_telemetry::{Actuator, DecisionEvent, Reason, Telemetry};
use rayon::prelude::*;

const JOBS: usize = 32;
const EVENTS_PER_JOB: usize = 100;

/// One synthetic decision, tagged with its (job, sequence) coordinates:
/// `socket` carries the job id, `old` the per-job sequence number.
fn event(job: usize, seq: usize) -> DecisionEvent {
    DecisionEvent {
        tick: seq as u64,
        at_us: 0,
        socket: job as u16,
        phase: 0,
        oi_class: None,
        flops_ratio: None,
        actuator: Actuator::Uncore,
        old: seq as f64,
        new: seq as f64 + 1.0,
        reason: Reason::Probe,
    }
}

/// Emits every job's events from a pool of `workers` threads and returns
/// the drained ring.
fn hammer(tel: &Telemetry, workers: usize) -> Vec<DecisionEvent> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(workers)
        .build()
        .expect("build pool");
    let counter = tel.counter("events_emitted_total");
    pool.install(|| {
        (0..JOBS)
            .into_par_iter()
            .map(|job| {
                let histogram = tel.histogram("seq", &[25.0, 50.0, 75.0]);
                for seq in 0..EVENTS_PER_JOB {
                    tel.record_decision(event(job, seq));
                    counter.inc();
                    histogram.observe(seq as f64);
                }
                job
            })
            .collect::<Vec<_>>()
    });
    tel.drain_events()
}

#[test]
fn no_event_is_lost_or_duplicated_under_a_worker_pool() {
    let total = JOBS * EVENTS_PER_JOB;
    let tel = Telemetry::new(total * 2);
    let events = hammer(&tel, 4);

    assert_eq!(tel.dropped_events(), 0, "capacity was ample; nothing drops");
    assert_eq!(events.len(), total, "every emitted event is retained once");

    // Exact per-job accounting: each job's subsequence comes back complete
    // and in emission order (each job emits from a single thread, and the
    // ring preserves arrival order).
    for job in 0..JOBS {
        let seqs: Vec<u64> = events
            .iter()
            .filter(|e| e.socket == job as u16)
            .map(|e| e.old as u64)
            .collect();
        let want: Vec<u64> = (0..EVENTS_PER_JOB as u64).collect();
        assert_eq!(seqs, want, "job {job} lost, duplicated or reordered events");
    }
}

#[test]
fn metrics_registry_counts_exactly_across_threads() {
    let total = (JOBS * EVENTS_PER_JOB) as u64;
    let tel = Telemetry::new(JOBS * EVENTS_PER_JOB);
    let _ = hammer(&tel, 8);

    let snapshot = tel.metrics_snapshot();
    let counter = tel.counter("events_emitted_total");
    assert_eq!(counter.get(), total, "counter missed increments");

    // All workers resolved the same histogram by name; observations from
    // every thread land in one instrument.
    let histogram = tel.histogram("seq", &[25.0, 50.0, 75.0]);
    assert_eq!(histogram.count(), total, "histogram missed observations");
    assert_eq!(histogram.min(), 0.0);
    assert_eq!(histogram.max(), (EVENTS_PER_JOB - 1) as f64);
    assert!(
        !snapshot.counters.is_empty(),
        "snapshot sees the shared registry"
    );
}

#[test]
fn overflow_accounting_is_exact_even_when_racing() {
    let capacity = 64;
    let total = (JOBS * EVENTS_PER_JOB) as u64;
    let tel = Telemetry::new(capacity);
    let events = hammer(&tel, 8);

    assert!(
        events.len() <= capacity,
        "ring retained {} events over its capacity {capacity}",
        events.len()
    );
    assert_eq!(
        events.len() as u64 + tel.dropped_events(),
        total,
        "retained + dropped must equal emitted exactly"
    );
}
