//! A lock-free bounded multi-producer/multi-consumer ring buffer (Vyukov's
//! bounded MPMC queue).
//!
//! Controllers on different sockets push decision events concurrently while
//! the runner drains them at the end of the run (or a live observer drains
//! mid-run); neither side ever takes a lock. When the ring is full new
//! events are counted as dropped rather than blocking the control path —
//! telemetry must never stall a 200 ms decision loop.
//!
//! # Safety
//!
//! This is the one module in the workspace that uses `unsafe`. The slot
//! protocol is the standard Vyukov scheme: each slot carries a sequence
//! number; `seq == pos` means "free for the producer at `pos`",
//! `seq == pos + 1` means "holds the value produced at `pos`". The
//! winner of the CAS on `enqueue_pos`/`dequeue_pos` owns the slot until it
//! publishes the new sequence with `Release`, so the `UnsafeCell` write and
//! read never race.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

struct Slot<T> {
    sequence: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded lock-free MPMC event queue. Capacity is rounded up to a power
/// of two; pushes to a full ring are dropped (and counted), never blocked.
pub struct RingBuffer<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: slots are handed between threads through the sequence protocol
// (see module docs); values are Send, and all shared state is atomic.
unsafe impl<T: Send> Send for RingBuffer<T> {}
unsafe impl<T: Send> Sync for RingBuffer<T> {}

impl<T> RingBuffer<T> {
    /// A ring holding at least `capacity` events (rounded up to a power of
    /// two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                sequence: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        RingBuffer {
            slots,
            mask: cap - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events rejected because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Attempts to enqueue; on a full ring the value is dropped and
    /// counted, and `false` is returned.
    pub fn push(&self, value: T) -> bool {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                // Slot free: try to claim it.
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS made this thread the unique owner
                        // of the slot until the sequence store below.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.sequence.store(pos.wrapping_add(1), Ordering::Release);
                        return true;
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                // Full: the consumer has not freed this slot yet.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                // Another producer claimed `pos`; reload and retry.
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempts to dequeue the oldest event.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let diff = seq as isize - (pos.wrapping_add(1)) as isize;
            if diff == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS made this thread the unique owner
                        // of the slot; the producer published the value
                        // before the Release store this pop Acquire-read.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.sequence
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                // Empty.
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Drains everything currently in the ring, oldest first.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(v) = self.pop() {
            out.push(v);
        }
        out
    }

    /// Events currently queued (racy snapshot, exact when quiescent).
    pub fn len(&self) -> usize {
        let tail = self.dequeue_pos.load(Ordering::Relaxed);
        let head = self.enqueue_pos.load(Ordering::Relaxed);
        head.wrapping_sub(tail)
    }

    /// True when nothing is queued (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for RingBuffer<T> {
    fn drop(&mut self) {
        // Drop any values still queued.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo_order() {
        let ring = RingBuffer::new(8);
        for i in 0..5 {
            assert!(ring.push(i));
        }
        assert_eq!(ring.len(), 5);
        for i in 0..5 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn wraparound_preserves_order_and_values() {
        // Capacity 4: push/pop far more than capacity so the positions wrap
        // the mask many times, and (with usize kept small here conceptually)
        // the slot sequence protocol is exercised past the first lap.
        let ring = RingBuffer::new(4);
        let mut next_expected = 0u64;
        let mut next_value = 0u64;
        for _round in 0..100 {
            while ring.push(next_value) {
                next_value += 1;
            }
            assert_eq!(ring.len(), ring.capacity());
            while let Some(v) = ring.pop() {
                assert_eq!(v, next_expected);
                next_expected += 1;
            }
        }
        assert_eq!(next_expected, next_value);
        assert_eq!(next_expected, 100 * ring.capacity() as u64);
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let ring = RingBuffer::new(2);
        assert!(ring.push(1));
        assert!(ring.push(2));
        assert!(!ring.push(3));
        assert!(!ring.push(4));
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.drain(), vec![1, 2]);
        // Space again after the drain.
        assert!(ring.push(5));
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(RingBuffer::<u8>::new(5).capacity(), 8);
        assert_eq!(RingBuffer::<u8>::new(0).capacity(), 2);
        assert_eq!(RingBuffer::<u8>::new(64).capacity(), 64);
    }

    #[test]
    fn concurrent_producers_lose_nothing_within_capacity() {
        // 4 producers × 1000 events into a ring big enough for all: nothing
        // may be dropped, and the union of popped values must be exact.
        let ring = Arc::new(RingBuffer::new(4096));
        std::thread::scope(|s| {
            for p in 0..4u64 {
                let ring = Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        assert!(ring.push(p * 1000 + i));
                    }
                });
            }
        });
        let mut got = ring.drain();
        assert_eq!(ring.dropped(), 0);
        got.sort_unstable();
        let want: Vec<u64> = (0..4000).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn concurrent_producers_and_consumer_agree_on_totals() {
        let ring = Arc::new(RingBuffer::new(64));
        let produced = 4 * 5000u64;
        let consumed = std::thread::scope(|s| {
            for p in 0..4u64 {
                let ring = Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..5000u64 {
                        // Drops allowed (tiny ring); the counter tracks them.
                        ring.push(p * 5000 + i);
                    }
                });
            }
            let ring = Arc::clone(&ring);
            s.spawn(move || {
                let mut n = 0u64;
                let mut idle = 0;
                while idle < 1000 {
                    match ring.pop() {
                        Some(_) => {
                            n += 1;
                            idle = 0;
                        }
                        None => {
                            idle += 1;
                            std::thread::yield_now();
                        }
                    }
                }
                n
            })
            .join()
            .unwrap()
        });
        let total = consumed + ring.drain().len() as u64 + ring.dropped();
        assert_eq!(total, produced, "pushed = consumed + queued + dropped");
    }
}
