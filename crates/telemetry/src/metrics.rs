//! Lock-free metrics: counters, gauges and fixed-bucket histograms.
//!
//! All instruments are backed by atomics so the simulator's per-tick hot
//! path and the controllers' decision path can record without taking a
//! lock. Instruments are registered lazily by name; registration itself
//! takes a short mutex (cold path, once per name), after which the returned
//! handle is a plain `Arc` over atomics.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the count.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the count.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins measurement (e.g. current package power in watts).
#[derive(Debug, Default)]
pub struct Gauge {
    // f64 stored as its bit pattern; a single atomic store keeps the
    // hot path wait-free.
    bits: AtomicU64,
}

impl Gauge {
    /// Records the latest value.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Latest recorded value (0.0 before the first `set`).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

/// A histogram over fixed, caller-supplied bucket upper bounds.
///
/// A sample `v` lands in the first bucket whose upper bound satisfies
/// `v <= bound`; samples above every bound land in the implicit overflow
/// bucket. Count/sum/min/max are tracked alongside the buckets.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    // counts.len() == bounds.len() + 1 (last is overflow).
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    /// A histogram with the given ascending bucket upper bounds.
    pub fn new(bounds: &[f64]) -> Self {
        let mut sorted = bounds.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("histogram bounds must not be NaN"));
        sorted.dedup();
        let counts = (0..sorted.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: sorted,
            counts,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one sample.
    pub fn observe(&self, value: f64) {
        let idx = self
            .bounds
            .partition_point(|&bound| bound < value)
            .min(self.bounds.len());
        // partition_point gives the first bound >= value, which is exactly
        // the "v <= bound" bucket; values above all bounds fall through to
        // the overflow slot at bounds.len().
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        cas_f64(&self.sum_bits, |sum| sum + value);
        cas_f64(&self.min_bits, |min| min.min(value));
        cas_f64(&self.max_bits, |max| max.max(value));
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Smallest sample, or +inf when empty.
    pub fn min(&self) -> f64 {
        f64::from_bits(self.min_bits.load(Ordering::Relaxed))
    }

    /// Largest sample, or -inf when empty.
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Bucket upper bounds (ascending; the overflow bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

fn cas_f64(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut current = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(current)).to_bits();
        match bits.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// Lazily-populated registry of named instruments.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<HashMap<String, Arc<Counter>>>,
    gauges: Mutex<HashMap<String, Arc<Gauge>>>,
    histograms: Mutex<HashMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram registered under `name`, creating it with `bounds` on
    /// first use (later calls keep the original bounds).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// A serializable snapshot of every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = {
            let map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
            let mut v: Vec<CounterSnapshot> = map
                .iter()
                .map(|(name, c)| CounterSnapshot {
                    name: name.clone(),
                    value: c.get(),
                })
                .collect();
            v.sort_by(|a, b| a.name.cmp(&b.name));
            v
        };
        let gauges = {
            let map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
            let mut v: Vec<GaugeSnapshot> = map
                .iter()
                .map(|(name, g)| GaugeSnapshot {
                    name: name.clone(),
                    value: g.get(),
                })
                .collect();
            v.sort_by(|a, b| a.name.cmp(&b.name));
            v
        };
        let histograms = {
            let map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
            let mut v: Vec<HistogramSnapshot> = map
                .iter()
                .map(|(name, h)| {
                    let count = h.count();
                    HistogramSnapshot {
                        name: name.clone(),
                        count,
                        sum: h.sum(),
                        mean: h.mean(),
                        min: if count == 0 { 0.0 } else { h.min() },
                        max: if count == 0 { 0.0 } else { h.max() },
                        bounds: h.bounds().to_vec(),
                        buckets: h.bucket_counts(),
                    }
                })
                .collect();
            v.sort_by(|a, b| a.name.cmp(&b.name));
            v
        };
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Point-in-time value of one counter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Instrument name.
    pub name: String,
    /// Count at snapshot time.
    pub value: u64,
}

/// Point-in-time value of one gauge.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Instrument name.
    pub name: String,
    /// Last recorded value.
    pub value: f64,
}

/// Point-in-time state of one histogram.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Instrument name.
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Mean sample (0.0 when empty).
    pub mean: f64,
    /// Smallest sample (0.0 when empty).
    pub min: f64,
    /// Largest sample (0.0 when empty).
    pub max: f64,
    /// Bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; last entry is the overflow bucket.
    pub buckets: Vec<u64>,
}

/// All instruments at one point in time.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_last_value_wins() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(95.5);
        g.set(87.25);
        assert_eq!(g.get(), 87.25);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let h = Histogram::new(&[10.0, 20.0, 50.0]);
        // Exactly on a bound lands in that bound's bucket (v <= bound).
        h.observe(10.0);
        // Just above a bound lands in the next bucket.
        h.observe(10.1);
        // Below the first bound.
        h.observe(-3.0);
        // Between the last two bounds.
        h.observe(20.5);
        // Above every bound: overflow.
        h.observe(51.0);
        h.observe(1e9);
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 2]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), -3.0);
        assert_eq!(h.max(), 1e9);
    }

    #[test]
    fn histogram_sum_and_mean() {
        let h = Histogram::new(&[1.0, 2.0]);
        for v in [0.5, 1.5, 2.5, 3.5] {
            h.observe(v);
        }
        assert!((h.sum() - 8.0).abs() < 1e-12);
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_sorts_and_dedups_bounds() {
        let h = Histogram::new(&[5.0, 1.0, 5.0, 3.0]);
        assert_eq!(h.bounds(), &[1.0, 3.0, 5.0]);
        assert_eq!(h.bucket_counts().len(), 4);
    }

    #[test]
    fn histogram_concurrent_observes_sum_exactly() {
        let h = std::sync::Arc::new(Histogram::new(&[100.0]));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.observe(1.0);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.sum(), 4000.0);
        assert_eq!(h.bucket_counts(), vec![4000, 0]);
    }

    #[test]
    fn registry_returns_same_instrument_per_name() {
        let r = Registry::default();
        r.counter("a").inc();
        r.counter("a").inc();
        assert_eq!(r.counter("a").get(), 2);
        r.gauge("g").set(7.0);
        assert_eq!(r.gauge("g").get(), 7.0);
        let h1 = r.histogram("h", &[1.0]);
        // Second registration keeps the original bounds.
        let h2 = r.histogram("h", &[99.0]);
        h1.observe(0.5);
        assert_eq!(h2.count(), 1);
        assert_eq!(h2.bounds(), &[1.0]);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::default();
        r.counter("z").add(3);
        r.counter("a").add(1);
        r.gauge("power").set(120.0);
        r.histogram("lat", &[1.0, 2.0]).observe(1.5);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].name, "a");
        assert_eq!(snap.counters[1].name, "z");
        assert_eq!(snap.gauges[0].value, 120.0);
        assert_eq!(snap.histograms[0].count, 1);
        assert_eq!(snap.histograms[0].buckets, vec![0, 1, 0]);
    }
}
