//! Typed decision events: what a controller changed, when, and why.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{self, BufRead, Write};

/// The knob a decision acted on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Actuator {
    /// Uncore frequency (reported in Hz).
    Uncore,
    /// RAPL long-window power cap (reported in W).
    PowerCap,
    /// RAPL short-window power cap (reported in W).
    PowerCapShort,
    /// Core frequency via the scaling governor (reported in Hz).
    CoreFreq,
    /// Not a hardware knob: the experiment journal itself (checkpoint and
    /// resume lifecycle events; values are completed-interval counts).
    Journal,
    /// Not a hardware knob: a node's fleet power-budget ceiling (reported
    /// in W). Moved by the coordinator's allocator epochs and by an
    /// agent's coordinator-loss degradation.
    Budget,
}

impl fmt::Display for Actuator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Actuator::Uncore => "uncore",
            Actuator::PowerCap => "power_cap",
            Actuator::PowerCapShort => "power_cap_short",
            Actuator::CoreFreq => "core_freq",
            Actuator::Journal => "journal",
            Actuator::Budget => "budget",
        };
        f.write_str(s)
    }
}

/// Why a controller moved an actuator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Reason {
    /// A phase change reset the actuator to its maximum before re-probing.
    PhaseReset,
    /// Measured FLOPS fell below the allowed slowdown of the phase max.
    SlowdownViolation,
    /// Measured memory bandwidth fell below the allowed slowdown.
    BandwidthViolation,
    /// §IV-D: power overshot the cap after an uncore reset; caps re-armed.
    Overshoot,
    /// Cross-coupling: raising the uncore did not restore FLOPS, so the
    /// power cap backs off instead.
    CrossCoupling,
    /// §V-G: cumulative-degradation guard froze further decreases.
    CumulativeGuard,
    /// Post-reset trim of the short-window cap toward observed power.
    PostResetTrim,
    /// Routine downward probe step while performance holds.
    Probe,
    /// DUFP-F trailing cap following observed package power.
    TrailingCap,
    /// DNPC model-based estimate chose this setting.
    ModelEstimate,
    /// A transient actuation failure was retried (old = attempt number,
    /// new = the value being written).
    ActuationRetry,
    /// Persistent actuation failure degraded the controller's authority
    /// over a knob (old/new are degradation-ladder ordinals: 0 = full,
    /// 1 = uncore-only, 2 = passive).
    Degraded,
    /// The watchdog tripped (missed ticks, stale/NaN samples or an energy
    /// anomaly) and forced a sampler re-prime plus cap reset.
    WatchdogReset,
    /// The safe-state guard restored platform defaults at end of run.
    SafeStateRestore,
    /// The runner durably checkpointed controller and platform state
    /// (old/new are the completed-interval counts before/after).
    Checkpoint,
    /// The run was resumed from a crash-safe journal; the event's tick is
    /// the first live tick after replay (old = checkpointed interval, new
    /// = journal head at resume time).
    Resumed,
    /// The fleet coordinator granted a node a higher (or first) budget
    /// ceiling (old/new in W; the event's tick is the allocator epoch).
    BudgetGrant,
    /// The fleet coordinator shrank a node's budget ceiling to fund other
    /// nodes or to fit the global budget (old/new in W).
    BudgetShrink,
    /// The coordinator reclaimed a node's watts — dead (missed heartbeats)
    /// or cleanly departed — and returned them to the pool (old = the
    /// node's last ceiling, new = 0).
    BudgetReclaim,
    /// An agent lost its coordinator and degraded to the safe local
    /// static cap (old = last granted ceiling, new = the safe cap).
    CoordinatorLost,
    /// The coordinator refused a demand report that failed sanity vetting:
    /// non-finite or negative watts, or values outside the node's
    /// plausibility envelope (old = the offending watts when finite,
    /// new = the clamp applied, 0 when rejected outright).
    DemandVetoed,
    /// The coordinator dropped a frame whose sequence number had already
    /// been seen — a replayed or stale report/heartbeat (old = the frame's
    /// sequence number, new = the highest accepted one).
    ReplayRejected,
    /// The coordinator dropped frames beyond a node's per-epoch rate
    /// limit (old = frames seen this epoch, new = the limit).
    RateLimited,
    /// The quarantine ladder capped a misbehaving node at its floor
    /// (old/new are trust-ladder ordinals: 0 = trusted, 1 = suspect,
    /// 2 = quarantined, 3 = evicted).
    Quarantined,
    /// The quarantine ladder evicted a node outright: its watts returned
    /// to the pool and its connection was dropped (old/new are
    /// trust-ladder ordinals).
    Evicted,
    /// A coordinator observed a higher coordination term than its own and
    /// fenced itself: it stops granting budget because a successor has
    /// taken over (old = the fenced coordinator's term, new = the higher
    /// term observed). Also emitted by an agent that discards a stale-term
    /// grant (old = the grant's term, new = the highest term seen).
    TermFenced,
    /// A restarted coordinator rebuilt its state by checkpoint+journal
    /// replay and bumped the coordination term before granting (old = the
    /// replayed term, new = the bumped term).
    TookOver,
    /// A warm standby detected primary death, replayed the shared journal
    /// and promoted itself to primary (old = the replayed term, new = the
    /// promoted term).
    StandbyPromoted,
    /// The scenario engine's arrival model moved a node's offered load
    /// into a different intensity band (old/new are quarter-intensity
    /// band ordinals: 0 = idle, 4 = nominal, 8 = 2× nominal).
    IntensityShift,
    /// A tenant fell behind its offered load past the scenario's backlog
    /// threshold this control interval (old = backlog in seconds of
    /// nominal work, new = the threshold).
    SloViolation,
}

impl Reason {
    /// Every reason, in a stable order (used for summary tables).
    pub const ALL: [Reason; 30] = [
        Reason::PhaseReset,
        Reason::SlowdownViolation,
        Reason::BandwidthViolation,
        Reason::Overshoot,
        Reason::CrossCoupling,
        Reason::CumulativeGuard,
        Reason::PostResetTrim,
        Reason::Probe,
        Reason::TrailingCap,
        Reason::ModelEstimate,
        Reason::ActuationRetry,
        Reason::Degraded,
        Reason::WatchdogReset,
        Reason::SafeStateRestore,
        Reason::Checkpoint,
        Reason::Resumed,
        Reason::BudgetGrant,
        Reason::BudgetShrink,
        Reason::BudgetReclaim,
        Reason::CoordinatorLost,
        Reason::DemandVetoed,
        Reason::ReplayRejected,
        Reason::RateLimited,
        Reason::Quarantined,
        Reason::Evicted,
        Reason::TermFenced,
        Reason::TookOver,
        Reason::StandbyPromoted,
        Reason::IntensityShift,
        Reason::SloViolation,
    ];
}

impl fmt::Display for Reason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // CamelCase variant name -> kebab-case label.
        for (i, c) in format!("{self:?}").chars().enumerate() {
            if c.is_ascii_uppercase() {
                if i > 0 {
                    f.write_str("-")?;
                }
                write!(f, "{}", c.to_ascii_lowercase())?;
            } else {
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

/// One controller decision: an actuator moved from `old` to `new`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionEvent {
    /// Simulator tick (or wall-clock interval index) of the decision.
    pub tick: u64,
    /// Microseconds since the run started, when known (0 otherwise).
    #[serde(default)]
    pub at_us: u64,
    /// Socket the controller instance manages.
    pub socket: u16,
    /// Monotonic per-socket phase sequence number at decision time.
    pub phase: u64,
    /// Operational-intensity class of the current phase, when classified.
    #[serde(default)]
    pub oi_class: Option<String>,
    /// Measured FLOPS over the per-phase maximum (1.0 = at phase max).
    #[serde(default)]
    pub flops_ratio: Option<f64>,
    /// Which knob moved.
    pub actuator: Actuator,
    /// Value before the decision, in the actuator's native unit.
    pub old: f64,
    /// Value after the decision, in the actuator's native unit.
    pub new: f64,
    /// Why the controller moved it.
    pub reason: Reason,
}

/// Writes events as JSON Lines (one compact object per line).
pub fn write_jsonl<W: Write>(mut w: W, events: &[DecisionEvent]) -> io::Result<()> {
    for event in events {
        let line = serde_json::to_string(event)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Reads events back from JSON Lines, skipping blank lines.
pub fn read_jsonl<R: BufRead>(r: R) -> io::Result<Vec<DecisionEvent>> {
    let mut events = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let event: DecisionEvent = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", idx + 1))
        })?;
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DecisionEvent {
        DecisionEvent {
            tick: 42,
            at_us: 8_400_000,
            socket: 1,
            phase: 3,
            oi_class: Some("MemoryBound".to_string()),
            flops_ratio: Some(0.93),
            actuator: Actuator::Uncore,
            old: 2.4e9,
            new: 2.2e9,
            reason: Reason::Probe,
        }
    }

    #[test]
    fn jsonl_round_trip() {
        let events = vec![
            sample(),
            DecisionEvent {
                reason: Reason::SlowdownViolation,
                actuator: Actuator::PowerCap,
                oi_class: None,
                flops_ratio: None,
                ..sample()
            },
        ];
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        let back = read_jsonl(io::Cursor::new(buf)).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn read_skips_blank_lines_and_reports_bad_ones() {
        let good = serde_json::to_string(&sample()).unwrap();
        let text = format!("{good}\n\n{good}\n");
        let back = read_jsonl(io::Cursor::new(text.into_bytes())).unwrap();
        assert_eq!(back.len(), 2);

        let err = read_jsonl(io::Cursor::new(b"not json\n".to_vec())).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn reason_display_is_kebab() {
        assert_eq!(Reason::SlowdownViolation.to_string(), "slowdown-violation");
        assert_eq!(Reason::PhaseReset.to_string(), "phase-reset");
        assert_eq!(Actuator::PowerCapShort.to_string(), "power_cap_short");
    }

    #[test]
    fn every_reason_listed_once_in_all() {
        let mut seen = std::collections::HashSet::new();
        for r in Reason::ALL {
            assert!(seen.insert(format!("{r:?}")));
        }
        assert_eq!(seen.len(), 30);
    }
}
