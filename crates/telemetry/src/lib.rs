//! Decision traces and runtime metrics for the DUFP suite.
//!
//! The paper's controllers (DUF, DUFP, DUFP-F, DNPC) make one actuation
//! decision per 200 ms interval per socket. Reproducing figures is only
//! half the work — explaining *why* a cap or uncore step happened at tick
//! N is the other half. This crate records both:
//!
//! * **Decision events** ([`DecisionEvent`]): every actuator change with a
//!   typed [`Reason`] (slowdown violation, phase reset, overshoot, ...),
//!   buffered in a lock-free bounded ring and exportable as JSON Lines.
//! * **Metrics** ([`metrics`]): lock-free counters, gauges and
//!   fixed-bucket histograms for per-tick simulator state and pipeline
//!   stage timings.
//!
//! The entry point is [`Telemetry`], a cheaply clonable handle that is
//! either *enabled* (backed by a shared collector) or *disabled* (a null
//! handle). Disabled is the default everywhere; every record call then
//! reduces to one branch on an `Option`, so instrumented hot paths cost
//! nothing measurable when tracing is off.
//!
//! ```
//! use dufp_telemetry::{Actuator, DecisionCtx, Reason, Telemetry};
//!
//! let tel = Telemetry::new(1024);
//! let sock = tel.for_socket(0);
//! sock.decision(
//!     DecisionCtx { tick: 7, phase: 1, oi_class: None, flops_ratio: Some(0.88) },
//!     Actuator::PowerCap,
//!     120.0,
//!     115.0,
//!     Reason::SlowdownViolation,
//! );
//! tel.counter("ticks").inc();
//! let report = tel.report();
//! assert_eq!(report.decisions.len(), 1);
//! ```

#![warn(missing_docs)]
// `unsafe` is confined to the ring buffer; see ring.rs for the invariants.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod event;
pub mod metrics;
pub mod ring;

pub use event::{read_jsonl, write_jsonl, Actuator, DecisionEvent, Reason};
pub use metrics::{
    Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot, MetricsSnapshot,
    Registry,
};

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Default event-ring capacity when the caller does not choose one.
pub const DEFAULT_EVENT_CAPACITY: usize = 64 * 1024;

struct Inner {
    events: ring::RingBuffer<DecisionEvent>,
    metrics: Registry,
}

/// Handle to the telemetry collector; cheap to clone and thread-safe.
///
/// A disabled handle ([`Telemetry::disabled`]) is a null object: every
/// record call is a single `Option` branch and no allocation ever happens.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// An enabled collector whose event ring holds at least `capacity`
    /// decision events (older events are never overwritten; overflow is
    /// counted as dropped).
    pub fn new(capacity: usize) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                events: ring::RingBuffer::new(capacity),
                metrics: Registry::default(),
            })),
        }
    }

    /// An enabled collector with [`DEFAULT_EVENT_CAPACITY`].
    pub fn enabled() -> Self {
        Telemetry::new(DEFAULT_EVENT_CAPACITY)
    }

    /// The null handle: records nothing, costs one branch per call.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this handle actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A recorder bound to one socket id, for controller/simulator code
    /// that always reports about the same socket.
    pub fn for_socket(&self, socket: u16) -> SocketTelemetry {
        SocketTelemetry {
            tel: self.clone(),
            socket,
        }
    }

    /// Records one decision event (no-op when disabled).
    pub fn record_decision(&self, event: DecisionEvent) {
        if let Some(inner) = &self.inner {
            inner.events.push(event);
        }
    }

    /// The counter named `name`; on a disabled handle a detached counter
    /// that is never reported.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match &self.inner {
            Some(inner) => inner.metrics.counter(name),
            None => Arc::new(Counter::default()),
        }
    }

    /// The gauge named `name` (detached when disabled).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match &self.inner {
            Some(inner) => inner.metrics.gauge(name),
            None => Arc::new(Gauge::default()),
        }
    }

    /// The histogram named `name` with `bounds` (detached when disabled).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        match &self.inner {
            Some(inner) => inner.metrics.histogram(name, bounds),
            None => Arc::new(Histogram::new(bounds)),
        }
    }

    /// Drains and returns all decision events recorded so far, oldest
    /// first (empty when disabled).
    pub fn drain_events(&self) -> Vec<DecisionEvent> {
        match &self.inner {
            Some(inner) => inner.events.drain(),
            None => Vec::new(),
        }
    }

    /// Decision events rejected because the ring was full.
    pub fn dropped_events(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.events.dropped())
    }

    /// A snapshot of every registered metric (empty when disabled).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.metrics.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Drains events and snapshots metrics into one serializable report.
    pub fn report(&self) -> TelemetryReport {
        TelemetryReport {
            decisions: self.drain_events(),
            dropped: self.dropped_events(),
            metrics: self.metrics_snapshot(),
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Per-decision context the caller already has in hand.
#[derive(Debug, Clone, Default)]
pub struct DecisionCtx {
    /// Interval/tick index of the decision.
    pub tick: u64,
    /// Monotonic phase sequence number on this socket.
    pub phase: u64,
    /// Operational-intensity class label, when classified.
    pub oi_class: Option<String>,
    /// Measured FLOPS over the per-phase maximum.
    pub flops_ratio: Option<f64>,
}

/// A [`Telemetry`] handle bound to one socket id.
#[derive(Debug, Clone, Default)]
pub struct SocketTelemetry {
    tel: Telemetry,
    socket: u16,
}

impl SocketTelemetry {
    /// Whether the underlying handle records.
    pub fn is_enabled(&self) -> bool {
        self.tel.is_enabled()
    }

    /// The socket this recorder reports about.
    pub fn socket(&self) -> u16 {
        self.socket
    }

    /// The shared underlying handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Records that `actuator` moved `old` → `new` because of `reason`.
    /// No-op when disabled or when the value did not change.
    pub fn decision(
        &self,
        ctx: DecisionCtx,
        actuator: Actuator,
        old: f64,
        new: f64,
        reason: Reason,
    ) {
        if !self.tel.is_enabled() || old == new {
            return;
        }
        self.tel.record_decision(DecisionEvent {
            tick: ctx.tick,
            at_us: 0,
            socket: self.socket,
            phase: ctx.phase,
            oi_class: ctx.oi_class,
            flops_ratio: ctx.flops_ratio,
            actuator,
            old,
            new,
            reason,
        });
    }
}

/// Drained events plus a metrics snapshot: everything a run produced.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// All decision events, oldest first.
    pub decisions: Vec<DecisionEvent>,
    /// Events lost to ring overflow.
    pub dropped: u64,
    /// Metrics at drain time.
    pub metrics: MetricsSnapshot,
}

impl TelemetryReport {
    /// Event count per reason, in [`Reason::ALL`] order, zero-count
    /// reasons included.
    pub fn counts_by_reason(&self) -> Vec<(Reason, usize)> {
        Reason::ALL
            .iter()
            .map(|&r| (r, self.decisions.iter().filter(|e| e.reason == r).count()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        let sock = tel.for_socket(3);
        sock.decision(
            DecisionCtx::default(),
            Actuator::Uncore,
            2.4e9,
            2.2e9,
            Reason::Probe,
        );
        tel.counter("c").add(10);
        tel.gauge("g").set(1.0);
        tel.histogram("h", &[1.0]).observe(0.5);
        let report = tel.report();
        assert!(report.decisions.is_empty());
        assert!(report.metrics.counters.is_empty());
        assert!(report.metrics.gauges.is_empty());
        assert!(report.metrics.histograms.is_empty());
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn enabled_handle_collects_across_clones() {
        let tel = Telemetry::new(16);
        let clone = tel.clone();
        clone.for_socket(0).decision(
            DecisionCtx {
                tick: 1,
                phase: 0,
                oi_class: None,
                flops_ratio: Some(0.9),
            },
            Actuator::PowerCap,
            125.0,
            120.0,
            Reason::Probe,
        );
        tel.counter("shared").inc();
        clone.counter("shared").inc();
        let report = tel.report();
        assert_eq!(report.decisions.len(), 1);
        assert_eq!(report.decisions[0].socket, 0);
        assert_eq!(report.metrics.counters[0].value, 2);
    }

    #[test]
    fn unchanged_value_is_not_an_event() {
        let tel = Telemetry::new(16);
        let sock = tel.for_socket(0);
        sock.decision(
            DecisionCtx::default(),
            Actuator::Uncore,
            2.4e9,
            2.4e9,
            Reason::Probe,
        );
        assert!(tel.drain_events().is_empty());
    }

    #[test]
    fn counts_by_reason_covers_all_reasons() {
        let tel = Telemetry::new(16);
        let sock = tel.for_socket(0);
        for _ in 0..3 {
            sock.decision(
                DecisionCtx::default(),
                Actuator::PowerCap,
                125.0,
                120.0,
                Reason::SlowdownViolation,
            );
        }
        let report = tel.report();
        let counts = report.counts_by_reason();
        assert_eq!(counts.len(), Reason::ALL.len());
        let slowdown = counts
            .iter()
            .find(|(r, _)| *r == Reason::SlowdownViolation)
            .unwrap();
        assert_eq!(slowdown.1, 3);
        let probe = counts.iter().find(|(r, _)| *r == Reason::Probe).unwrap();
        assert_eq!(probe.1, 0);
    }
}
